//! The LLM client: retries, JSON repair, context budgeting, and metering.
//!
//! "For all of these transforms, Sycamore handles retries and model-specific
//! details like parsing the output as JSON" (§5.2). [`LlmClient`] is where
//! that happens: it wraps any [`LanguageModel`], truncates context to the
//! window, retries transient failures with (simulated) backoff, repairs
//! malformed JSON with the lenient parser, re-asks with a fresh sample when
//! repair fails, and records every call in a shared [`UsageMeter`].

use crate::cache::{CacheKey, CacheStats, LlmCallCache};
use crate::fairshare::FairShare;
use crate::model::{LanguageModel, LlmRequest, Usage};
use crate::reliability::{ReliabilitySlot, ReliabilityState};
use aryn_core::text::{count_tokens, truncate_tokens};
use aryn_core::{json, ArynError, Result, Value};
use parking_lot::Mutex;
use std::sync::Arc;

/// Aggregate usage across calls, shared by clones of a client.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct UsageStats {
    pub calls: u64,
    pub retries: u64,
    pub parse_repairs: u64,
    pub parse_failures: u64,
    pub transient_failures: u64,
    /// Packed (multi-item) model calls issued by the batch layer.
    pub batched_calls: u64,
    /// Items resolved out of packed batch responses (singleton fallbacks and
    /// cache hits are not counted here).
    pub batched_items: u64,
    /// Model calls avoided by packing: for each packed call that resolved
    /// `m` items, `m - 1` calls an unbatched run would have issued.
    pub calls_saved: u64,
    /// Circuit-breaker transitions to open observed by this client.
    pub breaker_trips: u64,
    /// Logical calls answered by a fallback tier instead of the primary
    /// model (see [`LlmClient::with_fallback`]).
    pub fallback_calls: u64,
    /// Documents whose result came from a degraded path (fallback model or
    /// the string-match tier) and were flagged as such.
    pub degraded_docs: u64,
    pub usage: Usage,
}

impl UsageStats {
    /// Counters accumulated since `earlier` (a prior snapshot of the same
    /// meter). Saturating, so a reset meter yields zeros rather than wrapping.
    pub fn since(&self, earlier: &UsageStats) -> UsageStats {
        UsageStats {
            calls: self.calls.saturating_sub(earlier.calls),
            retries: self.retries.saturating_sub(earlier.retries),
            parse_repairs: self.parse_repairs.saturating_sub(earlier.parse_repairs),
            parse_failures: self.parse_failures.saturating_sub(earlier.parse_failures),
            transient_failures: self
                .transient_failures
                .saturating_sub(earlier.transient_failures),
            batched_calls: self.batched_calls.saturating_sub(earlier.batched_calls),
            batched_items: self.batched_items.saturating_sub(earlier.batched_items),
            calls_saved: self.calls_saved.saturating_sub(earlier.calls_saved),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            fallback_calls: self.fallback_calls.saturating_sub(earlier.fallback_calls),
            degraded_docs: self.degraded_docs.saturating_sub(earlier.degraded_docs),
            usage: Usage {
                input_tokens: self.usage.input_tokens.saturating_sub(earlier.usage.input_tokens),
                output_tokens: self
                    .usage
                    .output_tokens
                    .saturating_sub(earlier.usage.output_tokens),
                cost_usd: (self.usage.cost_usd - earlier.usage.cost_usd).max(0.0),
                latency_ms: (self.usage.latency_ms - earlier.usage.latency_ms).max(0.0),
            },
        }
    }

    /// Merge another snapshot into this one (summing all counters).
    pub fn merge(&mut self, other: &UsageStats) {
        self.calls += other.calls;
        self.retries += other.retries;
        self.parse_repairs += other.parse_repairs;
        self.parse_failures += other.parse_failures;
        self.transient_failures += other.transient_failures;
        self.batched_calls += other.batched_calls;
        self.batched_items += other.batched_items;
        self.calls_saved += other.calls_saved;
        self.breaker_trips += other.breaker_trips;
        self.fallback_calls += other.fallback_calls;
        self.degraded_docs += other.degraded_docs;
        self.usage.add(&other.usage);
    }
}

/// Thread-safe usage meter.
#[derive(Debug, Default)]
pub struct UsageMeter {
    inner: Mutex<UsageStats>,
}

impl UsageMeter {
    pub fn new() -> Arc<UsageMeter> {
        Arc::new(UsageMeter::default())
    }

    pub fn snapshot(&self) -> UsageStats {
        *self.inner.lock()
    }

    pub fn reset(&self) {
        *self.inner.lock() = UsageStats::default();
    }

    pub(crate) fn record(&self, usage: &Usage) {
        let mut s = self.inner.lock();
        s.calls += 1;
        s.usage.add(usage);
    }

    pub(crate) fn bump(&self, f: impl FnOnce(&mut UsageStats)) {
        f(&mut self.inner.lock());
    }
}

/// Retry policy for one logical call.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Max attempts for transient failures.
    pub max_transient: u32,
    /// Max re-asks when output JSON is unparseable even leniently.
    pub max_reask: u32,
    /// Base of the (simulated) exponential backoff, in ms.
    pub backoff_base_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_transient: 4,
            max_reask: 2,
            backoff_base_ms: 100.0,
        }
    }
}

/// Result of a degradation-aware structured call: the parsed value plus
/// which fallback model answered (None when the primary did).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedJson {
    pub value: Value,
    pub degraded_to: Option<String>,
}

/// A metering, retrying client over a [`LanguageModel`].
#[derive(Clone)]
pub struct LlmClient {
    model: Arc<dyn LanguageModel>,
    meter: Arc<UsageMeter>,
    policy: RetryPolicy,
    cache: Option<Arc<LlmCallCache>>,
    /// Cache-key namespace: `Some` isolates this client's cache entries from
    /// other namespaces sharing the same [`LlmCallCache`] (per-tenant cache
    /// policy in the serving layer); `None` shares the global namespace.
    cache_namespace: Option<Arc<str>>,
    /// Reliability indirection: the slot lets a session repoint every client
    /// in its ladder at a fresh per-query budget fork without rebuilding
    /// clients (see [`ReliabilitySlot`]).
    reliability: Option<Arc<ReliabilitySlot>>,
    /// Fair-share call-slot gate plus the tenant id to acquire under.
    slots: Option<(Arc<FairShare>, Arc<str>)>,
    fallback: Option<Box<LlmClient>>,
}

impl LlmClient {
    pub fn new(model: Arc<dyn LanguageModel>) -> LlmClient {
        LlmClient {
            model,
            meter: UsageMeter::new(),
            policy: RetryPolicy::default(),
            cache: None,
            cache_namespace: None,
            reliability: None,
            slots: None,
            fallback: None,
        }
    }

    pub fn with_policy(mut self, policy: RetryPolicy) -> LlmClient {
        self.policy = policy;
        self
    }

    /// Shares an existing meter (so multiple clients aggregate together).
    pub fn with_meter(mut self, meter: Arc<UsageMeter>) -> LlmClient {
        self.meter = meter;
        self
    }

    /// Shares a call cache (see [`crate::cache`]). Only deterministic calls
    /// are memoized — temperature 0, first logical attempt; re-ask samples
    /// at raised temperature always reach the model. Cache hits do NOT bump
    /// the meter: `UsageStats::calls` stays a count of real model calls, so
    /// hit savings are directly visible in the metering.
    pub fn with_cache(mut self, cache: Arc<LlmCallCache>) -> LlmClient {
        self.cache = Some(cache);
        self
    }

    /// Attaches shared reliability state (deadline budget + per-model
    /// breakers; see [`crate::reliability`]). With the default (inert)
    /// policy this is a no-op: call counts and usage accounting are
    /// byte-identical to a client with no reliability state.
    ///
    /// The state is wrapped in a private [`ReliabilitySlot`]; clients that
    /// should all repoint together at a per-query fork share one slot via
    /// [`with_reliability_slot`](Self::with_reliability_slot) instead.
    pub fn with_reliability(mut self, state: Arc<ReliabilityState>) -> LlmClient {
        self.reliability = Some(ReliabilitySlot::new(state));
        self
    }

    /// Shares a swappable reliability slot: installing a fresh
    /// [`ReliabilityState::fork`] into the slot retargets every client
    /// holding it (a session's whole degradation ladder) at the new budget.
    pub fn with_reliability_slot(mut self, slot: Arc<ReliabilitySlot>) -> LlmClient {
        self.reliability = Some(slot);
        self
    }

    /// Namespaces this client's cache keys (see [`CacheKey::for_call_in`]):
    /// clients in different namespaces never share entries even over one
    /// [`LlmCallCache`]. The serving layer uses tenant ids here when a
    /// tenant opts out of the shared cache.
    pub fn with_cache_namespace(mut self, namespace: &str) -> LlmClient {
        self.cache_namespace = Some(Arc::from(namespace));
        self
    }

    /// Gates real model calls through a fair-share slot scheduler under
    /// `tenant`'s identity (see [`crate::fairshare`]). Cache hits bypass the
    /// gate — only calls that would occupy a model endpoint queue for slots.
    pub fn with_slots(mut self, gate: Arc<FairShare>, tenant: &str) -> LlmClient {
        self.slots = Some((gate, Arc::from(tenant)));
        self
    }

    /// Chains a cheaper fallback client behind this one. Degradation-aware
    /// callers ([`LlmClient::generate_json_with_fallback`]) walk the chain
    /// when this tier's breaker is open, its budget is low, or its retry
    /// ladder is exhausted.
    pub fn with_fallback(mut self, fallback: LlmClient) -> LlmClient {
        self.fallback = Some(Box::new(fallback));
        self
    }

    /// Wraps the underlying model in a [`crate::chaos::ChaosModel`] with the
    /// given fault schedule. The wrapper gets a fresh call clock, so each
    /// wrapped client sees the schedule from call index 0.
    pub fn with_chaos(mut self, schedule: crate::chaos::ChaosSchedule) -> LlmClient {
        self.model = Arc::new(crate::chaos::ChaosModel::wrap(
            Arc::clone(&self.model),
            schedule,
        ));
        self
    }

    /// The reliability state currently installed (through the slot, so a
    /// per-query fork installed by the session is what callers see).
    pub fn reliability(&self) -> Option<Arc<ReliabilityState>> {
        self.reliability.as_ref().map(|s| s.current())
    }

    /// The swappable slot itself, for sessions that install per-query forks.
    pub fn reliability_slot(&self) -> Option<Arc<ReliabilitySlot>> {
        self.reliability.clone()
    }

    /// The cache-key namespace, if any.
    pub fn cache_namespace(&self) -> Option<&str> {
        self.cache_namespace.as_deref()
    }

    pub fn fallback(&self) -> Option<&LlmClient> {
        self.fallback.as_deref()
    }

    /// This client followed by its transitive fallbacks (primary first).
    /// Stage accounting walks this so fallback-tier meters are attributed
    /// to the stage that used them.
    pub fn fallback_chain(&self) -> Vec<&LlmClient> {
        let mut chain = vec![self];
        let mut cur = self;
        while let Some(next) = cur.fallback.as_deref() {
            chain.push(next);
            cur = next;
        }
        chain
    }

    /// Flags `n` documents as degraded in the meter (called by transforms
    /// when a document's result came from a fallback tier or string-match).
    pub fn note_degraded_docs(&self, n: u64) {
        if n > 0 {
            self.meter.bump(|s| s.degraded_docs += n);
        }
    }

    pub fn model_name(&self) -> &str {
        self.model.name()
    }

    /// The wrapped model's context window, in tokens.
    pub fn context_window(&self) -> usize {
        self.model.context_window()
    }

    pub(crate) fn meter_ref(&self) -> &UsageMeter {
        &self.meter
    }

    pub(crate) fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    pub fn meter(&self) -> Arc<UsageMeter> {
        Arc::clone(&self.meter)
    }

    pub fn stats(&self) -> UsageStats {
        self.meter.snapshot()
    }

    pub fn cache(&self) -> Option<Arc<LlmCallCache>> {
        self.cache.clone()
    }

    /// Cache counters (zeros when no cache is attached).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Budget available for context text in a prompt whose fixed parts cost
    /// `overhead_tokens`, leaving room for `max_output` completion tokens.
    pub fn context_budget(&self, overhead_tokens: usize, max_output: usize) -> usize {
        self.model
            .context_window()
            .saturating_sub(overhead_tokens + max_output + 16)
    }

    /// Truncates `context` so that `prompt_fn(context)` fits the window with
    /// `max_output` completion tokens to spare, then returns the prompt.
    pub fn fit_prompt(
        &self,
        context: &str,
        max_output: usize,
        prompt_fn: impl Fn(&str) -> String,
    ) -> String {
        let empty = prompt_fn("");
        let overhead = count_tokens(&empty);
        let budget = self.context_budget(overhead, max_output);
        let fitted = truncate_tokens(context, budget);
        prompt_fn(fitted)
    }

    /// Truncates `context` exactly the way [`LlmClient::fit_prompt`] would,
    /// returning the fitted context instead of the rendered prompt. Callers
    /// that pack several contexts into one envelope (see [`crate::batch`])
    /// need the per-item text whose singleton prompt is byte-identical to
    /// `fit_prompt`'s output, so cache fingerprints line up.
    pub fn fit_context(
        &self,
        context: &str,
        max_output: usize,
        prompt_fn: impl Fn(&str) -> String,
    ) -> String {
        let overhead = count_tokens(&prompt_fn(""));
        truncate_tokens(context, self.context_budget(overhead, max_output)).to_string()
    }

    /// One raw completion with transient-failure retries and metering.
    pub fn generate(&self, prompt: &str, max_output: usize) -> Result<String> {
        self.generate_at(prompt, max_output, 0.0, 0)
    }

    fn generate_at(
        &self,
        prompt: &str,
        max_output: usize,
        temperature: f32,
        attempt_base: u32,
    ) -> Result<String> {
        // Cacheability policy: temperature-0 first-attempt calls are pure
        // functions of the prompt; re-asks (bumped attempt base, raised
        // temperature) are deliberate fresh samples and must not be memoized.
        let cacheable = temperature == 0.0 && attempt_base == 0;
        if cacheable {
            if let Some(cache) = &self.cache {
                let key = CacheKey::for_call_in(
                    self.cache_namespace.as_deref(),
                    self.model.name(),
                    prompt,
                    max_output,
                    temperature,
                );
                let out = cache.get_or_compute(key, || {
                    self.call_model(prompt, max_output, temperature, attempt_base)
                })?;
                if !out.hit {
                    self.meter.record(&out.usage);
                }
                return Ok(out.text);
            }
        }
        let (text, usage) = self.call_model(prompt, max_output, temperature, attempt_base)?;
        self.meter.record(&usage);
        Ok(text)
    }

    /// The raw transient-retry loop around the model, returning the text and
    /// the (backoff-inclusive) usage of the successful attempt. Metering of
    /// the successful call is the caller's job; transient failures are
    /// metered here, where they happen.
    pub(crate) fn call_model(
        &self,
        prompt: &str,
        max_output: usize,
        temperature: f32,
        attempt_base: u32,
    ) -> Result<(String, Usage)> {
        // Reliability gates only engage with an explicit, non-inert policy;
        // otherwise this loop is byte-identical to the ungated client.
        // Resolved through the slot once per logical call: a fork installed
        // mid-call does not retroactively re-budget in-flight attempts.
        let rel = self
            .reliability
            .as_ref()
            .map(|s| s.current())
            .filter(|r| r.policy().enabled());
        let rel = rel.as_deref();
        let breaker = rel.and_then(|r| r.breaker(self.model.name()));
        let mut last_err = None;
        // A policy of 0 transient retries still means one attempt: the model
        // must be called at least once per logical request.
        for attempt in 0..self.policy.max_transient.max(1) {
            if let Some(r) = rel {
                r.check_deadline()?;
            }
            if let Some(b) = &breaker {
                if !b.allow(rel.map_or(0.0, |r| r.now_ms())) {
                    return Err(ArynError::CircuitOpen {
                        model: self.model.name().to_string(),
                    });
                }
            }
            let req = LlmRequest::new(prompt)
                .with_max_tokens(max_output)
                .with_temperature(temperature)
                .with_attempt(attempt_base + attempt);
            // Fair-share gating: hold a call slot for the duration of the
            // model call so one tenant's storm queues here instead of
            // monopolizing the endpoint pool. Queue waits are real thread
            // waits, not budget charges — a queued query's deadline clock
            // only ticks for work done on its behalf, which keeps its
            // accounting bit-identical to an uncontended run.
            let slot = self
                .slots
                .as_ref()
                .map(|(gate, tenant)| gate.acquire(tenant));
            let generated = self.model.generate(&req);
            drop(slot);
            match generated {
                Ok(resp) => {
                    let model_latency_ms = resp.usage.latency_ms;
                    if let Some(r) = rel {
                        // Tokens and dollars were consumed whether or not the
                        // call beats the timeout below.
                        r.charge_usage(
                            (resp.usage.input_tokens + resp.usage.output_tokens) as u64,
                            resp.usage.cost_usd,
                        );
                        let p = r.policy();
                        if p.call_timeout_ms > 0.0 && model_latency_ms > p.call_timeout_ms {
                            // Simulated per-call timeout: the caller would
                            // have hung up. Charge the timeout, fail the
                            // breaker, and retry like any transient failure.
                            r.charge(p.call_timeout_ms);
                            if let Some(b) = &breaker {
                                if b.record(false, r.now_ms()) {
                                    self.meter.bump(|s| s.breaker_trips += 1);
                                }
                            }
                            self.meter.bump(|s| {
                                s.transient_failures += 1;
                                s.retries += 1;
                            });
                            last_err = Some(ArynError::Llm(format!(
                                "{}: call timed out ({:.0}ms > {:.0}ms budget)",
                                self.model.name(),
                                model_latency_ms,
                                p.call_timeout_ms
                            )));
                            continue;
                        }
                        // Backoff was charged per failure below; only the
                        // model's own latency joins the budget here.
                        r.charge(model_latency_ms);
                        if let Some(b) = &breaker {
                            b.record(true, r.now_ms());
                        }
                    }
                    let mut usage = resp.usage;
                    // Simulated backoff time joins the latency account.
                    if attempt > 0 {
                        usage.latency_ms +=
                            self.policy.backoff_base_ms * ((1 << (attempt - 1)) as f64);
                    }
                    return Ok((resp.text, usage));
                }
                Err(e @ ArynError::ContextOverflow { .. }) => return Err(e),
                Err(e) => {
                    self.meter.bump(|s| {
                        s.transient_failures += 1;
                        s.retries += 1;
                    });
                    if let Some(r) = rel {
                        // Exponential backoff with seeded jitter, charged to
                        // the virtual clock instead of sleeping.
                        let backoff = r.policy().backoff_ms(
                            self.policy.backoff_base_ms,
                            self.model.name(),
                            attempt + 1,
                        );
                        r.charge(backoff);
                        if let Some(b) = &breaker {
                            if b.record(false, r.now_ms()) {
                                self.meter.bump(|s| s.breaker_trips += 1);
                            }
                        }
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| ArynError::Llm("exhausted retries".into())))
    }

    /// A completion parsed as JSON. Strategy, mirroring production stacks:
    ///
    /// 1. strict parse;
    /// 2. lenient repair (fences, prose, quotes) — counted as a repair;
    /// 3. re-ask at temperature 0.4 with a bumped attempt (fresh sample),
    ///    up to `max_reask` times.
    pub fn generate_json(&self, prompt: &str, max_output: usize) -> Result<Value> {
        let mut attempt_base = 0;
        for reask in 0..=self.policy.max_reask {
            let temperature = if reask == 0 { 0.0 } else { 0.4 };
            let text = self.generate_at(prompt, max_output, temperature, attempt_base)?;
            attempt_base += self.policy.max_transient.max(1);
            if let Ok(v) = json::parse(&text) {
                return Ok(v);
            }
            match json::parse_lenient(&text) {
                Ok(v) => {
                    self.meter.bump(|s| s.parse_repairs += 1);
                    return Ok(v);
                }
                Err(_) => {
                    self.meter.bump(|s| {
                        s.parse_failures += 1;
                        if reask < self.policy.max_reask {
                            s.retries += 1;
                        }
                    });
                }
            }
        }
        Err(ArynError::Llm(format!(
            "{}: unparseable JSON after {} re-asks",
            self.model.name(),
            self.policy.max_reask
        )))
    }

    /// A structured call that walks the degradation chain. Each tier fits
    /// `context` to its own window via `prompt_fn` and runs the full
    /// `generate_json` ladder; the next (cheaper) tier is tried when a tier
    /// fails with [`ArynError::CircuitOpen`], [`ArynError::DeadlineExceeded`],
    /// or an exhausted retry ladder. When the deadline budget is low, tiers
    /// with a fallback are skipped proactively (why pay for GPT-4 when the
    /// answer may not land in time). With no fallback and no reliability
    /// state this is exactly `fit_prompt` + `generate_json`.
    pub fn generate_json_with_fallback(
        &self,
        context: &str,
        max_output: usize,
        prompt_fn: &dyn Fn(&str) -> String,
    ) -> Result<DegradedJson> {
        let mut tier = Some(self);
        let mut primary = true;
        let mut last_err = None;
        while let Some(c) = tier {
            // Proactive degradation: skip an expensive tier outright when
            // the remaining budget is below the policy threshold and a
            // cheaper tier exists.
            let skip = c.fallback.is_some()
                && c.reliability().is_some_and(|r| r.budget_low());
            if !skip {
                let prompt = c.fit_prompt(context, max_output, prompt_fn);
                match c.generate_json(&prompt, max_output) {
                    Ok(value) => {
                        if !primary {
                            self.meter.bump(|s| s.fallback_calls += 1);
                        }
                        return Ok(DegradedJson {
                            value,
                            degraded_to: (!primary).then(|| c.model_name().to_string()),
                        });
                    }
                    // These are the degradation triggers; anything else
                    // (context overflow, IO) propagates unchanged.
                    Err(
                        e @ (ArynError::CircuitOpen { .. }
                        | ArynError::DeadlineExceeded { .. }
                        | ArynError::Llm(_)),
                    ) => last_err = Some(e),
                    Err(e) => return Err(e),
                }
            }
            tier = c.fallback.as_deref();
            primary = false;
        }
        Err(last_err.unwrap_or_else(|| ArynError::Llm("no model tiers available".into())))
    }

    /// Runs `generate_json` over many prompts, preserving order. (The
    /// parallel executor in Sycamore parallelizes at the document level;
    /// this is the simple sequential path.)
    pub fn generate_json_batch(&self, prompts: &[String], max_output: usize) -> Vec<Result<Value>> {
        prompts
            .iter()
            .map(|p| self.generate_json(p, max_output))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{MockLlm, SimConfig};
    use crate::prompt::tasks;
    use crate::registry::{GPT35_SIM, GPT4_SIM, LLAMA7B_SIM};
    use aryn_core::obj;

    fn client(spec: &'static crate::registry::ModelSpec, cfg: SimConfig) -> LlmClient {
        LlmClient::new(Arc::new(MockLlm::new(spec, cfg)))
    }

    #[test]
    fn generate_json_parses_and_meters() {
        let c = client(&GPT4_SIM, SimConfig::perfect(1));
        let p = tasks::extract(&obj! { "city" => "string" }, "Happened near Denver, CO.");
        let v = c.generate_json(&p, 256).unwrap();
        assert_eq!(v.get("city").unwrap().as_str(), Some("Denver"));
        let s = c.stats();
        assert_eq!(s.calls, 1);
        assert!(s.usage.cost_usd > 0.0);
    }

    #[test]
    fn malformed_outputs_get_repaired_or_reasked() {
        let c = client(&LLAMA7B_SIM, SimConfig::with_seed(5));
        let mut ok = 0;
        for i in 0..200 {
            let p = tasks::extract(
                &obj! { "us_state_abbrev" => "string" },
                &format!("Case {i} near Anchorage, AK."),
            );
            if c.generate_json(&p, 256).is_ok() {
                ok += 1;
            }
        }
        let s = c.stats();
        assert!(s.parse_repairs > 0, "lenient repairs should fire: {s:?}");
        assert!(ok >= 195, "almost all calls should eventually parse: {ok}");
    }

    #[test]
    fn transient_failures_are_retried() {
        let c = client(&GPT35_SIM, SimConfig { seed: 9, transient_scale: 20.0, ..SimConfig::perfect(9) });
        // 20x the 1% transient rate = 20% per attempt; retries should push
        // success rate high anyway.
        let mut ok = 0;
        for i in 0..100 {
            let p = tasks::filter("mentions wind", &format!("doc {i} with wind"));
            if c.generate(&p, 64).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 95, "{ok}");
        assert!(c.stats().transient_failures > 0);
    }

    #[test]
    fn fit_prompt_respects_window() {
        let c = client(&LLAMA7B_SIM, SimConfig::perfect(2));
        let huge = "verbose filler text ".repeat(2000);
        let p = c.fit_prompt(&huge, 256, |ctx| tasks::answer("what?", ctx));
        assert!(count_tokens(&p) + 256 <= LLAMA7B_SIM.context_window);
        // And the model accepts it.
        assert!(c.generate(&p, 256).is_ok());
    }

    #[test]
    fn context_overflow_not_retried() {
        let c = client(&LLAMA7B_SIM, SimConfig::perfect(2));
        let huge = "word ".repeat(6000);
        let p = tasks::answer("what?", &huge);
        assert!(matches!(
            c.generate(&p, 128),
            Err(ArynError::ContextOverflow { .. })
        ));
        assert_eq!(c.stats().retries, 0);
    }

    #[test]
    fn meters_can_be_shared() {
        let meter = UsageMeter::new();
        let a = client(&GPT4_SIM, SimConfig::perfect(1)).with_meter(Arc::clone(&meter));
        let b = client(&GPT35_SIM, SimConfig::perfect(1)).with_meter(Arc::clone(&meter));
        let p = tasks::filter("x", "y");
        a.generate(&p, 32).unwrap();
        b.generate(&p, 32).unwrap();
        assert_eq!(meter.snapshot().calls, 2);
    }

    #[test]
    fn zero_transient_budget_still_calls_model_once() {
        // Regression: max_transient == 0 used to skip the model entirely and
        // report Llm("exhausted retries") for a call that never happened.
        let c = client(&GPT4_SIM, SimConfig::perfect(1)).with_policy(RetryPolicy {
            max_transient: 0,
            ..RetryPolicy::default()
        });
        let p = tasks::filter("mentions wind", "gusty wind all day");
        let text = c.generate(&p, 64).unwrap();
        assert!(!text.is_empty());
        assert_eq!(c.stats().calls, 1);
        assert_eq!(c.stats().retries, 0);
    }

    #[test]
    fn cache_serves_repeat_calls_without_model_calls() {
        let cache = Arc::new(crate::cache::LlmCallCache::with_capacity(32));
        let c = client(&GPT4_SIM, SimConfig::perfect(1)).with_cache(Arc::clone(&cache));
        let p = tasks::extract(&obj! { "city" => "string" }, "Happened near Denver, CO.");
        let v1 = c.generate_json(&p, 256).unwrap();
        let v2 = c.generate_json(&p, 256).unwrap();
        assert_eq!(v1, v2);
        // One real model call; the second was a hit and did not meter.
        assert_eq!(c.stats().calls, 1);
        let s = c.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.cost_saved_usd > 0.0);
    }

    /// A model that emits garbage at temperature 0 and valid JSON on the
    /// re-ask sample, counting every call it receives.
    struct ReaskModel {
        calls: std::sync::atomic::AtomicU64,
    }

    impl LanguageModel for ReaskModel {
        fn name(&self) -> &str {
            "reask-sim"
        }
        fn context_window(&self) -> usize {
            8192
        }
        fn generate(&self, req: &LlmRequest) -> Result<crate::model::LlmResponse> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let text = if req.temperature == 0.0 {
                "total garbage ]] not json".to_string()
            } else {
                "{\"ok\": true}".to_string()
            };
            Ok(crate::model::LlmResponse {
                text,
                usage: Usage {
                    input_tokens: 10,
                    output_tokens: 5,
                    cost_usd: 0.01,
                    latency_ms: 1.0,
                },
                model: "reask-sim".to_string(),
            })
        }
    }

    #[test]
    fn reask_samples_bypass_the_cache() {
        let cache = Arc::new(crate::cache::LlmCallCache::with_capacity(32));
        let c = LlmClient::new(Arc::new(ReaskModel {
            calls: std::sync::atomic::AtomicU64::new(0),
        }))
        .with_cache(Arc::clone(&cache));
        let v = c.generate_json("prompt", 64).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        // Call 1: temp-0 garbage (cached as a miss+insert). Call 2: the
        // temp-0.4 re-ask, never cached.
        assert_eq!(cache.len(), 1);
        let v = c.generate_json("prompt", 64).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let s = cache.stats();
        // Second query hit the cached garbage, then re-asked the model again.
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(c.stats().calls, 3, "temp0 + reask, then reask only");
    }

    #[test]
    fn inert_reliability_policy_changes_nothing() {
        use crate::reliability::{ReliabilityPolicy, ReliabilityState};
        let state = ReliabilityState::new(ReliabilityPolicy::default());
        let c = client(&GPT4_SIM, SimConfig::perfect(1)).with_reliability(state);
        let p = tasks::extract(&obj! { "city" => "string" }, "Happened near Denver, CO.");
        let v = c.generate_json(&p, 256).unwrap();
        assert_eq!(v.get("city").unwrap().as_str(), Some("Denver"));
        let s = c.stats();
        assert_eq!((s.calls, s.retries, s.breaker_trips), (1, 0, 0));
    }

    #[test]
    fn breaker_trips_then_fails_fast() {
        use crate::chaos::{ChaosModel, ChaosSchedule, FaultKind};
        use crate::reliability::{ReliabilityPolicy, ReliabilityState};
        let dead = Arc::new(ChaosModel::wrap(
            Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(1))),
            ChaosSchedule::calm().with_window(FaultKind::Blackout, 0, 1_000),
        ));
        let state = ReliabilityState::new(ReliabilityPolicy {
            breaker_window: 4,
            breaker_threshold: 0.5,
            breaker_cooldown_ms: 1e9,
            ..ReliabilityPolicy::default()
        });
        let c = LlmClient::new(Arc::clone(&dead) as Arc<dyn LanguageModel>)
            .with_reliability(state);
        // First logical call burns the retry ladder (4 attempts) and trips
        // the breaker on the 4th failure.
        let err = c.generate("hello", 32).unwrap_err();
        assert!(matches!(err, ArynError::Llm(_)), "{err}");
        assert_eq!(dead.calls(), 4);
        assert_eq!(c.stats().breaker_trips, 1);
        // Subsequent calls fail fast without touching the endpoint.
        let err = c.generate("hello again", 32).unwrap_err();
        assert!(matches!(err, ArynError::CircuitOpen { ref model } if model == "gpt-4-sim"));
        assert_eq!(dead.calls(), 4, "open breaker must not call the model");
    }

    #[test]
    fn deadline_exceeded_is_structured() {
        use crate::reliability::{ReliabilityPolicy, ReliabilityState};
        let state = ReliabilityState::new(ReliabilityPolicy {
            deadline_ms: 500.0,
            ..ReliabilityPolicy::default()
        });
        let c = client(&GPT4_SIM, SimConfig::perfect(1)).with_reliability(Arc::clone(&state));
        // GPT-4-sim's base latency alone (450ms) nearly exhausts the budget.
        let p = tasks::filter("mentions wind", "gusty wind all day");
        c.generate(&p, 64).unwrap();
        assert!(state.now_ms() >= 450.0);
        let err = c.generate(&tasks::filter("mentions rain", "heavy rain"), 64).unwrap_err();
        assert!(matches!(err, ArynError::DeadlineExceeded { .. }), "{err}");
    }

    #[test]
    fn fallback_chain_answers_and_flags_degradation() {
        use crate::chaos::{ChaosModel, ChaosSchedule, FaultKind};
        use crate::reliability::{ReliabilityPolicy, ReliabilityState};
        let dead = Arc::new(ChaosModel::wrap(
            Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(1))),
            ChaosSchedule::calm().with_window(FaultKind::Blackout, 0, 1_000),
        ));
        let state = ReliabilityState::new(ReliabilityPolicy {
            breaker_window: 4,
            breaker_threshold: 0.5,
            breaker_cooldown_ms: 1e9,
            ..ReliabilityPolicy::default()
        });
        let llama = client(&LLAMA7B_SIM, SimConfig::perfect(1))
            .with_reliability(Arc::clone(&state));
        let c = LlmClient::new(Arc::clone(&dead) as Arc<dyn LanguageModel>)
            .with_reliability(state)
            .with_fallback(llama);
        let out = c
            .generate_json_with_fallback("Happened near Denver, CO.", 256, &|ctx| {
                tasks::extract(&obj! { "city" => "string" }, ctx)
            })
            .unwrap();
        assert_eq!(out.degraded_to.as_deref(), Some("llama-7b-sim"));
        assert_eq!(out.value.get("city").unwrap().as_str(), Some("Denver"));
        assert_eq!(c.stats().fallback_calls, 1);
        // Second call: the open breaker skips the dead endpoint entirely.
        let calls_before = dead.calls();
        let out = c
            .generate_json_with_fallback("Happened near Austin, TX.", 256, &|ctx| {
                tasks::extract(&obj! { "city" => "string" }, ctx)
            })
            .unwrap();
        assert_eq!(out.degraded_to.as_deref(), Some("llama-7b-sim"));
        assert_eq!(dead.calls(), calls_before);
    }

    #[test]
    fn low_budget_skips_the_expensive_tier_proactively() {
        use crate::reliability::{ReliabilityPolicy, ReliabilityState};
        let state = ReliabilityState::new(ReliabilityPolicy {
            deadline_ms: 10_000.0,
            degrade_below_ms: 20_000.0, // remaining (10s) is already "low"
            ..ReliabilityPolicy::default()
        });
        let gpt4_meter = UsageMeter::new();
        let llama = client(&LLAMA7B_SIM, SimConfig::perfect(1))
            .with_reliability(Arc::clone(&state));
        let c = client(&GPT4_SIM, SimConfig::perfect(1))
            .with_meter(Arc::clone(&gpt4_meter))
            .with_reliability(state)
            .with_fallback(llama);
        let out = c
            .generate_json_with_fallback("Happened near Denver, CO.", 256, &|ctx| {
                tasks::extract(&obj! { "city" => "string" }, ctx)
            })
            .unwrap();
        assert_eq!(out.degraded_to.as_deref(), Some("llama-7b-sim"));
        assert_eq!(gpt4_meter.snapshot().calls, 0, "primary tier skipped");
        assert_eq!(c.stats().fallback_calls, 1);
    }

    #[test]
    fn batch_preserves_order() {
        let c = client(&GPT4_SIM, SimConfig::perfect(3));
        let prompts: Vec<String> = ["Denver, CO.", "Austin, TX."]
            .iter()
            .map(|d| tasks::extract(&obj! { "us_state_abbrev" => "string" }, d))
            .collect();
        let out = c.generate_json_batch(&prompts, 128);
        assert_eq!(out[0].as_ref().unwrap().get("us_state_abbrev").unwrap().as_str(), Some("CO"));
        assert_eq!(out[1].as_ref().unwrap().get("us_state_abbrev").unwrap().as_str(), Some("TX"));
    }
}
