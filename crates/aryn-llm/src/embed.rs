//! Embedding models.
//!
//! The stand-in for hosted embedding endpoints is a hashed bag-of-words
//! embedder with IDF-style term weighting: each analyzed term hashes to a
//! dimension and a sign, weighted by an approximate inverse document
//! frequency, and the vector is L2-normalized. Cosine similarity then
//! reflects real term overlap — and, critically for reproducing the paper's
//! §2 claim, *discrimination genuinely degrades* as the corpus grows, because
//! distinct vocabularies collide in a fixed number of dimensions and nearest
//! neighbours crowd together.

use aryn_core::text::analyze;
use aryn_core::{stable_hash, ArynError, Result};

/// An embedding model mapping text to fixed-dimension vectors.
pub trait EmbeddingModel: Send + Sync {
    fn name(&self) -> &str;
    fn dims(&self) -> usize;
    fn embed(&self, text: &str) -> Vec<f32>;

    fn embed_batch(&self, texts: &[String]) -> Vec<Vec<f32>> {
        texts.iter().map(|t| self.embed(t)).collect()
    }
}

/// Hashed bag-of-words embedder (feature hashing / random projection).
///
/// ```
/// use aryn_llm::{cosine, EmbeddingModel, HashedBowEmbedder};
/// let e = HashedBowEmbedder::new(128, 7);
/// let a = e.embed("wind gusts during the landing approach");
/// let b = e.embed("gusting winds while landing");
/// let c = e.embed("quarterly revenue and earnings");
/// assert!(cosine(&a, &b).unwrap() > cosine(&a, &c).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct HashedBowEmbedder {
    pub dims: usize,
    pub seed: u64,
    /// Number of hash projections per term; >1 smooths collisions.
    pub projections: usize,
}

impl HashedBowEmbedder {
    pub fn new(dims: usize, seed: u64) -> HashedBowEmbedder {
        HashedBowEmbedder {
            dims,
            seed,
            projections: 2,
        }
    }

    /// A crude universal IDF: rarer-looking (longer) terms weigh more, and
    /// a few ubiquitous document words are damped. A real model learns this;
    /// a hash-based one must approximate it statically.
    fn term_weight(term: &str) -> f32 {
        let damped = matches!(
            term,
            "report" | "document" | "page" | "company" | "airplane" | "pilot" | "quarter"
        );
        let len_boost = (term.len() as f32 / 4.0).min(2.0);
        if damped {
            0.3
        } else {
            0.5 + 0.5 * len_boost
        }
    }
}

impl EmbeddingModel for HashedBowEmbedder {
    fn name(&self) -> &str {
        "hashed-bow"
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dims];
        for term in analyze(text) {
            let w = Self::term_weight(&term);
            for p in 0..self.projections {
                let h = stable_hash(self.seed.wrapping_add(p as u64), &[&term]);
                let dim = (h % self.dims as u64) as usize;
                let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
                v[dim] += sign * w;
            }
        }
        l2_normalize(&mut v);
        v
    }
}

/// Normalizes in place; zero vectors stay zero.
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity; errors on dimension mismatch.
pub fn cosine(a: &[f32], b: &[f32]) -> Result<f32> {
    if a.len() != b.len() {
        return Err(ArynError::Index(format!(
            "dimension mismatch: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return Ok(0.0);
    }
    Ok(dot / (na * nb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> HashedBowEmbedder {
        HashedBowEmbedder::new(256, 42)
    }

    #[test]
    fn vectors_are_unit_norm() {
        let v = emb().embed("the pilot reported wind gusts on approach");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let v = emb().embed("");
        assert!(v.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let e = emb();
        let a = e.embed("the airplane encountered strong wind during landing approach");
        let b = e.embed("wind gusts during the landing approach affected the airplane");
        let c = e.embed("quarterly revenue grew and earnings per share beat guidance");
        let sim_ab = cosine(&a, &b).unwrap();
        let sim_ac = cosine(&a, &c).unwrap();
        assert!(sim_ab > sim_ac + 0.2, "ab={sim_ab} ac={sim_ac}");
    }

    #[test]
    fn deterministic_across_calls_and_seeded() {
        let e = emb();
        assert_eq!(e.embed("wind"), e.embed("wind"));
        let other = HashedBowEmbedder::new(256, 43);
        assert_ne!(e.embed("wind"), other.embed("wind"));
    }

    #[test]
    fn cosine_edge_cases() {
        assert!(cosine(&[1.0, 0.0], &[1.0]).is_err());
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]).unwrap(), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]).unwrap() - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn stemming_makes_variants_match() {
        let e = emb();
        let a = e.embed("reported injuries");
        let b = e.embed("reporting injury");
        assert!(cosine(&a, &b).unwrap() > 0.9);
    }

    #[test]
    fn batch_matches_single() {
        let e = emb();
        let texts = vec!["alpha".to_string(), "beta".to_string()];
        let batch = e.embed_batch(&texts);
        assert_eq!(batch[0], e.embed("alpha"));
        assert_eq!(batch[1], e.embed("beta"));
    }
}
