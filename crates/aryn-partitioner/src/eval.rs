//! COCO-style detection evaluation: mean average precision (mAP) and mean
//! average recall (mAR) over IoU thresholds 0.50:0.05:0.95, averaged over
//! the 11 DocLayNet classes.
//!
//! This is the metric behind the paper's §4 comparison: the Aryn Partitioner
//! "achieved a mean average precision (mAP) of 0.602 and a mean average
//! recall (mAR) of 0.743 on the DocLayNet competition benchmark. By contrast,
//! a document API from a large cloud vendor achieved only an mAP of 0.344
//! with an mAR of 0.466."

use aryn_core::{BBox, ElementType};

/// A predicted region.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Which document/page group this detection belongs to (matching is
    /// per-group so boxes never match across pages).
    pub group: usize,
    pub etype: ElementType,
    pub bbox: BBox,
    pub confidence: f32,
}

/// A ground-truth region.
#[derive(Debug, Clone, PartialEq)]
pub struct GtRegion {
    pub group: usize,
    pub etype: ElementType,
    pub bbox: BBox,
}

/// Evaluation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionMetrics {
    /// mAP@[.50:.95] averaged over classes.
    pub map: f64,
    /// mAR@[.50:.95] averaged over classes.
    pub mar: f64,
    /// AP@0.50 averaged over classes (the lenient headline number).
    pub ap50: f64,
    /// Per-class AP@[.50:.95] for classes present in ground truth.
    pub per_class_ap: Vec<(ElementType, f64)>,
}

const IOU_THRESHOLDS: [f32; 10] = [0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95];

/// Computes detection metrics over a whole dataset.
pub fn evaluate(detections: &[Detection], ground_truth: &[GtRegion]) -> DetectionMetrics {
    let classes: Vec<ElementType> = ElementType::ALL
        .into_iter()
        .filter(|t| ground_truth.iter().any(|g| g.etype == *t))
        .collect();
    let mut per_class_ap = Vec::with_capacity(classes.len());
    let mut map_sum = 0.0;
    let mut mar_sum = 0.0;
    let mut ap50_sum = 0.0;
    for class in &classes {
        let dets: Vec<&Detection> = detections.iter().filter(|d| d.etype == *class).collect();
        let gts: Vec<&GtRegion> = ground_truth.iter().filter(|g| g.etype == *class).collect();
        let mut ap_acc = 0.0;
        let mut rec_acc = 0.0;
        let mut ap50 = 0.0;
        for (ti, thr) in IOU_THRESHOLDS.iter().enumerate() {
            let (ap, recall) = ap_at_iou(&dets, &gts, *thr);
            ap_acc += ap;
            rec_acc += recall;
            if ti == 0 {
                ap50 = ap;
            }
        }
        let ap = ap_acc / IOU_THRESHOLDS.len() as f64;
        per_class_ap.push((*class, ap));
        map_sum += ap;
        mar_sum += rec_acc / IOU_THRESHOLDS.len() as f64;
        ap50_sum += ap50;
    }
    let n = classes.len().max(1) as f64;
    DetectionMetrics {
        map: map_sum / n,
        mar: mar_sum / n,
        ap50: ap50_sum / n,
        per_class_ap,
    }
}

/// Average precision and final recall for one class at one IoU threshold.
fn ap_at_iou(dets: &[&Detection], gts: &[&GtRegion], thr: f32) -> (f64, f64) {
    if gts.is_empty() {
        return (0.0, 0.0);
    }
    // Sort detections by confidence, descending; ties broken stably.
    let mut order: Vec<usize> = (0..dets.len()).collect();
    order.sort_by(|&a, &b| {
        dets[b]
            .confidence
            .partial_cmp(&dets[a].confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut matched = vec![false; gts.len()];
    let mut tp = Vec::with_capacity(dets.len());
    for &di in &order {
        let d = dets[di];
        // Best unmatched GT in the same group.
        let mut best: Option<(usize, f32)> = None;
        for (gi, g) in gts.iter().enumerate() {
            if g.group != d.group || matched[gi] {
                continue;
            }
            let iou = d.bbox.iou(&g.bbox);
            if iou >= thr && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        match best {
            Some((gi, _)) => {
                matched[gi] = true;
                tp.push(true);
            }
            None => tp.push(false),
        }
    }
    // Precision/recall curve.
    let total_gt = gts.len() as f64;
    let mut cum_tp = 0.0;
    let mut cum_fp = 0.0;
    let mut curve: Vec<(f64, f64)> = Vec::with_capacity(tp.len()); // (recall, precision)
    for is_tp in &tp {
        if *is_tp {
            cum_tp += 1.0;
        } else {
            cum_fp += 1.0;
        }
        curve.push((cum_tp / total_gt, cum_tp / (cum_tp + cum_fp)));
    }
    let final_recall = cum_tp / total_gt;
    // All-point interpolation: make precision monotonically non-increasing
    // from the right, then integrate over recall.
    let mut max_p = 0.0;
    for i in (0..curve.len()).rev() {
        max_p = curve[i].1.max(max_p);
        curve[i].1 = max_p;
    }
    let mut ap = 0.0;
    let mut prev_r = 0.0;
    for (r, p) in &curve {
        ap += (r - prev_r) * p;
        prev_r = *r;
    }
    (ap, final_recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: f32, y0: f32, w: f32, h: f32) -> BBox {
        BBox::new(x0, y0, x0 + w, y0 + h)
    }

    fn gt(group: usize, etype: ElementType, bbox: BBox) -> GtRegion {
        GtRegion { group, etype, bbox }
    }

    fn det(group: usize, etype: ElementType, bbox: BBox, c: f32) -> Detection {
        Detection {
            group,
            etype,
            bbox,
            confidence: c,
        }
    }

    #[test]
    fn perfect_detections_score_one() {
        let gts = vec![
            gt(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0)),
            gt(0, ElementType::Title, b(0.0, 40.0, 100.0, 20.0)),
            gt(1, ElementType::Text, b(0.0, 0.0, 80.0, 15.0)),
        ];
        let dets: Vec<Detection> = gts
            .iter()
            .map(|g| det(g.group, g.etype, g.bbox, 0.9))
            .collect();
        let m = evaluate(&dets, &gts);
        assert!((m.map - 1.0).abs() < 1e-9, "{m:?}");
        assert!((m.mar - 1.0).abs() < 1e-9);
        assert!((m.ap50 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_detections_score_zero() {
        let gts = vec![gt(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0))];
        let m = evaluate(&[], &gts);
        assert_eq!(m.map, 0.0);
        assert_eq!(m.mar, 0.0);
    }

    #[test]
    fn wrong_class_does_not_match() {
        let gts = vec![gt(0, ElementType::Table, b(0.0, 0.0, 100.0, 50.0))];
        let dets = vec![det(0, ElementType::Text, b(0.0, 0.0, 100.0, 50.0), 0.9)];
        let m = evaluate(&dets, &gts);
        assert_eq!(m.map, 0.0);
    }

    #[test]
    fn wrong_group_does_not_match() {
        let gts = vec![gt(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0))];
        let dets = vec![det(1, ElementType::Text, b(0.0, 0.0, 100.0, 20.0), 0.9)];
        assert_eq!(evaluate(&dets, &gts).map, 0.0);
    }

    #[test]
    fn slightly_jittered_boxes_pass_low_thresholds_only() {
        // IoU of ~0.8 passes 7 of 10 thresholds.
        let gts = vec![gt(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0))];
        let dets = vec![det(0, ElementType::Text, b(0.0, 0.0, 100.0, 16.2), 0.9)]; // IoU ≈ 0.81
        let m = evaluate(&dets, &gts);
        assert!(m.ap50 > 0.99);
        assert!((m.map - 0.7).abs() < 0.11, "{}", m.map);
    }

    #[test]
    fn duplicate_detections_count_as_false_positives() {
        let gts = vec![gt(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0))];
        let dets = vec![
            det(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0), 0.9),
            det(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0), 0.8),
        ];
        let m = evaluate(&dets, &gts);
        // AP stays 1.0 (the duplicate ranks after full recall), recall is 1.
        assert!((m.map - 1.0).abs() < 1e-9);
        // But flipping confidences makes the duplicate rank first and drags AP.
        let dets2 = vec![
            det(0, ElementType::Text, b(50.0, 50.0, 10.0, 10.0), 0.95), // pure FP, top-ranked
            det(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0), 0.8),
        ];
        let m2 = evaluate(&dets2, &gts);
        assert!(m2.map < 0.6, "{}", m2.map);
    }

    #[test]
    fn map_averages_over_classes() {
        // Text perfect, Table missed entirely → mAP = 0.5.
        let gts = vec![
            gt(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0)),
            gt(0, ElementType::Table, b(0.0, 50.0, 100.0, 40.0)),
        ];
        let dets = vec![det(0, ElementType::Text, b(0.0, 0.0, 100.0, 20.0), 0.9)];
        let m = evaluate(&dets, &gts);
        assert!((m.map - 0.5).abs() < 1e-9);
        assert_eq!(m.per_class_ap.len(), 2);
    }

    #[test]
    fn missed_fraction_caps_recall() {
        let gts: Vec<GtRegion> = (0..10)
            .map(|i| gt(i, ElementType::Text, b(0.0, 0.0, 100.0, 20.0)))
            .collect();
        // Detect 6 of 10 perfectly.
        let dets: Vec<Detection> = (0..6)
            .map(|i| det(i, ElementType::Text, b(0.0, 0.0, 100.0, 20.0), 0.9))
            .collect();
        let m = evaluate(&dets, &gts);
        assert!((m.mar - 0.6).abs() < 1e-9);
        assert!((m.map - 0.6).abs() < 1e-9);
    }
}
