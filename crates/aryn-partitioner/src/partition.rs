//! The Aryn Partitioner: raw pages in, partitioned [`Document`] out.
//!
//! Pipeline (paper §4): detect labeled regions with the segmentation model
//! (+ calibrated noise), recover table structure for Table regions, OCR any
//! image-embedded text, and optionally summarize images with a multimodal
//! LLM. "The output of the Aryn Partitioner can be consumed directly as JSON
//! or integrated with the Sycamore document processing system."

use crate::noise::{self, NoiseModel, DETR_SIM, VENDOR_SIM};
use crate::ocr::OcrEngine;
use crate::segment::{segment, Region};
use crate::tables;
use aryn_core::{obj, stable_hash, Document, Element, ElementType, ImageInfo, LineageRecord, Value};
use aryn_docgen::layout::RawDocument;
use aryn_llm::prompt::tasks;
use aryn_llm::LlmClient;
use aryn_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Which detector backbone to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// The Deformable-DETR-class model (the Aryn model).
    DetrSim,
    /// The cloud-vendor document API baseline.
    VendorSim,
    /// The noiseless geometric segmenter (upper bound / debugging).
    Oracle,
}

impl Detector {
    pub fn noise(&self) -> Option<&'static NoiseModel> {
        match self {
            Detector::DetrSim => Some(&DETR_SIM),
            Detector::VendorSim => Some(&VENDOR_SIM),
            Detector::Oracle => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Detector::DetrSim => "detr-sim",
            Detector::VendorSim => "vendor-sim",
            Detector::Oracle => "oracle",
        }
    }
}

/// Partitioner configuration.
pub struct PartitionerOptions {
    pub detector: Detector,
    /// Recover table structure for Table regions.
    pub extract_tables: bool,
    /// Merge cross-page table continuations (header propagation).
    pub merge_tables: bool,
    /// Run OCR over image-embedded text.
    pub use_ocr: bool,
    /// Summarize images via a multimodal LLM client.
    pub summarize_images: Option<LlmClient>,
    pub seed: u64,
    /// Span collector for per-document stage timings (detect / assemble /
    /// tables) and counters. The default is a disabled null sink.
    pub telemetry: Telemetry,
}

impl Default for PartitionerOptions {
    fn default() -> Self {
        PartitionerOptions {
            detector: Detector::DetrSim,
            extract_tables: true,
            merge_tables: true,
            use_ocr: true,
            summarize_images: None,
            seed: 0x9A27,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The partitioner.
pub struct Partitioner {
    opts: PartitionerOptions,
    ocr: OcrEngine,
}

impl Partitioner {
    pub fn new(opts: PartitionerOptions) -> Partitioner {
        let ocr = OcrEngine {
            seed: opts.seed,
            ..OcrEngine::default()
        };
        Partitioner { opts, ocr }
    }

    pub fn with_detector(detector: Detector) -> Partitioner {
        Partitioner::new(PartitionerOptions {
            detector,
            ..PartitionerOptions::default()
        })
    }

    /// Detects labeled regions (detector output before element assembly).
    pub fn detect(&self, raw: &RawDocument, doc_key: &str) -> Vec<Region> {
        let clean = segment(raw);
        match self.opts.detector.noise() {
            Some(model) => noise::apply(model, &clean, self.opts.seed, doc_key),
            None => clean,
        }
    }

    /// Partitions a raw document into a [`Document`] with typed elements.
    pub fn partition(&self, id: &str, raw: &RawDocument) -> Document {
        let detect_start = Instant::now();
        let regions = self.detect(raw, id);
        let detect_ms = detect_start.elapsed().as_secs_f64() * 1e3;
        let mut ocr_calls = 0u64;
        let mut image_summaries = 0u64;
        let assemble_start = Instant::now();
        let mut doc = Document::new(id);
        doc.content = aryn_core::DocContent::Text(raw.full_text());
        let mut rng = StdRng::seed_from_u64(stable_hash(self.opts.seed, &["confidence", id]));
        let noise_model = self.opts.detector.noise();
        for region in &regions {
            let mut e = Element::text(region.etype, region.text.clone());
            e.page = region.page;
            e.bbox = Some(region.bbox);
            e.confidence = match noise_model {
                Some(m) => noise::confidence(m, &mut rng),
                None => 1.0,
            };
            if region.etype == ElementType::Picture {
                // Attach the raster stand-in.
                if let Some(img) = raw
                    .images
                    .iter()
                    .find(|im| im.page == region.page && im.bbox.iou(&region.bbox) > 0.3)
                {
                    let mut info = ImageInfo {
                        format: "png".into(),
                        width_px: img.bbox.width() as u32,
                        height_px: img.bbox.height() as u32,
                        summary: None,
                        ocr_text: None,
                    };
                    if self.opts.use_ocr && !img.embedded_text.is_empty() {
                        info.ocr_text =
                            Some(self.ocr.recognize(&img.embedded_text, &format!("{id}/{}", region.page)));
                        ocr_calls += 1;
                    }
                    if let Some(client) = &self.opts.summarize_images {
                        info.summary = summarize_image(client, &img.description).ok();
                        image_summaries += 1;
                    }
                    e.properties
                        .set_path("image_description", Value::from(img.description.as_str()));
                    e.image = Some(info);
                }
            }
            doc.elements.push(e);
        }
        let assemble_ms = assemble_start.elapsed().as_secs_f64() * 1e3;
        let tables_start = Instant::now();
        if self.opts.extract_tables {
            tables::attach_tables(&mut doc, raw);
        }
        let table_count = |d: &Document| d.elements.iter().filter(|e| e.etype == ElementType::Table).count();
        let tables_before_merge = table_count(&doc);
        if self.opts.merge_tables {
            tables::merge_cross_page_tables(&mut doc);
        }
        let tables_merged = tables_before_merge - table_count(&doc);
        let tables_ms = tables_start.elapsed().as_secs_f64() * 1e3;
        doc.lineage.push(LineageRecord::new(
            "partition",
            format!("detector={} pages={}", self.opts.detector.name(), raw.pages),
        ));
        if self.opts.telemetry.is_enabled() {
            let structured = doc
                .elements
                .iter()
                .filter(|e| e.etype == ElementType::Table && e.table.is_some())
                .count();
            let mut span = self.opts.telemetry.span("partition_doc", "partitioner");
            span.note(format!("doc={id} detector={}", self.opts.detector.name()));
            span.set("regions", regions.len() as u64)
                .set("elements", doc.elements.len() as u64)
                .set("ocr_calls", ocr_calls)
                .set("image_summaries", image_summaries)
                .set("tables_structured", structured as u64)
                .set("tables_merged", tables_merged as u64)
                .gauge("detect_ms", detect_ms)
                .gauge("assemble_ms", assemble_ms)
                .gauge("tables_ms", tables_ms);
            span.finish();
        }
        doc
    }

    /// The partitioner's raw JSON output shape (paper §4: "consumed directly
    /// as JSON").
    pub fn partition_json(&self, id: &str, raw: &RawDocument) -> Value {
        let doc = self.partition(id, raw);
        let elements: Vec<Value> = doc
            .elements
            .iter()
            .map(|e| {
                let mut v = obj! {
                    "type" => e.etype.name(),
                    "page" => e.page as i64,
                    "text" => e.text.as_str(),
                    "confidence" => e.confidence as f64,
                };
                if let Some(b) = e.bbox {
                    v.set_path(
                        "bbox",
                        Value::Array(vec![
                            Value::Float(b.x0 as f64),
                            Value::Float(b.y0 as f64),
                            Value::Float(b.x1 as f64),
                            Value::Float(b.y1 as f64),
                        ]),
                    );
                }
                if let Some(t) = &e.table {
                    v.set_path("table_csv", Value::from(t.to_csv()));
                }
                v
            })
            .collect();
        obj! { "doc_id" => id, "elements" => Value::Array(elements) }
    }
}

/// Summarizes an image via the multimodal path: the raster's description is
/// what a vision encoder would "see"; the LLM turns it into a queryable
/// summary.
fn summarize_image(client: &LlmClient, description: &str) -> aryn_core::Result<String> {
    let prompt = tasks::summarize(
        "Describe the key content of this document image in one sentence.",
        description,
    );
    let v = client.generate_json(&prompt, 128)?;
    v.get("summary")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| aryn_core::ArynError::Llm("summary missing".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_docgen::{Corpus, NtsbRecord};
    use aryn_llm::{MockLlm, SimConfig, GPT4_SIM};
    use std::sync::Arc;

    #[test]
    fn oracle_partition_matches_ground_truth_closely() {
        let c = Corpus::ntsb(1, 4);
        let p = Partitioner::with_detector(Detector::Oracle);
        for d in &c.docs {
            let doc = p.partition(&d.id, &d.raw);
            // Element count within one of GT count (merges aside).
            let gt_n = d.ground_truth.boxes.len();
            let got = doc.elements.len();
            assert!(
                (got as i64 - gt_n as i64).abs() <= 2,
                "{}: got {got}, gt {gt_n}",
                d.id
            );
            assert!(doc.first_table().is_some());
        }
    }

    #[test]
    fn detr_detects_most_elements_vendor_fewer() {
        let c = Corpus::mixed(2, 10, 10);
        let detr = Partitioner::with_detector(Detector::DetrSim);
        let vendor = Partitioner::with_detector(Detector::VendorSim);
        // Count tables with *recovered structure* — the vendor baseline can
        // occasionally mislabel a picture as a table, but it never produces
        // a structured grid.
        let structured = |doc: &Document| {
            doc.elements
                .iter()
                .filter(|e| e.etype == ElementType::Table && e.table.is_some())
                .count()
        };
        let mut detr_tables = 0;
        let mut vendor_tables = 0;
        for d in &c.docs {
            detr_tables += structured(&detr.partition(&d.id, &d.raw));
            vendor_tables += structured(&vendor.partition(&d.id, &d.raw));
        }
        assert!(detr_tables > 0);
        assert_eq!(vendor_tables, 0, "vendor cannot recover table structure");
    }

    #[test]
    fn partition_attaches_structured_tables() {
        let c = Corpus::ntsb(3, 2);
        let p = Partitioner::with_detector(Detector::Oracle);
        let doc = p.partition(&c.docs[0].id, &c.docs[0].raw);
        let t = doc.first_table().unwrap();
        assert!(t.cols >= 2);
        assert!(t.headers().iter().any(|h| h.contains("Injuries") || h.contains("Crew")));
    }

    #[test]
    fn ocr_text_attached_to_pictures() {
        // Find a doc with an image.
        let c = Corpus::ntsb(9, 40);
        let d = c
            .docs
            .iter()
            .find(|d| !d.raw.images.is_empty())
            .expect("a doc with an image");
        let p = Partitioner::with_detector(Detector::Oracle);
        let doc = p.partition(&d.id, &d.raw);
        let pic = doc
            .elements_of(ElementType::Picture)
            .next()
            .expect("picture element");
        let ocr = pic.image.as_ref().unwrap().ocr_text.as_ref().unwrap();
        assert!(ocr.contains("NTSB") || ocr.contains("photo") || !ocr.is_empty());
    }

    #[test]
    fn image_summaries_flow_through_llm() {
        let c = Corpus::ntsb(9, 40);
        let d = c.docs.iter().find(|d| !d.raw.images.is_empty()).unwrap();
        let client = LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(1))));
        let p = Partitioner::new(PartitionerOptions {
            detector: Detector::Oracle,
            summarize_images: Some(client.clone()),
            ..PartitionerOptions::default()
        });
        let doc = p.partition(&d.id, &d.raw);
        let pic = doc.elements_of(ElementType::Picture).next().unwrap();
        let summary = pic.image.as_ref().unwrap().summary.as_ref().unwrap();
        assert!(summary.to_lowercase().contains("wreckage"), "{summary}");
        assert!(client.stats().calls >= 1);
    }

    #[test]
    fn json_output_shape() {
        let r = NtsbRecord::generate(1, 1);
        let (raw, _) = aryn_docgen::ntsb::render(&r);
        let p = Partitioner::with_detector(Detector::Oracle);
        let v = p.partition_json(&r.id, &raw);
        assert_eq!(v.get("doc_id").unwrap().as_str(), Some(r.id.as_str()));
        let els = v.get("elements").unwrap().as_array().unwrap();
        assert!(!els.is_empty());
        assert!(els[0].get("type").is_some());
        assert!(els[0].get("bbox").is_some());
        assert!(els.iter().any(|e| e.get("table_csv").is_some()));
    }

    #[test]
    fn partition_is_deterministic() {
        let c = Corpus::ntsb(4, 1);
        let p = Partitioner::with_detector(Detector::DetrSim);
        let a = p.partition(&c.docs[0].id, &c.docs[0].raw);
        let b = p.partition(&c.docs[0].id, &c.docs[0].raw);
        assert_eq!(a, b);
    }

    #[test]
    fn lineage_records_partition_step() {
        let c = Corpus::ntsb(4, 1);
        let p = Partitioner::with_detector(Detector::DetrSim);
        let doc = p.partition(&c.docs[0].id, &c.docs[0].raw);
        assert_eq!(doc.lineage.len(), 1);
        assert_eq!(doc.lineage[0].transform, "partition");
        assert!(doc.lineage[0].detail.contains("detr-sim"));
    }
}

#[cfg(test)]
mod confidence_tests {
    use super::*;
    use aryn_docgen::Corpus;

    #[test]
    fn confidence_pruning_trades_recall_for_precision() {
        let c = Corpus::ntsb(6, 10);
        let p = Partitioner::with_detector(Detector::VendorSim);
        let mut survivors = 0usize;
        let mut dropped = 0usize;
        for d in &c.docs {
            let mut doc = p.partition(&d.id, &d.raw);
            let before = doc.elements.len();
            let removed = doc.retain_confident(0.7);
            assert_eq!(doc.elements.len() + removed, before);
            assert!(doc.elements.iter().all(|e| e.confidence >= 0.7));
            survivors += doc.elements.len();
            dropped += removed;
        }
        // The vendor detector's confidence spread guarantees both survivors
        // and prunes at the 0.7 bar across the corpus.
        assert!(survivors > 0 && dropped > 0, "{survivors}/{dropped}");
    }
}
