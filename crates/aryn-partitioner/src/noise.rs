//! Detector noise models.
//!
//! The clean segmenter ([`mod@crate::segment`]) is near-perfect on synthetic
//! pages; real detectors are not. [`NoiseModel`] degrades clean regions with
//! the failure modes detection models actually exhibit — misses, label
//! confusion, box jitter, spurious splits and merges — with rates calibrated
//! so that:
//!
//! * [`DETR_SIM`] scores ≈ mAP 0.602 / mAR 0.743 (the paper's model), and
//! * [`VENDOR_SIM`] scores ≈ mAP 0.344 / mAR 0.466 (the cloud-vendor API),
//!
//! on the synthetic benchmark (experiment E1).

use crate::segment::Region;
use aryn_core::{stable_hash, BBox, ElementType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure rates for a simulated detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Probability a region is not detected at all.
    pub miss_rate: f64,
    /// Probability the label is confused with a plausible neighbour class.
    pub confusion_rate: f64,
    /// Box edge jitter as a fraction of width/height (uniform ±).
    pub jitter: f32,
    /// Probability a region is split into two stacked detections.
    pub split_rate: f64,
    /// Probability a region is merged into the previous detection.
    pub merge_rate: f64,
    /// Whether the detector understands tables at all; without it, Table
    /// regions are emitted as Text (the vendor-API failure the paper calls
    /// out: downstream table structure is unrecoverable).
    pub detects_tables: bool,
    /// Mean confidence for correct detections.
    pub base_confidence: f32,
}

/// Calibrated profile for the Deformable-DETR-class model.
pub const DETR_SIM: NoiseModel = NoiseModel {
    miss_rate: 0.025,
    confusion_rate: 0.10,
    jitter: 0.049,
    split_rate: 0.02,
    merge_rate: 0.02,
    detects_tables: true,
    base_confidence: 0.86,
};

/// Calibrated profile for the cloud-vendor document API.
pub const VENDOR_SIM: NoiseModel = NoiseModel {
    miss_rate: 0.065,
    confusion_rate: 0.145,
    jitter: 0.080,
    split_rate: 0.05,
    merge_rate: 0.05,
    detects_tables: false,
    base_confidence: 0.70,
};

/// Classes a label gets confused *into* (visually similar neighbours).
fn confusable(etype: ElementType) -> &'static [ElementType] {
    use ElementType::*;
    match etype {
        Title => &[SectionHeader, Text],
        SectionHeader => &[Title, Text],
        Text => &[ListItem, Caption],
        ListItem => &[Text],
        Caption => &[Text, Footnote],
        Footnote => &[PageFooter, Caption],
        PageHeader => &[Text, Title],
        PageFooter => &[Footnote, Text],
        Table => &[Text],
        Picture => &[Table, Text],
        Formula => &[Text],
    }
}

/// Applies the noise model to clean regions. Deterministic for a given
/// `(seed, doc_key)`.
pub fn apply(model: &NoiseModel, regions: &[Region], seed: u64, doc_key: &str) -> Vec<Region> {
    let mut rng = StdRng::seed_from_u64(stable_hash(seed, &["detector-noise", doc_key]));
    let mut out: Vec<Region> = Vec::with_capacity(regions.len());
    for r in regions {
        if rng.gen_bool(model.miss_rate) {
            continue;
        }
        let mut region = r.clone();
        // Vendor-style detectors flatten tables to text.
        if !model.detects_tables && region.etype == ElementType::Table {
            region.etype = ElementType::Text;
            region.fragment_ids.clear();
        }
        if rng.gen_bool(model.confusion_rate) {
            let opts = confusable(region.etype);
            region.etype = opts[rng.gen_range(0..opts.len())];
        }
        region.bbox = jitter_box(&region.bbox, model.jitter, &mut rng);
        // Merge with previous detection on the same page.
        if rng.gen_bool(model.merge_rate) {
            if let Some(prev) = out.last_mut() {
                if prev.page == region.page {
                    prev.bbox = prev.bbox.union(&region.bbox);
                    prev.text.push(' ');
                    prev.text.push_str(&region.text);
                    prev.fragment_ids.extend(region.fragment_ids.iter().copied());
                    continue;
                }
            }
        }
        // Split into two stacked halves.
        if rng.gen_bool(model.split_rate) && region.bbox.height() > 20.0 {
            let mid = (region.bbox.y0 + region.bbox.y1) / 2.0;
            let top = Region {
                bbox: BBox::new(region.bbox.x0, region.bbox.y0, region.bbox.x1, mid),
                fragment_ids: Vec::new(),
                ..region.clone()
            };
            let bottom = Region {
                bbox: BBox::new(region.bbox.x0, mid, region.bbox.x1, region.bbox.y1),
                fragment_ids: Vec::new(),
                ..region.clone()
            };
            out.push(top);
            out.push(bottom);
            continue;
        }
        out.push(region);
    }
    out
}

/// Confidence for a detection under this model (correct detections score
/// higher; callers don't know which are correct, so this keys off the draw).
pub fn confidence(model: &NoiseModel, rng: &mut StdRng) -> f32 {
    (model.base_confidence + rng.gen_range(-0.12f32..0.13)).clamp(0.05, 0.99)
}

fn jitter_box(b: &BBox, jitter: f32, rng: &mut StdRng) -> BBox {
    let jw = b.width() * jitter;
    let jh = b.height() * jitter;
    BBox::new(
        b.x0 + rng.gen_range(-jw..=jw),
        b.y0 + rng.gen_range(-jh..=jh),
        b.x1 + rng.gen_range(-jw..=jw),
        b.y1 + rng.gen_range(-jh..=jh),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(y: f32, etype: ElementType) -> Region {
        Region {
            etype,
            bbox: BBox::new(50.0, y, 550.0, y + 30.0),
            page: 0,
            text: "some text".into(),
            fragment_ids: vec![0, 1],
        }
    }

    #[test]
    fn zero_noise_is_identity() {
        let none = NoiseModel {
            miss_rate: 0.0,
            confusion_rate: 0.0,
            jitter: 0.0,
            split_rate: 0.0,
            merge_rate: 0.0,
            detects_tables: true,
            base_confidence: 0.9,
        };
        let regions: Vec<Region> = (0..5).map(|i| region(i as f32 * 50.0, ElementType::Text)).collect();
        let noised = apply(&none, &regions, 1, "d");
        assert_eq!(noised.len(), regions.len());
        for (a, b) in noised.iter().zip(&regions) {
            assert_eq!(a.bbox, b.bbox);
            assert_eq!(a.etype, b.etype);
        }
    }

    #[test]
    fn vendor_flattens_tables() {
        let regions = vec![region(100.0, ElementType::Table)];
        // Run across many doc keys; Table must never survive.
        for k in 0..30 {
            let noised = apply(&VENDOR_SIM, &regions, 7, &format!("doc{k}"));
            assert!(noised.iter().all(|r| r.etype != ElementType::Table));
        }
    }

    #[test]
    fn detr_preserves_most_tables() {
        let regions = vec![region(100.0, ElementType::Table)];
        let mut kept = 0;
        for k in 0..100 {
            let noised = apply(&DETR_SIM, &regions, 7, &format!("doc{k}"));
            if noised.iter().any(|r| r.etype == ElementType::Table) {
                kept += 1;
            }
        }
        assert!(kept >= 70, "tables kept {kept}/100");
    }

    #[test]
    fn noise_is_deterministic_per_key() {
        let regions: Vec<Region> = (0..10).map(|i| region(i as f32 * 60.0, ElementType::Text)).collect();
        let a = apply(&DETR_SIM, &regions, 3, "same");
        let b = apply(&DETR_SIM, &regions, 3, "same");
        assert_eq!(a, b);
        let c = apply(&DETR_SIM, &regions, 3, "other");
        assert_ne!(a, c);
    }

    #[test]
    fn miss_rate_drops_roughly_expected_fraction() {
        let regions: Vec<Region> = (0..40).map(|i| region(i as f32 * 18.0, ElementType::Text)).collect();
        let mut total = 0;
        for k in 0..50 {
            total += apply(&VENDOR_SIM, &regions, 11, &format!("d{k}")).len();
        }
        let avg = total as f64 / 50.0;
        // miss 22%, merges reduce further, splits add back a bit.
        assert!(avg < 38.0 && avg > 25.0, "avg detections {avg}");
    }
}
