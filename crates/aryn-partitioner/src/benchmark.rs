//! Detection benchmark glue for experiment E1: run a detector over a corpus
//! and score it COCO-style against the generator's ground truth.

use crate::eval::{evaluate, Detection, DetectionMetrics, GtRegion};
use crate::noise;
use crate::partition::{Detector, Partitioner};
use aryn_core::stable_hash;
use aryn_docgen::Corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `detector` over every page of `corpus` and evaluates against ground
/// truth. The matching group is `(doc index, page)` so detections never match
/// across pages.
pub fn run_detection_benchmark(detector: Detector, corpus: &Corpus, seed: u64) -> DetectionMetrics {
    let p = Partitioner::with_detector(detector);
    let mut detections = Vec::new();
    let mut gts = Vec::new();
    for (di, d) in corpus.docs.iter().enumerate() {
        let regions = p.detect(&d.raw, &d.id);
        let mut rng = StdRng::seed_from_u64(stable_hash(seed, &["bench-conf", &d.id]));
        for r in &regions {
            let confidence = match detector.noise() {
                Some(m) => noise::confidence(m, &mut rng),
                None => 1.0,
            };
            detections.push(Detection {
                group: di * 1000 + r.page,
                etype: r.etype,
                bbox: r.bbox,
                confidence,
            });
        }
        for g in &d.ground_truth.boxes {
            gts.push(GtRegion {
                group: di * 1000 + g.page,
                etype: g.etype,
                bbox: g.bbox,
            });
        }
    }
    evaluate(&detections, &gts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_scores_near_perfect_at_iou50() {
        let corpus = Corpus::mixed(5, 6, 6);
        let m = run_detection_benchmark(Detector::Oracle, &corpus, 1);
        assert!(m.ap50 > 0.80, "oracle AP50 {:.3}", m.ap50);
        assert!(m.mar > 0.80, "oracle mAR {:.3}", m.mar);
    }

    #[test]
    fn detector_ordering_matches_paper() {
        // E1's qualitative shape: DETR-sim beats vendor-sim decisively on
        // both metrics, and both are far from perfect.
        let corpus = Corpus::mixed(5, 12, 12);
        let detr = run_detection_benchmark(Detector::DetrSim, &corpus, 1);
        let vendor = run_detection_benchmark(Detector::VendorSim, &corpus, 1);
        assert!(detr.map > vendor.map + 0.15, "detr {:.3} vendor {:.3}", detr.map, vendor.map);
        assert!(detr.mar > vendor.mar + 0.15, "detr {:.3} vendor {:.3}", detr.mar, vendor.mar);
        assert!(detr.map < 0.95);
    }

    #[test]
    fn calibration_near_paper_numbers() {
        // The headline E1 numbers: mAP 0.602 / mAR 0.743 vs 0.344 / 0.466.
        // Allow a generous band here; EXPERIMENTS.md records exact values.
        let corpus = Corpus::mixed(5, 20, 20);
        let detr = run_detection_benchmark(Detector::DetrSim, &corpus, 1);
        assert!((detr.map - 0.602).abs() < 0.08, "detr mAP {:.3}", detr.map);
        assert!((detr.mar - 0.743).abs() < 0.08, "detr mAR {:.3}", detr.mar);
        let vendor = run_detection_benchmark(Detector::VendorSim, &corpus, 1);
        assert!((vendor.map - 0.344).abs() < 0.08, "vendor mAP {:.3}", vendor.map);
        assert!((vendor.mar - 0.466).abs() < 0.08, "vendor mAR {:.3}", vendor.mar);
    }
}

#[cfg(test)]
mod calibration_probe {
    use super::*;

    #[test]
    #[ignore]
    fn print_current_numbers() {
        let corpus = Corpus::mixed(5, 20, 20);
        for d in [Detector::Oracle, Detector::DetrSim, Detector::VendorSim] {
            let m = run_detection_benchmark(d, &corpus, 1);
            println!("{:<12} mAP {:.3}  mAR {:.3}  AP50 {:.3}", d.name(), m.map, m.mar, m.ap50);
            for (t, ap) in &m.per_class_ap {
                println!("   {:<16} {:.3}", t.name(), ap);
            }
        }
    }
}
