//! Geometric page segmentation: the detection backbone of the simulated
//! Deformable-DETR model.
//!
//! Works the way classical layout analysis does — and the way an object
//! detector's output looks: fragments are clustered into regions using
//! ruling lines (tables), vertical whitespace, and font changes; each region
//! is classified from visual features (font size, weight, position, bullet
//! glyphs, caption markers). The noise model in [`crate::noise`] then
//! degrades these clean regions to a chosen fidelity.

use aryn_core::{BBox, ElementType};
use aryn_docgen::layout::{Fragment, RawDocument, Rule, MARGIN, PAGE_H};

/// One segmented region on a page.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    pub etype: ElementType,
    pub bbox: BBox,
    pub page: usize,
    /// Fragments composing the region, in reading order.
    pub text: String,
    /// Indexes into the page's fragment list (for table structure recovery).
    pub fragment_ids: Vec<usize>,
}

/// Segments every page of a raw document into labeled regions.
pub fn segment(doc: &RawDocument) -> Vec<Region> {
    let mut out = Vec::new();
    for page in 0..doc.pages {
        segment_page(doc, page, &mut out);
    }
    out
}

fn segment_page(doc: &RawDocument, page: usize, out: &mut Vec<Region>) {
    let frags: Vec<(usize, &Fragment)> = doc
        .fragments
        .iter()
        .enumerate()
        .filter(|(_, f)| f.page == page)
        .collect();
    let rules: Vec<&Rule> = doc.rules.iter().filter(|r| r.page == page).collect();

    // 1. Table regions from horizontal rules: group rules with similar x-span
    //    whose vertical spacing is row-like.
    let table_regions = table_regions_from_rules(&rules);

    // 2. Images are their own regions.
    for img in doc.images.iter().filter(|i| i.page == page) {
        out.push(Region {
            etype: ElementType::Picture,
            bbox: img.bbox,
            page,
            text: String::new(),
            fragment_ids: Vec::new(),
        });
    }

    // 3. Assign fragments: table region, or free text.
    let mut table_members: Vec<Vec<(usize, &Fragment)>> = vec![Vec::new(); table_regions.len()];
    let mut free: Vec<(usize, &Fragment)> = Vec::new();
    'frag: for (i, f) in &frags {
        for (ti, tr) in table_regions.iter().enumerate() {
            if tr.inflate(2.0).contains(&f.bbox) {
                table_members[ti].push((*i, f));
                continue 'frag;
            }
        }
        free.push((*i, f));
    }

    for (tr, members) in table_regions.iter().zip(&table_members) {
        if members.is_empty() {
            continue;
        }
        let bbox = BBox::enclosing(members.iter().map(|(_, f)| f.bbox))
            .map(|b| b.union(tr))
            .unwrap_or(*tr);
        out.push(Region {
            etype: ElementType::Table,
            bbox,
            page,
            text: members
                .iter()
                .map(|(_, f)| f.text.as_str())
                .collect::<Vec<_>>()
                .join(" | "),
            fragment_ids: members.iter().map(|(i, _)| *i).collect(),
        });
    }

    // 4. Cluster free fragments into blocks by vertical gaps + font changes.
    let mut sorted = free;
    sorted.sort_by(|a, b| {
        a.1.bbox
            .y0
            .partial_cmp(&b.1.bbox.y0)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut block: Vec<(usize, &Fragment)> = Vec::new();
    for (i, f) in sorted {
        let start_new = match block.last() {
            None => false,
            Some((_, prev)) => {
                let gap = f.bbox.y0 - prev.bbox.y1;
                let font_changed = (f.font_size - prev.font_size).abs() > 0.5 || f.bold != prev.bold;
                // Within a paragraph, lines sit ~0.25 * font apart.
                gap > prev.font_size * 0.45 || font_changed
            }
        };
        if start_new {
            flush_block(&block, page, out);
            block.clear();
        }
        block.push((i, f));
    }
    flush_block(&block, page, out);

    // Keep reading order: sort this page's regions by y.
    let start = out
        .iter()
        .position(|r| r.page == page)
        .unwrap_or(out.len());
    out[start..].sort_by(|a, b| {
        a.bbox
            .y0
            .partial_cmp(&b.bbox.y0)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn flush_block(block: &[(usize, &Fragment)], page: usize, out: &mut Vec<Region>) {
    if block.is_empty() {
        return;
    }
    let Some(bbox) = BBox::enclosing(block.iter().map(|(_, f)| f.bbox)) else {
        return; // unreachable: the block was checked non-empty above
    };
    let text = block
        .iter()
        .map(|(_, f)| f.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    let etype = classify_block(block, &bbox, &text);
    out.push(Region {
        etype,
        bbox,
        page,
        text,
        fragment_ids: block.iter().map(|(i, _)| *i).collect(),
    });
}

/// Classifies a text block from visual features.
fn classify_block(block: &[(usize, &Fragment)], bbox: &BBox, text: &str) -> ElementType {
    let f = block[0].1;
    // Positional chrome.
    if bbox.y1 < MARGIN - 5.0 {
        return ElementType::PageHeader;
    }
    if bbox.y0 > PAGE_H - MARGIN {
        return ElementType::PageFooter;
    }
    if text.starts_with('\u{2022}') || text.starts_with("- ") {
        return ElementType::ListItem;
    }
    if f.font_size >= 15.0 && f.bold {
        return ElementType::Title;
    }
    if f.font_size >= 11.5 && f.bold {
        return ElementType::SectionHeader;
    }
    let lower = text.to_lowercase();
    if f.font_size <= 9.5 && (lower.starts_with("figure") || lower.starts_with("table")) {
        return ElementType::Caption;
    }
    if f.font_size <= 8.0 {
        return ElementType::Footnote;
    }
    ElementType::Text
}

/// Groups horizontal rules into table regions.
fn table_regions_from_rules(rules: &[&Rule]) -> Vec<BBox> {
    if rules.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<&&Rule> = rules.iter().collect();
    sorted.sort_by(|a, b| a.y0.partial_cmp(&b.y0).unwrap_or(std::cmp::Ordering::Equal));
    let mut regions: Vec<(f32, f32, f32, f32, f32)> = Vec::new(); // x0,y_first,x1,y_last,last_gap-ish
    for r in sorted {
        match regions.last_mut() {
            Some((x0, _yf, x1, ylast, _)) if (r.y0 - *ylast) < 40.0 && (r.x0 - *x0).abs() < 20.0 && (r.x1 - *x1).abs() < 20.0 => {
                *ylast = r.y0;
            }
            _ => regions.push((r.x0, r.y0, r.x1, r.y0, 0.0)),
        }
    }
    regions
        .into_iter()
        .map(|(x0, yf, x1, ylast, _)| {
            // Rows sit above their underline; open the region ~one row above
            // the first rule.
            BBox::new(x0, yf - 16.0, x1, ylast + 2.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_docgen::{Corpus, NtsbRecord};

    #[test]
    fn segments_cover_the_report_structure() {
        let r = NtsbRecord::generate(1, 0);
        let (doc, _) = aryn_docgen::ntsb::render(&r);
        let regions = segment(&doc);
        let has = |t: ElementType| regions.iter().any(|r| r.etype == t);
        assert!(has(ElementType::Title));
        assert!(has(ElementType::SectionHeader));
        assert!(has(ElementType::Text));
        assert!(has(ElementType::Table));
        assert!(has(ElementType::PageHeader));
        assert!(has(ElementType::PageFooter));
        assert!(has(ElementType::ListItem));
    }

    #[test]
    fn segmentation_quality_is_high_against_ground_truth() {
        // The clean segmenter should agree with ground truth on most regions
        // (type + IoU ≥ 0.5). This pins the backbone before noise injection.
        let c = Corpus::mixed(3, 10, 10);
        let mut total = 0;
        let mut matched = 0;
        for d in &c.docs {
            let regions = segment(&d.raw);
            for g in &d.ground_truth.boxes {
                total += 1;
                if regions
                    .iter()
                    .any(|r| r.page == g.page && r.etype == g.etype && r.bbox.iou(&g.bbox) >= 0.5)
                {
                    matched += 1;
                }
            }
        }
        let frac = matched as f64 / total as f64;
        assert!(frac > 0.85, "clean segmentation match rate {frac:.3}");
    }

    #[test]
    fn table_fragments_are_grouped_into_table_regions() {
        let r = NtsbRecord::generate(2, 1);
        let (doc, gt) = aryn_docgen::ntsb::render(&r);
        let regions = segment(&doc);
        let n_tables_gt = gt.boxes.iter().filter(|b| b.etype == ElementType::Table).count();
        let n_tables = regions.iter().filter(|r| r.etype == ElementType::Table).count();
        assert_eq!(n_tables, n_tables_gt);
        // Table regions contain multiple fragments (cells).
        for t in regions.iter().filter(|r| r.etype == ElementType::Table) {
            assert!(t.fragment_ids.len() >= 4, "{}", t.fragment_ids.len());
        }
    }

    #[test]
    fn regions_are_in_reading_order_per_page() {
        let r = NtsbRecord::generate(5, 3);
        let (doc, _) = aryn_docgen::ntsb::render(&r);
        let regions = segment(&doc);
        for p in 0..doc.pages {
            let ys: Vec<f32> = regions.iter().filter(|r| r.page == p).map(|r| r.bbox.y0).collect();
            let mut sorted = ys.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(ys, sorted);
        }
    }

    #[test]
    fn empty_document_yields_no_regions() {
        let doc = RawDocument::default();
        assert!(segment(&doc).is_empty());
    }
}
