//! Table structure recognition — the Table-Transformer stand-in.
//!
//! Given a detected table region and the text fragments inside it, recovers
//! the cell grid the way the paper describes its pipeline: "we use the Table
//! Transformer model to identify the bounding box of each cell in the table,
//! and then intersect those bounding boxes with the text extracted from the
//! PDF" (§4). Rows come from y-clustering, columns from x-alignment across
//! rows; the header is detected from bold styling. Cross-page continuations
//! are merged with header propagation (the paper's §2 failure example).

use aryn_core::{BBox, Document, ElementType, Table};
use aryn_docgen::layout::{Fragment, RawDocument};

/// Recovers a structured table from the fragments inside a table region.
pub fn recover_table(region_bbox: &BBox, frags: &[&Fragment]) -> Option<Table> {
    if frags.is_empty() {
        return None;
    }
    // 1. Row clustering by y-center.
    let mut by_y: Vec<&&Fragment> = frags.iter().collect();
    by_y.sort_by(|a, b| a.bbox.y0.partial_cmp(&b.bbox.y0).unwrap_or(std::cmp::Ordering::Equal));
    let mut rows: Vec<Vec<&Fragment>> = Vec::new();
    for f in by_y {
        let fy = f.bbox.center().1;
        match rows.last_mut() {
            Some(row) if (fy - row[0].bbox.center().1).abs() < f.bbox.height() * 0.8 => {
                row.push(f);
            }
            _ => rows.push(vec![f]),
        }
    }
    // 2. Column boundaries from left-edge alignment across all rows.
    let mut lefts: Vec<f32> = frags.iter().map(|f| f.bbox.x0).collect();
    lefts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut col_edges: Vec<f32> = Vec::new();
    for x in lefts {
        if col_edges.last().is_none_or(|l| (x - l).abs() > 12.0) {
            col_edges.push(x);
        }
    }
    let cols = col_edges.len().max(1);
    // 3. Place each fragment into its (row, col) cell.
    let n_rows = rows.len();
    let mut grid: Vec<Vec<String>> = vec![vec![String::new(); cols]; n_rows];
    let mut bold_rows: Vec<bool> = vec![true; n_rows];
    let mut cell_boxes: Vec<Vec<Option<BBox>>> = vec![vec![None; cols]; n_rows];
    for (ri, row) in rows.iter().enumerate() {
        let mut any = false;
        for f in row {
            let ci = col_edges
                .iter()
                .rposition(|e| f.bbox.x0 >= e - 6.0)
                .unwrap_or(0);
            if !grid[ri][ci].is_empty() {
                grid[ri][ci].push(' ');
            }
            grid[ri][ci].push_str(&f.text);
            cell_boxes[ri][ci] = Some(match cell_boxes[ri][ci] {
                Some(b) => b.union(&f.bbox),
                None => f.bbox,
            });
            bold_rows[ri] &= f.bold;
            any = true;
        }
        if !any {
            bold_rows[ri] = false;
        }
    }
    // 4. Header: a leading run of all-bold rows.
    let header_rows = bold_rows.iter().take_while(|b| **b).count().min(n_rows.saturating_sub(1));
    let mut table = Table::from_grid(&grid, false);
    table.header_rows = header_rows;
    // Mark header cells + attach recovered boxes.
    let cols = table.cols;
    for (ri, row_boxes) in cell_boxes.iter().enumerate() {
        for (ci, b) in row_boxes.iter().enumerate() {
            if let Some(cell) = table.cells.get_mut(ri * cols + ci) {
                cell.bbox = *b;
                cell.is_header = ri < header_rows;
            }
        }
    }
    let _ = region_bbox;
    Some(table)
}

/// Recovers tables for every Table element in a partitioned document, using
/// the raw fragments. Elements gain their `table` payload in place.
pub fn attach_tables(doc: &mut Document, raw: &RawDocument) {
    for e in doc.elements.iter_mut().filter(|e| e.etype == ElementType::Table) {
        let Some(bbox) = e.bbox else { continue };
        let frags: Vec<&Fragment> = raw
            .fragments
            .iter()
            .filter(|f| f.page == e.page && bbox.inflate(4.0).coverage_by(&f.bbox) > 0.0 && bbox.inflate(4.0).contains(&f.bbox))
            .collect();
        e.table = recover_table(&bbox, &frags);
        if let Some(t) = &e.table {
            e.text = t.to_text();
        }
    }
}

/// Merges cross-page table continuations: a Table element that starts a page
/// (no header row detected) and directly follows a Table element ending the
/// previous page with a compatible column count is folded into it, keeping
/// the first segment's header — fixing the split-table failure the paper
/// describes in §2.
pub fn merge_cross_page_tables(doc: &mut Document) {
    // Page chrome sits between a table's page segments in reading order;
    // a continuation may follow the chrome, not the table directly.
    fn is_chrome(e: &aryn_core::Element) -> bool {
        matches!(e.etype, ElementType::PageFooter | ElementType::PageHeader)
    }
    let mut i = 0;
    while i < doc.elements.len() {
        if doc.elements[i].etype != ElementType::Table || doc.elements[i].table.is_none() {
            i += 1;
            continue;
        }
        // A table split over N pages merges N-1 continuations; track the
        // page of the most recently absorbed segment.
        let mut last_page = doc.elements[i].page;
        loop {
            // Find the next non-chrome element; a continuation is a
            // headerless table on the following page with a compatible
            // column count.
            let mut j = i + 1;
            while j < doc.elements.len() && is_chrome(&doc.elements[j]) {
                j += 1;
            }
            let can_merge = j < doc.elements.len() && {
                let prev = &doc.elements[i];
                let cur = &doc.elements[j];
                cur.etype == ElementType::Table
                    && cur.page == last_page + 1
                    && match (&prev.table, &cur.table) {
                        (Some(a), Some(b)) => {
                            b.header_rows == 0 && (a.cols as i64 - b.cols as i64).abs() <= 1
                        }
                        _ => false,
                    }
            };
            if !can_merge {
                break;
            }
            let cur = doc.elements.remove(j);
            last_page = cur.page;
            let prev = &mut doc.elements[i];
            if let (Some(a), Some(b)) = (prev.table.as_mut(), cur.table.as_ref()) {
                a.merge_below(b);
            }
            if let Some(t) = &prev.table {
                prev.text = t.to_text();
            }
        }
        i += 1;
    }
}

/// Cell-level F1 against a ground-truth table: a predicted cell is correct
/// if the same (row, col) holds the same trimmed text.
pub fn cell_f1(predicted: &Table, truth: &Table) -> f64 {
    let truth_cells: Vec<(usize, usize, &str)> = truth
        .cells
        .iter()
        .filter(|c| !c.text.trim().is_empty())
        .map(|c| (c.row, c.col, c.text.trim()))
        .collect();
    let pred_cells: Vec<(usize, usize, &str)> = predicted
        .cells
        .iter()
        .filter(|c| !c.text.trim().is_empty())
        .map(|c| (c.row, c.col, c.text.trim()))
        .collect();
    if truth_cells.is_empty() || pred_cells.is_empty() {
        return 0.0;
    }
    let tp = pred_cells.iter().filter(|p| truth_cells.contains(p)).count() as f64;
    let precision = tp / pred_cells.len() as f64;
    let recall = tp / truth_cells.len() as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_core::{Element, ElementType};
    use aryn_docgen::{Corpus, NtsbRecord};

    /// Builds (region bbox, fragments) for each ground-truth table in a doc.
    fn gt_tables(d: &aryn_docgen::CorpusDoc) -> Vec<(BBox, Vec<&Fragment>, Table)> {
        d.ground_truth
            .boxes
            .iter()
            .filter(|b| b.etype == ElementType::Table)
            .map(|b| {
                let frags: Vec<&Fragment> = d
                    .raw
                    .fragments
                    .iter()
                    .filter(|f| f.page == b.page && b.bbox.inflate(4.0).contains(&f.bbox))
                    .collect();
                (b.bbox, frags, b.table.clone().unwrap())
            })
            .collect()
    }

    #[test]
    fn recovers_clean_tables_with_high_cell_f1() {
        let c = Corpus::ntsb(1, 8);
        let mut f1_sum = 0.0;
        let mut n = 0;
        for d in &c.docs {
            for (bbox, frags, truth) in gt_tables(d) {
                let rec = recover_table(&bbox, &frags).expect("table recovered");
                f1_sum += cell_f1(&rec, &truth);
                n += 1;
            }
        }
        let avg = f1_sum / n as f64;
        assert!(avg > 0.9, "avg cell F1 {avg:.3} over {n} tables");
    }

    #[test]
    fn header_detected_from_bold_row() {
        let c = Corpus::ntsb(2, 3);
        let d = &c.docs[0];
        let (bbox, frags, truth) = gt_tables(d).into_iter().next().unwrap();
        let rec = recover_table(&bbox, &frags).unwrap();
        assert_eq!(rec.header_rows, truth.header_rows);
    }

    #[test]
    fn empty_region_recovers_nothing() {
        assert!(recover_table(&BBox::new(0.0, 0.0, 10.0, 10.0), &[]).is_none());
    }

    #[test]
    fn cross_page_merge_restores_full_table() {
        // Find a record whose injuries table splits (rare in NTSB docs), or
        // construct one directly via the layout engine.
        let grid: Vec<Vec<String>> = std::iter::once(vec!["K".to_string(), "V".to_string()])
            .chain((0..60).map(|i| vec![format!("k{i}"), i.to_string()]))
            .collect();
        let blocks = vec![
            aryn_docgen::Block::text("intro ".repeat(40)),
            aryn_docgen::Block::TableBlock {
                table: Table::from_grid(&grid, true),
            },
        ];
        let engine = aryn_docgen::LayoutEngine::default();
        let (raw, gt) = engine.layout(&blocks);
        // Build a document from ground truth segments (as the gold pipeline
        // would), then merge.
        let entry = aryn_docgen::CorpusDoc {
            id: "t".into(),
            domain: aryn_docgen::Domain::Ntsb,
            raw: raw.clone(),
            ground_truth: gt,
            record: aryn_core::Value::object(),
        };
        let mut doc = aryn_docgen::gold_document(&entry);
        let before = doc.elements_of(ElementType::Table).count();
        assert!(before >= 2, "table should have split into {before} segments");
        merge_cross_page_tables(&mut doc);
        let after: Vec<&Element> = doc.elements_of(ElementType::Table).collect();
        assert_eq!(after.len(), 1);
        let merged = after[0].table.as_ref().unwrap();
        assert_eq!(merged.rows, 61);
        assert_eq!(merged.headers(), vec!["K", "V"]);
        assert_eq!(merged.column("V").len(), 60);
    }

    #[test]
    fn merge_requires_adjacent_pages_and_headerless_continuation() {
        let mut doc = Document::new("x");
        let mut t1 = Element::text(ElementType::Table, "");
        t1.page = 0;
        t1.table = Some(Table::from_grid(&[vec!["H".into()], vec!["a".into()]], true));
        let mut t2 = Element::text(ElementType::Table, "");
        t2.page = 2; // not adjacent
        t2.table = Some(Table::from_grid(&[vec!["b".into()]], false));
        doc.elements = vec![t1.clone(), t2.clone()];
        merge_cross_page_tables(&mut doc);
        assert_eq!(doc.elements.len(), 2, "non-adjacent pages must not merge");

        // A continuation *with* a header is a new table, not a continuation.
        let mut t3 = Element::text(ElementType::Table, "");
        t3.page = 1;
        t3.table = Some(Table::from_grid(&[vec!["H2".into()], vec!["c".into()]], true));
        doc.elements = vec![t1, t3];
        merge_cross_page_tables(&mut doc);
        assert_eq!(doc.elements.len(), 2, "headered tables must not merge");
    }

    #[test]
    fn attach_tables_populates_detected_regions() {
        let r = NtsbRecord::generate(4, 2);
        let (raw, _) = aryn_docgen::ntsb::render(&r);
        let regions = crate::segment::segment(&raw);
        let mut doc = Document::new("a");
        for reg in &regions {
            let mut e = Element::text(reg.etype, reg.text.clone());
            e.page = reg.page;
            e.bbox = Some(reg.bbox);
            doc.elements.push(e);
        }
        attach_tables(&mut doc, &raw);
        let t = doc.first_table().expect("table attached");
        assert!(t.rows >= 2 && t.cols >= 2);
    }

    #[test]
    fn cell_f1_bounds() {
        let t = Table::from_grid(&[vec!["a".into(), "b".into()]], false);
        assert!((cell_f1(&t, &t) - 1.0).abs() < 1e-9);
        let other = Table::from_grid(&[vec!["x".into(), "y".into()]], false);
        assert_eq!(cell_f1(&t, &other), 0.0);
        assert_eq!(cell_f1(&t, &Table::default()), 0.0);
    }
}
