//! OCR simulation.
//!
//! "Many enterprise documents contain images of printed or handwritten text,
//! requiring an OCR step" (§4). The raster stand-in carries the text that is
//! "printed in" the image; the simulated OCR engine recovers it with a
//! configurable character error rate using the three classic OCR error
//! shapes: substitution (visually confusable glyphs), deletion, insertion.

use aryn_core::stable_hash;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// OCR engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct OcrEngine {
    /// Per-character error probability.
    pub char_error_rate: f64,
    pub seed: u64,
}

impl Default for OcrEngine {
    fn default() -> Self {
        OcrEngine {
            char_error_rate: 0.02,
            seed: 0x0C12,
        }
    }
}

/// Visually-confusable substitutions OCR engines actually make.
const CONFUSIONS: &[(char, char)] = &[
    ('0', 'O'),
    ('O', '0'),
    ('1', 'l'),
    ('l', '1'),
    ('I', 'l'),
    ('5', 'S'),
    ('S', '5'),
    ('8', 'B'),
    ('B', '8'),
    ('m', 'n'),
    ('n', 'm'),
    ('c', 'e'),
    ('e', 'c'),
    ('u', 'v'),
    ('v', 'u'),
];

impl OcrEngine {
    /// Recognizes the text embedded in an image region. Deterministic per
    /// `(seed, key)`.
    pub fn recognize(&self, embedded_text: &str, key: &str) -> String {
        if embedded_text.is_empty() {
            return String::new();
        }
        let mut rng = StdRng::seed_from_u64(stable_hash(self.seed, &["ocr", key]));
        let mut out = String::with_capacity(embedded_text.len());
        for c in embedded_text.chars() {
            if !rng.gen_bool(self.char_error_rate) {
                out.push(c);
                continue;
            }
            match rng.gen_range(0..3) {
                0 => {
                    // Substitution: a confusable glyph if known, else nearby letter.
                    if let Some((_, sub)) = CONFUSIONS.iter().find(|(a, _)| *a == c) {
                        out.push(*sub);
                    } else if c.is_ascii_alphabetic() {
                        let delta = if rng.gen_bool(0.5) { 1 } else { -1i8 };
                        out.push(((c as i8) + delta) as u8 as char);
                    } else {
                        out.push(c);
                    }
                }
                1 => { /* deletion */ }
                _ => {
                    // Insertion.
                    out.push(c);
                    out.push(if rng.gen_bool(0.5) { '.' } else { ' ' });
                }
            }
        }
        out
    }
}

/// Character error rate between recognized and truth (Levenshtein / len).
pub fn character_error_rate(recognized: &str, truth: &str) -> f64 {
    let a: Vec<char> = recognized.chars().collect();
    let b: Vec<char> = truth.chars().collect();
    if b.is_empty() {
        return if a.is_empty() { 0.0 } else { 1.0 };
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        cur[0] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()] as f64 / b.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_rate_is_exact() {
        let e = OcrEngine {
            char_error_rate: 0.0,
            seed: 1,
        };
        assert_eq!(e.recognize("NTSB photo ntsb-00001", "k"), "NTSB photo ntsb-00001");
    }

    #[test]
    fn error_rate_tracks_configuration() {
        let text = "The quick brown fox jumps over the lazy dog 0123456789. ".repeat(20);
        for rate in [0.01, 0.05, 0.15] {
            let e = OcrEngine {
                char_error_rate: rate,
                seed: 5,
            };
            let rec = e.recognize(&text, "k");
            let cer = character_error_rate(&rec, &text);
            assert!(
                (cer - rate).abs() < rate * 0.8 + 0.01,
                "configured {rate}, measured {cer}"
            );
        }
    }

    #[test]
    fn recognition_is_deterministic_per_key() {
        let e = OcrEngine {
            char_error_rate: 0.1,
            seed: 9,
        };
        assert_eq!(e.recognize("hello world", "a"), e.recognize("hello world", "a"));
        assert_ne!(
            e.recognize("hello world, how are you today", "a"),
            e.recognize("hello world, how are you today", "b")
        );
    }

    #[test]
    fn cer_edge_cases() {
        assert_eq!(character_error_rate("", ""), 0.0);
        assert_eq!(character_error_rate("abc", ""), 1.0);
        assert_eq!(character_error_rate("", "abc"), 1.0);
        assert_eq!(character_error_rate("abc", "abc"), 0.0);
        assert!((character_error_rate("abd", "abc") - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_image_text_is_empty() {
        assert_eq!(OcrEngine::default().recognize("", "k"), "");
    }
}
