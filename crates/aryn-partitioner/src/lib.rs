//! # aryn-partitioner
//!
//! The Aryn Partitioner (paper §4): document layout segmentation with two
//! simulated detector fidelities ([`Detector::DetrSim`] calibrated to the
//! paper's mAP 0.602 / mAR 0.743, [`Detector::VendorSim`] to the cloud-vendor
//! baseline 0.344 / 0.466), table structure recognition with cross-page
//! merging, OCR simulation, multimodal image summarization, and COCO-style
//! evaluation ([`eval`]).

pub mod benchmark;
pub mod eval;
pub mod noise;
pub mod ocr;
pub mod partition;
pub mod segment;
pub mod tables;

pub use benchmark::run_detection_benchmark;
pub use eval::{evaluate, Detection, DetectionMetrics, GtRegion};
pub use noise::{NoiseModel, DETR_SIM, VENDOR_SIM};
pub use ocr::{character_error_rate, OcrEngine};
pub use partition::{Detector, Partitioner, PartitionerOptions};
pub use segment::{segment, Region};
pub use tables::{cell_f1, merge_cross_page_tables, recover_table};
