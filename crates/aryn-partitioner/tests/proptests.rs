//! Property-based tests for segmentation, noise, OCR, and evaluation.

use aryn_core::{BBox, ElementType};
use aryn_docgen::Corpus;
use aryn_partitioner::eval::{evaluate, Detection, GtRegion};
use aryn_partitioner::{character_error_rate, segment, Detector, OcrEngine, Partitioner};
use proptest::prelude::*;

fn boxes_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(BBox, u8)>> {
    prop::collection::vec(
        (0.0f32..500.0, 0.0f32..700.0, 5.0f32..100.0, 5.0f32..60.0, 0u8..11),
        n,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(x, y, w, h, cls)| (BBox::new(x, y, x + w, y + h), cls))
            .collect()
    })
}

fn etype(i: u8) -> ElementType {
    ElementType::ALL[i as usize % 11]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn perfect_detections_always_score_one(gts in boxes_strategy(1..20)) {
        let gt: Vec<GtRegion> = gts
            .iter()
            .enumerate()
            .map(|(i, (bbox, cls))| GtRegion { group: i % 3, etype: etype(*cls), bbox: *bbox })
            .collect();
        let dets: Vec<Detection> = gt
            .iter()
            .map(|g| Detection { group: g.group, etype: g.etype, bbox: g.bbox, confidence: 0.9 })
            .collect();
        let m = evaluate(&dets, &gt);
        prop_assert!((m.map - 1.0).abs() < 1e-9, "{}", m.map);
        prop_assert!((m.mar - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_are_bounded_and_monotone_in_misses(gts in boxes_strategy(4..16), keep in 0usize..16) {
        let gt: Vec<GtRegion> = gts
            .iter()
            .map(|(bbox, cls)| GtRegion { group: 0, etype: etype(*cls), bbox: *bbox })
            .collect();
        let all: Vec<Detection> = gt
            .iter()
            .map(|g| Detection { group: 0, etype: g.etype, bbox: g.bbox, confidence: 0.9 })
            .collect();
        let some: Vec<Detection> = all.iter().take(keep.min(all.len())).cloned().collect();
        let m_all = evaluate(&all, &gt);
        let m_some = evaluate(&some, &gt);
        for m in [&m_all, &m_some] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m.map));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m.mar));
        }
        prop_assert!(m_some.mar <= m_all.mar + 1e-9, "fewer detections cannot raise recall");
    }

    #[test]
    fn segmentation_is_deterministic(seed in 0u64..50) {
        let corpus = Corpus::ntsb(seed, 1);
        let a = segment(&corpus.docs[0].raw);
        let b = segment(&corpus.docs[0].raw);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn partitioned_elements_stay_in_reading_order(seed in 0u64..30) {
        let corpus = Corpus::ntsb(seed, 1);
        let p = Partitioner::with_detector(Detector::DetrSim);
        let doc = p.partition(&corpus.docs[0].id, &corpus.docs[0].raw);
        let pages: Vec<usize> = doc.elements.iter().map(|e| e.page).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        prop_assert_eq!(pages, sorted);
        for e in &doc.elements {
            prop_assert!((0.0..=1.0).contains(&e.confidence));
        }
    }

    #[test]
    fn ocr_cer_tracks_configured_rate(rate in 0.0f64..0.25, seed in 0u64..100) {
        let text = "The quick brown fox jumps over 13 lazy dogs near runway 27L. ".repeat(12);
        let engine = OcrEngine { char_error_rate: rate, seed };
        let recognized = engine.recognize(&text, "k");
        let cer = character_error_rate(&recognized, &text);
        // Substitutions count 1, insertions 1, deletions 1: measured CER
        // should be within a factor-2 band of the configured rate.
        prop_assert!(cer <= rate * 2.0 + 0.02, "configured {rate}, measured {cer}");
        if rate > 0.05 {
            prop_assert!(cer >= rate * 0.3, "configured {rate}, measured {cer}");
        }
    }

    #[test]
    fn cer_is_a_metric_like_quantity(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        let ab = character_error_rate(&a, &b);
        prop_assert!(ab >= 0.0);
        prop_assert_eq!(character_error_rate(&a, &a), 0.0);
        if !b.is_empty() {
            // Levenshtein/len(b) is bounded by max(len) / len(b).
            let bound = a.chars().count().max(b.chars().count()) as f64
                / b.chars().count() as f64;
            prop_assert!(ab <= bound + 1e-9);
        }
    }

    #[test]
    fn detection_confidences_fall_in_range(seed in 0u64..20) {
        let corpus = Corpus::mixed(seed, 2, 2);
        let p = Partitioner::with_detector(Detector::VendorSim);
        for d in &corpus.docs {
            let parsed = p.partition(&d.id, &d.raw);
            for e in &parsed.elements {
                prop_assert!((0.05..=0.99).contains(&e.confidence));
            }
        }
    }
}
