//! # aryn
//!
//! Umbrella crate for Aryn-RS, a Rust reproduction of *"The Design of an
//! LLM-powered Unstructured Analytics System"* (CIDR 2025). Re-exports the
//! full public API; the repository's `examples/` and `tests/` build against
//! this crate.
//!
//! Component map (paper section → crate):
//!
//! * §3 architecture glue → [`sycamore::Context`] + [`aryn_index`]
//! * §4 Aryn Partitioner → [`aryn_partitioner`]
//! * §5 Sycamore DocSets → [`sycamore`]
//! * §6 Luna → [`luna`]
//! * §2 RAG baseline → [`aryn_rag`]
//! * substrates → [`aryn_core`], [`aryn_llm`], [`aryn_docgen`]

pub use aryn_core;
pub use aryn_docgen;
pub use aryn_index;
pub use aryn_llm;
pub use aryn_partitioner;
pub use aryn_rag;
pub use aryn_telemetry;
pub use luna;
pub use sycamore;

/// Common imports for examples and notebooks.
pub mod prelude {
    pub use aryn_core::{obj, BBox, DocId, Document, Element, ElementType, Table, Value};
    pub use aryn_docgen::{Corpus, NtsbRecord};
    pub use aryn_llm::{
        ChaosSchedule, FaultKind, LlmClient, MockLlm, ReliabilityPolicy, SimConfig, GPT35_SIM,
        GPT4_SIM, LLAMA7B_SIM,
    };
    pub use aryn_partitioner::{Detector, Partitioner, PartitionerOptions};
    pub use aryn_telemetry::{Telemetry, Trace};
    pub use luna::{ingest_lake, Luna, LunaConfig};
    pub use sycamore::{Agg, Context, ExecConfig, PartitionCfg, StealPolicy};
}
