//! The §6 micro-benchmark: "we created a micro-benchmark using questions
//! from financial customers on an earnings report dataset, and building our
//! own questions for the NTSB reports. ... Out of 18 questions, Luna
//! answered 13 correctly, 3 plausibly, and 2 incorrectly" (72%).
//!
//! Ground truth is computed from the corpus records; answers are graded
//! three ways (correct / plausible / incorrect). The two incorrect answers
//! come from documented planner blind spots (negation loss; "compare A and
//! B" keeping only A) — the same misinterpretation failure mode the paper
//! reports.

use crate::luna::{earnings_schema, ingest_lake, ntsb_schema, Luna, LunaAnswer, LunaConfig};
use aryn_core::{Result, Value};
use aryn_docgen::Corpus;
use aryn_llm::{LlmClient, MockLlm, SimConfig};
use std::sync::Arc;

/// Grade levels from §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grade {
    Correct,
    Plausible,
    Incorrect,
}

/// What a graded answer should look like.
#[derive(Debug, Clone)]
pub enum Expected {
    /// A numeric value; correct within `correct_tol` (relative, with an
    /// absolute floor for counts), plausible within `plausible_tol`.
    Number {
        value: f64,
        correct_tol: f64,
        plausible_tol: f64,
    },
    /// The answer must mention one of these strings.
    OneOf(Vec<String>),
    /// The answer should mention all of these; ≥ 60% = plausible.
    AllOf(Vec<String>),
}

/// One benchmark question.
#[derive(Debug, Clone)]
pub struct BenchQuestion {
    pub question: String,
    pub expected: Expected,
    pub domain: &'static str,
}

/// Grades an answer string.
pub fn grade_answer(answer: &str, expected: &Expected) -> Grade {
    let a = answer.to_lowercase();
    match expected {
        Expected::Number {
            value,
            correct_tol,
            plausible_tol,
        } => {
            let Some(got) = aryn_llm::semantics::first_number(&a) else {
                return Grade::Incorrect;
            };
            let diff = (got - value).abs();
            if diff <= (correct_tol * value.abs()).max(0.51) {
                Grade::Correct
            } else if diff <= (plausible_tol * value.abs()).max(1.51) {
                Grade::Plausible
            } else {
                Grade::Incorrect
            }
        }
        Expected::OneOf(opts) => {
            if opts.iter().any(|o| a.contains(&o.to_lowercase())) {
                Grade::Correct
            } else {
                Grade::Incorrect
            }
        }
        Expected::AllOf(items) => {
            let hits = items.iter().filter(|i| a.contains(&i.to_lowercase())).count();
            if hits == items.len() && !items.is_empty() {
                Grade::Correct
            } else if hits * 10 >= items.len() * 6 {
                Grade::Plausible
            } else {
                Grade::Incorrect
            }
        }
    }
}

/// The benchmark fixture: corpora, ingested stores, Luna.
pub struct Bench18 {
    pub luna: Luna,
    pub ntsb: Corpus,
    pub earnings: Corpus,
    pub questions: Vec<BenchQuestion>,
}

/// Configuration for the fixture.
pub struct Bench18Cfg {
    pub seed: u64,
    pub n_ntsb: usize,
    pub n_earnings: usize,
    /// Simulation config for ingestion and querying.
    pub sim: SimConfig,
    pub detector: aryn_partitioner::Detector,
    /// Enable Luna's shared LLM call cache (repeated-query workloads).
    pub call_cache: bool,
    /// Run the static cost analyzer (L22–L27) over every plan, and attach
    /// a [`crate::costmodel::CostReport`] to each answer.
    pub analyze_cost: bool,
}

impl Default for Bench18Cfg {
    fn default() -> Self {
        Bench18Cfg {
            seed: 42,
            n_ntsb: 60,
            n_earnings: 48,
            sim: SimConfig::with_seed(42),
            detector: aryn_partitioner::Detector::DetrSim,
            call_cache: false,
            analyze_cost: false,
        }
    }
}

impl Bench18 {
    /// Builds corpora, ingests them through the full Sycamore pipeline
    /// (partition → extract → store), and derives the 18 questions with
    /// ground truth from the records.
    pub fn build(cfg: Bench18Cfg) -> Result<Bench18> {
        let ctx = sycamore::Context::new();
        let ntsb = Corpus::ntsb(cfg.seed, cfg.n_ntsb);
        let earnings = Corpus::earnings(cfg.seed, cfg.n_earnings);
        ctx.register_corpus("ntsb", &ntsb);
        ctx.register_corpus("earnings", &earnings);
        let ingest_client = LlmClient::new(Arc::new(MockLlm::new(
            &aryn_llm::GPT4_SIM,
            cfg.sim.clone(),
        )));
        ingest_lake(&ctx, "ntsb", "ntsb", &ingest_client, ntsb_schema(), cfg.detector)?;
        ingest_lake(
            &ctx,
            "earnings",
            "earnings",
            &ingest_client,
            earnings_schema(),
            cfg.detector,
        )?;
        let luna = Luna::new(
            ctx,
            &["ntsb", "earnings"],
            LunaConfig {
                sim: cfg.sim,
                call_cache: cfg.call_cache,
                analyze_cost: cfg.analyze_cost,
                ..LunaConfig::default()
            },
        )?;
        let questions = build_questions(&ntsb, &earnings);
        Ok(Bench18 {
            luna,
            ntsb,
            earnings,
            questions,
        })
    }

    /// Runs all questions, returning `(question, answer, grade)` rows.
    pub fn run(&self) -> Result<Vec<(BenchQuestion, LunaAnswer, Grade)>> {
        let mut out = Vec::with_capacity(self.questions.len());
        for q in &self.questions {
            let ans = self.luna.ask(&q.question)?;
            let grade = grade_answer(ans.answer(), &q.expected);
            out.push((q.clone(), ans, grade));
        }
        Ok(out)
    }
}

/// Counts per grade: `(correct, plausible, incorrect)`.
pub fn tally(rows: &[(BenchQuestion, LunaAnswer, Grade)]) -> (usize, usize, usize) {
    let c = rows.iter().filter(|(_, _, g)| *g == Grade::Correct).count();
    let p = rows.iter().filter(|(_, _, g)| *g == Grade::Plausible).count();
    let i = rows.iter().filter(|(_, _, g)| *g == Grade::Incorrect).count();
    (c, p, i)
}

/// Builds the 18 questions with ground truth from the corpora's records.
pub fn build_questions(ntsb: &Corpus, earnings: &Corpus) -> Vec<BenchQuestion> {
    let n_rec = |f: &dyn Fn(&Value) -> bool| -> f64 {
        ntsb.docs.iter().filter(|d| f(&d.record)).count() as f64
    };
    let e_rec = |f: &dyn Fn(&Value) -> bool| -> Vec<&Value> {
        earnings
            .docs
            .iter()
            .map(|d| &d.record)
            .filter(|r| f(r))
            .collect()
    };
    let sval = |r: &Value, k: &str| r.get(k).and_then(Value::as_str).unwrap_or("").to_string();
    let fval = |r: &Value, k: &str| r.get(k).and_then(Value::as_float).unwrap_or(0.0);

    // --- NTSB ground truth ---------------------------------------------------
    let wind = n_rec(&|r| sval(r, "cause_detail") == "wind");
    let env = n_rec(&|r| r.get("weather_related").and_then(Value::as_bool) == Some(true));
    let engine_failure = n_rec(&|r| sval(r, "cause_detail") == "engine failure");
    let alaska = n_rec(&|r| sval(r, "us_state_abbrev") == "AK");
    let fatal_incidents = n_rec(&|r| fval(r, "fatal") > 0.0);
    let nonfatal = ntsb.docs.len() as f64 - fatal_incidents;
    let total_fatal: f64 = ntsb.docs.iter().map(|d| fval(&d.record, "fatal")).sum();
    let avg_fatal = total_fatal / ntsb.docs.len() as f64;
    let fog_2019 = n_rec(&|r| {
        sval(r, "cause_detail") == "fog" && r.get("year").and_then(Value::as_int) == Some(2019)
    });
    let mut state_counts: std::collections::BTreeMap<String, usize> = Default::default();
    for d in &ntsb.docs {
        *state_counts.entry(sval(&d.record, "us_state_abbrev")).or_default() += 1;
    }
    let top_state = state_counts
        .iter()
        .max_by_key(|(_, c)| **c)
        .map(|(s, _)| s.clone())
        .unwrap_or_default();
    let top_state_full = aryn_core::lexicon::US_STATES
        .iter()
        .find(|(a, _)| *a == top_state)
        .map(|(_, f)| (*f).to_string())
        .unwrap_or_default();

    // --- earnings ground truth ------------------------------------------------
    let lowered = e_rec(&|r| sval(r, "guidance") == "lowered").len() as f64;
    let ai_reports = e_rec(&|r| sval(r, "sector") == "AI");
    let ai_avg_growth = ai_reports.iter().map(|r| fval(r, "growth_pct")).sum::<f64>()
        / ai_reports.len().max(1) as f64;
    let sw_total_rev: f64 = e_rec(&|r| sval(r, "sector") == "software")
        .iter()
        .map(|r| fval(r, "revenue_musd"))
        .sum();
    // Top-5 fastest-growing AI companies (deduped by company, best report
    // first) — the paper's §1 "fastest growing companies in the X market"
    // question. The honest intent is companies; Luna ranks reports, so its
    // answer typically covers most but not all of these.
    let fastest_ai: Vec<String> = {
        let mut rows = e_rec(&|r| sval(r, "sector") == "AI");
        rows.sort_by(|a, b| {
            fval(b, "growth_pct")
                .partial_cmp(&fval(a, "growth_pct"))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut names = Vec::new();
        for r in rows {
            let c = sval(r, "company");
            if !names.contains(&c) {
                names.push(c);
            }
            if names.len() == 5 {
                break;
            }
        }
        names
    };
    let changed_ceo_companies: Vec<String> = {
        let mut v: Vec<String> =
            e_rec(&|r| r.get("ceo_changed").and_then(Value::as_bool) == Some(true))
                .iter()
                .map(|r| sval(r, "company"))
                .collect();
        v.sort();
        v.dedup();
        v
    };
    // "How many companies raised guidance?" honestly means distinct
    // companies; Luna counts reports — a reports-vs-companies ambiguity
    // that typically lands within the plausible band.
    let raised_companies = {
        let mut v: Vec<String> = e_rec(&|r| sval(r, "guidance") == "raised")
            .iter()
            .map(|r| sval(r, "company"))
            .collect();
        v.sort();
        v.dedup();
        v.len() as f64
    };
    let lowered_avg_eps = {
        let rows = e_rec(&|r| sval(r, "guidance") == "lowered");
        rows.iter().map(|r| fval(r, "eps")).sum::<f64>() / rows.len().max(1) as f64
    };
    let mut sector_counts: std::collections::BTreeMap<String, usize> = Default::default();
    for d in &earnings.docs {
        *sector_counts.entry(sval(&d.record, "sector")).or_default() += 1;
    }
    let top_sector = sector_counts
        .iter()
        .max_by_key(|(_, c)| **c)
        .map(|(s, _)| s.clone())
        .unwrap_or_default();
    let top_rev_2023 = e_rec(&|r| r.get("year").and_then(Value::as_int) == Some(2023))
        .iter()
        .map(|r| fval(r, "revenue_musd"))
        .fold(0.0f64, f64::max);
    // The "compare" blind spot target: the honest answer is the difference.
    let retail_reports = e_rec(&|r| sval(r, "sector") == "retail");
    let retail_avg_growth = retail_reports
        .iter()
        .map(|r| fval(r, "growth_pct"))
        .sum::<f64>()
        / retail_reports.len().max(1) as f64;
    let growth_gap = ai_avg_growth - retail_avg_growth;

    let num = |value: f64| Expected::Number {
        value,
        correct_tol: 0.05,
        plausible_tol: 0.30,
    };
    vec![
        // --- NTSB (8) ---------------------------------------------------------
        BenchQuestion {
            question: "What percent of environmentally caused incidents were due to wind?".into(),
            expected: Expected::Number {
                value: 100.0 * wind / env.max(1.0),
                correct_tol: 0.12,
                plausible_tol: 0.40,
            },
            domain: "ntsb",
        },
        BenchQuestion {
            question: "How many incidents were caused by engine failure?".into(),
            expected: num(engine_failure),
            domain: "ntsb",
        },
        BenchQuestion {
            question: "How many incidents occurred in Alaska?".into(),
            expected: num(alaska),
            domain: "ntsb",
        },
        BenchQuestion {
            question: "How many incidents involved fatalities?".into(),
            expected: num(fatal_incidents),
            domain: "ntsb",
        },
        BenchQuestion {
            question: "Which state had the most incidents?".into(),
            expected: Expected::OneOf(vec![top_state.clone(), top_state_full]),
            domain: "ntsb",
        },
        BenchQuestion {
            question: "What was the average fatal injuries per incident?".into(),
            expected: Expected::Number {
                value: avg_fatal,
                correct_tol: 0.35,
                plausible_tol: 1.2,
            },
            domain: "ntsb",
        },
        BenchQuestion {
            question: "How many incidents were caused by fog in 2019?".into(),
            expected: num(fog_2019),
            domain: "ntsb",
        },
        // Blind spot #1: negation is lost; Luna counts incidents WITH
        // fatalities instead.
        BenchQuestion {
            question: "How many incidents involved no fatalities?".into(),
            expected: num(nonfatal),
            domain: "ntsb",
        },
        // --- earnings (10) ------------------------------------------------------
        BenchQuestion {
            question: "How many companies lowered their guidance?".into(),
            expected: num(lowered),
            domain: "earnings",
        },
        BenchQuestion {
            question: "What was the average revenue growth of companies in the AI sector?".into(),
            expected: Expected::Number {
                value: ai_avg_growth,
                correct_tol: 0.15,
                plausible_tol: 0.6,
            },
            domain: "earnings",
        },
        BenchQuestion {
            question: "What was the total revenue of companies in the software sector?".into(),
            expected: Expected::Number {
                value: sw_total_rev,
                correct_tol: 0.10,
                plausible_tol: 0.40,
            },
            domain: "earnings",
        },
        BenchQuestion {
            question: "List the fastest growing companies in the AI market.".into(),
            expected: Expected::AllOf(fastest_ai),
            domain: "earnings",
        },
        BenchQuestion {
            question: "List the companies whose CEO recently changed.".into(),
            expected: Expected::AllOf(changed_ceo_companies),
            domain: "earnings",
        },
        BenchQuestion {
            question: "What was the average eps of companies that lowered guidance?".into(),
            expected: Expected::Number {
                value: lowered_avg_eps,
                correct_tol: 0.15,
                plausible_tol: 0.6,
            },
            domain: "earnings",
        },
        BenchQuestion {
            question: "Which sector had the most companies?".into(),
            expected: Expected::OneOf(vec![top_sector]),
            domain: "earnings",
        },
        BenchQuestion {
            question: "How many companies raised their guidance?".into(),
            expected: num(raised_companies),
            domain: "earnings",
        },
        // Blind spot #2: "compare A and B" keeps only A; the honest target
        // is the gap.
        BenchQuestion {
            question: "Compare the average revenue growth between the AI and retail sectors.".into(),
            expected: Expected::Number {
                value: growth_gap,
                correct_tol: 0.10,
                plausible_tol: 0.30,
            },
            domain: "earnings",
        },
        BenchQuestion {
            question: "What was the highest revenue reported in 2023?".into(),
            expected: Expected::Number {
                value: top_rev_2023,
                correct_tol: 0.05,
                plausible_tol: 0.30,
            },
            domain: "earnings",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grading_levels() {
        let exp = Expected::Number {
            value: 20.0,
            correct_tol: 0.05,
            plausible_tol: 0.30,
        };
        assert_eq!(grade_answer("20", &exp), Grade::Correct);
        assert_eq!(grade_answer("The value is 20.5", &exp), Grade::Correct);
        assert_eq!(grade_answer("roughly 24", &exp), Grade::Plausible);
        assert_eq!(grade_answer("3", &exp), Grade::Incorrect);
        assert_eq!(grade_answer("no idea", &exp), Grade::Incorrect);

        let one = Expected::OneOf(vec!["WA".into(), "Washington".into()]);
        assert_eq!(grade_answer("The state was wa with 9", &one), Grade::Correct);
        assert_eq!(grade_answer("Texas", &one), Grade::Incorrect);

        let all = Expected::AllOf(vec![
            "Apex Systems".into(),
            "Lumen Labs".into(),
            "Orion Capital".into(),
        ]);
        assert_eq!(
            grade_answer("apex systems, lumen labs, orion capital", &all),
            Grade::Correct
        );
        assert_eq!(grade_answer("Apex Systems and Lumen Labs", &all), Grade::Plausible);
        assert_eq!(grade_answer("none of them", &all), Grade::Incorrect);
    }

    #[test]
    fn questions_have_consistent_ground_truth() {
        let ntsb = Corpus::ntsb(42, 60);
        let earnings = Corpus::earnings(42, 48);
        let qs = build_questions(&ntsb, &earnings);
        assert_eq!(qs.len(), 18);
        assert_eq!(qs.iter().filter(|q| q.domain == "ntsb").count(), 8);
        assert_eq!(qs.iter().filter(|q| q.domain == "earnings").count(), 10);
        if let Expected::Number { value, .. } = &qs[0].expected {
            assert!(*value > 0.0 && *value <= 100.0, "{value}");
        } else {
            panic!("q0 should be numeric");
        }
    }

    // The full 18-question run is exercised by the `luna_accuracy` bench and
    // the cross-crate integration tests; a smoke slice here keeps unit-test
    // time bounded.
    #[test]
    fn bench_fixture_builds_and_answers_a_question() {
        let b = Bench18::build(Bench18Cfg {
            n_ntsb: 12,
            n_earnings: 10,
            ..Bench18Cfg::default()
        })
        .unwrap();
        let ans = b.luna.ask("How many incidents were caused by wind?").unwrap();
        assert!(aryn_llm::semantics::first_number(ans.answer()).is_some());
        assert!(!ans.result.traces.is_empty());
    }
}

#[cfg(test)]
mod calibration_probe {
    use super::*;

    #[test]
    #[ignore]
    fn print_bench18_grades() {
        let b = Bench18::build(Bench18Cfg::default()).unwrap();
        let mut rows = Vec::new();
        for q in &b.questions {
            match b.luna.ask(&q.question) {
                Ok(ans) => {
                    let g = grade_answer(ans.answer(), &q.expected);
                    rows.push((q.clone(), ans, g));
                }
                Err(e) => println!("[ERROR] {} => {e}", q.question),
            }
        }
        for (q, a, g) in &rows {
            let exp = match &q.expected {
                Expected::Number { value, .. } => format!("{value:.2}"),
                Expected::OneOf(v) => format!("one of {v:?}"),
                Expected::AllOf(v) => format!("all of {} items", v.len()),
            };
            println!("[{g:?}] {} => {:?} (want {exp})", q.question, a.answer().chars().take(90).collect::<String>());
        }
        let (c, p, i) = tally(&rows);
        println!("TALLY correct={c} plausible={p} incorrect={i}");
    }
}

#[cfg(test)]
mod extraction_probe {
    use super::*;

    #[test]
    #[ignore]
    fn print_extraction_facets() {
        let b = Bench18::build(Bench18Cfg::default()).unwrap();
        let truth_env = b.ntsb.docs.iter().filter(|d| d.record.get("weather_related").and_then(Value::as_bool) == Some(true)).count();
        let truth_wind = b.ntsb.docs.iter().filter(|d| d.record.get("cause_detail").and_then(Value::as_str) == Some("wind")).count();
        println!("truth env={truth_env} wind={truth_wind}");
        b.luna.context().with_store("ntsb", |s| {
            println!("cause_category facets: {:?}", s.facet("cause_category"));
            println!("cause_detail facets: {:?}", s.facet("cause_detail").iter().take(8).collect::<Vec<_>>());
            println!("weather_related facets: {:?}", s.facet("weather_related"));
        }).unwrap();
    }
}

#[cfg(test)]
mod truth_probe {
    use super::*;

    #[test]
    #[ignore]
    fn print_detail_counts() {
        let ntsb = Corpus::ntsb(42, 60);
        let mut m: std::collections::BTreeMap<String, usize> = Default::default();
        for d in &ntsb.docs {
            let k = d.record.get("cause_detail").and_then(Value::as_str).unwrap_or("").to_string();
            *m.entry(k).or_default() += 1;
        }
        println!("truth details: {m:?}");
    }
}

#[cfg(test)]
mod guidance_probe {
    use super::*;
    #[test]
    #[ignore]
    fn distinct_lowered() {
        let earnings = Corpus::earnings(42, 48);
        let rows: Vec<String> = earnings.docs.iter()
            .filter(|d| d.record.get("guidance").and_then(Value::as_str) == Some("lowered"))
            .map(|d| d.record.get("company").and_then(Value::as_str).unwrap_or("").to_string())
            .collect();
        let mut distinct = rows.clone(); distinct.sort(); distinct.dedup();
        println!("lowered reports={} distinct companies={}", rows.len(), distinct.len());
    }
}

#[cfg(test)]
mod more_probe {
    use super::*;
    #[test]
    #[ignore]
    fn probe_plausible_candidates() {
        let earnings = Corpus::earnings(42, 48);
        let rows: Vec<(&str, f64)> = earnings.docs.iter()
            .map(|d| (d.record.get("company").and_then(Value::as_str).unwrap_or(""),
                      d.record.get("growth_pct").and_then(Value::as_float).unwrap_or(0.0)))
            .collect();
        let report_mean = rows.iter().map(|(_, g)| g).sum::<f64>() / rows.len() as f64;
        let mut by_company: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        for (c, g) in &rows { by_company.entry(c).or_default().push(*g); }
        let company_mean = by_company.values().map(|v| v.iter().sum::<f64>() / v.len() as f64).sum::<f64>() / by_company.len() as f64;
        println!("report_mean={report_mean:.3} company_mean={company_mean:.3}");
        // negative sentiment distinct
        let neg: Vec<&str> = earnings.docs.iter()
            .filter(|d| d.record.get("sentiment").and_then(Value::as_str) == Some("negative"))
            .map(|d| d.record.get("company").and_then(Value::as_str).unwrap_or("")).collect();
        let mut dn = neg.clone(); dn.sort(); dn.dedup();
        println!("negative reports={} distinct={}", neg.len(), dn.len());
        // raised guidance
        let raised: Vec<&str> = earnings.docs.iter()
            .filter(|d| d.record.get("guidance").and_then(Value::as_str) == Some("raised"))
            .map(|d| d.record.get("company").and_then(Value::as_str).unwrap_or("")).collect();
        let mut dr = raised.clone(); dr.sort(); dr.dedup();
        println!("raised reports={} distinct={}", raised.len(), dr.len());
    }
}

#[cfg(test)]
mod seed_robustness {
    use super::*;

    /// The exact 13/3/2 split is calibrated at the default seed; across
    /// seeds the *shape* must hold: strong majority correct, failures
    /// dominated by the two blind-spot questions. (Ignored by default: the
    /// fixture ingests two corpora per seed.)
    #[test]
    #[ignore]
    fn grade_distribution_is_stable_across_seeds() {
        for seed in [7u64, 99, 2024] {
            let b = Bench18::build(Bench18Cfg {
                seed,
                sim: SimConfig::with_seed(seed),
                ..Bench18Cfg::default()
            })
            .unwrap();
            let rows = b.run().unwrap();
            let (c, p, i) = tally(&rows);
            println!("seed {seed}: {c}/{p}/{i}");
            assert!(c >= 11, "seed {seed}: correct {c} too low");
            assert!(i <= 4, "seed {seed}: incorrect {i} too high");
            let _ = p;
        }
    }
}

#[cfg(test)]
mod paper_numbers {
    use super::*;

    /// Pins the headline E6 reproduction: the default-seed run grades
    /// exactly 13 correct / 3 plausible / 2 incorrect, as the paper reports.
    /// Ignored by default (full double-corpus ingestion); run with
    /// `cargo test -p luna paper_numbers -- --ignored`.
    #[test]
    #[ignore]
    fn default_seed_reproduces_13_3_2() {
        let b = Bench18::build(Bench18Cfg::default()).unwrap();
        let rows = b.run().unwrap();
        assert_eq!(tally(&rows), (13, 3, 2));
        // And the failures are the two documented blind spots.
        let incorrect: Vec<&str> = rows
            .iter()
            .filter(|(_, _, g)| *g == Grade::Incorrect)
            .map(|(q, _, _)| q.question.as_str())
            .collect();
        assert!(incorrect.iter().any(|q| q.contains("no fatalities")));
        assert!(incorrect.iter().any(|q| q.starts_with("Compare")));
    }
}
