//! # luna
//!
//! LLM-powered unstructured analytics (paper §6): a natural-language query
//! planner producing JSON plan DAGs over traditional + semantic operators
//! ([`ops`]), schema discovery ([`schema`]), a rule-grammar planner engine
//! registered as the simulated LLM's `plan` task ([`planner`]), a cost-based
//! optimizer (pushdown / reorder / model selection, [`mod@optimize`]), codegen
//! to Python-like Sycamore scripts ([`codegen`]), and a traced executor with
//! human-in-the-loop plan editing ([`exec`], [`luna`]).

pub mod analyze;
pub mod bench18;
pub mod codegen;
pub mod costmodel;
pub mod exec;
pub mod kg;
pub mod luna;
pub mod ops;
pub mod optimize;
pub mod planner;
pub mod schema;
pub mod serve;

pub use analyze::{analyze, Analysis, Analyzer, FieldType, LintRule, PlanCtx, Shape};
pub use costmodel::{
    dead_extracts, estimate as estimate_cost, liveness, verify as verify_budget, CostKnobs,
    CostReport, CostRules, Interval, Live, NodeCost,
};
pub use exec::{eval_math, LunaResult, NodeOutput, NodeTrace, PlanExecutor};
pub use kg::{build_earnings_graph, build_ntsb_graph, competitors_of};
pub use luna::{
    earnings_schema, ingest_lake, ntsb_schema, Luna, LunaAnswer, LunaConfig, SessionWiring,
};
pub use serve::{
    percentile, Admission, AdmissionGuard, CacheKeyPolicy, LoadGen, LoadProfile, LoadTenant,
    QueryService, ServeConfig, ServeStats, SimReport, TenantSim, TenantSpec, TenantStats,
};
pub use ops::{Plan, PlanNode, PlanOp};
pub use optimize::{optimize, Optimized, OptimizerCfg};
pub use planner::{PlannerEngine, RulePlanner};
pub use schema::{Field, IndexSchema};
