//! Static cost & liveness analysis over Luna plans — an abstract interpreter
//! that runs *before* the first execution-model dollar is spent.
//!
//! For every plan node it propagates interval abstractions ([`Interval`],
//! shared with the engine-side mirror `sycamore::cost`): row cardinality,
//! LLM calls (micro-batch-packing aware), prompt/completion tokens,
//! simulated dollars, and virtual-clock latency. The intervals are a
//! **checked contract**: an executed node's real [`crate::exec::NodeTrace`]
//! must land inside them for any worker count, batch width, cache state, or
//! chaos seed (enforced by the `cost_envelope` proptests). Alongside the
//! sound bounds, each node carries clean-run *point estimates* (`expected_*`)
//! used for feasibility warnings and the predicted-vs-actual bench deltas.
//!
//! Two consumers sit on top:
//!
//! 1. **Budget-feasibility verification** ([`verify`], packaged as the
//!    [`CostRules`] lint rule): compares the report against the active
//!    [`aryn_llm::ReliabilityPolicy`] deadline and emits the `L22`–`L27`
//!    diagnostics (`infeasible-deadline`, `token-budget-overflow`,
//!    `unbounded-cardinality`, `degraded-terminal-only`,
//!    `cache-blind-reexec`, `dead-field`) through the PR 2 pipeline — so the
//!    planner's repair loop and the execution gate see them like any other
//!    lint.
//! 2. **Field-liveness dataflow** ([`liveness`]): a backward pass over the
//!    plan DAG computing which extracted fields are ever read downstream;
//!    the optimizer's `prune_dead_fields` rewrite consumes it.

use crate::analyze::{codes, LintRule, PlanCtx};
use crate::ops::{Plan, PlanOp};
use crate::schema::IndexSchema;
use aryn_core::text::count_tokens;
use aryn_core::Diagnostic;
use aryn_llm::prompt::tasks;
use aryn_llm::registry::{spec_by_name, ModelSpec, ALL_MODELS, GPT4_SIM};
use aryn_llm::ReliabilityPolicy;
use std::collections::{BTreeMap, BTreeSet};

pub use sycamore::cost::Interval;

/// Typical per-document context tokens assumed by the clean-run point
/// estimates (sim corpora produce short narratives).
const TYP_CTX_TOKENS: f64 = 220.0;
/// Typical completion tokens per answered item for the point estimates.
const TYP_OUT_TOKENS: f64 = 20.0;

/// Execution knobs the estimator needs; mirrors the relevant
/// [`crate::luna::LunaConfig`] fields plus [`aryn_llm::RetryPolicy`].
#[derive(Debug, Clone)]
pub struct CostKnobs {
    /// Model used by nodes that don't pin one.
    pub default_model: &'static ModelSpec,
    pub batch_max_items: usize,
    pub batch_token_budget: usize,
    pub max_transient: u32,
    pub max_reask: u32,
    pub backoff_base_ms: f64,
    /// Active reliability policy: enables degradation-ladder call headroom,
    /// zero-call lower bounds (breakers/skips), and deadline verification.
    pub reliability: Option<ReliabilityPolicy>,
    /// A chaos schedule is installed (faults consume retry budget).
    pub chaos: bool,
    /// The shared call cache is on (warm calls never meter).
    pub call_cache: bool,
    pub workers: usize,
}

impl Default for CostKnobs {
    fn default() -> Self {
        CostKnobs {
            default_model: &GPT4_SIM,
            batch_max_items: 1,
            batch_token_budget: 2048,
            max_transient: 4,
            max_reask: 2,
            backoff_base_ms: 100.0,
            reliability: None,
            chaos: false,
            call_cache: false,
            workers: 1,
        }
    }
}

impl CostKnobs {
    fn guaranteed(&self) -> bool {
        !self.call_cache && self.reliability.is_none() && !self.chaos
    }

    fn attempts(&self) -> f64 {
        1.0 + self.max_transient as f64 + self.max_reask as f64
    }

    fn backoff_ceiling(&self) -> f64 {
        let retries = self.max_transient + self.max_reask;
        self.backoff_base_ms * 1.5 * ((1u64 << retries.min(30)) as f64 - 1.0)
    }
}

/// Pricing/latency facts across the degradation ladder a node's calls could
/// walk (the primary tier alone when no reliability policy is installed).
struct TierFacts {
    primary: &'static ModelSpec,
    tiers: usize,
    window: f64,
    usd_in_max: f64,
    usd_out_max: f64,
    base_min: f64,
    base_max: f64,
    tps_min: f64,
}

fn tier_facts(primary: &'static ModelSpec, laddered: bool) -> TierFacts {
    let specs: Vec<&'static ModelSpec> = if laddered {
        let start = ALL_MODELS
            .iter()
            .position(|s| s.name == primary.name)
            .unwrap_or(0);
        ALL_MODELS[start..].to_vec()
    } else {
        vec![primary]
    };
    TierFacts {
        primary,
        tiers: specs.len(),
        window: specs.iter().map(|s| s.context_window as f64).fold(0.0, f64::max),
        usd_in_max: specs.iter().map(|s| s.usd_per_1k_input).fold(0.0, f64::max),
        usd_out_max: specs.iter().map(|s| s.usd_per_1k_output).fold(0.0, f64::max),
        base_min: specs.iter().map(|s| s.base_latency_ms).fold(f64::INFINITY, f64::min),
        base_max: specs.iter().map(|s| s.base_latency_ms).fold(0.0, f64::max),
        tps_min: specs.iter().map(|s| s.tokens_per_sec).fold(f64::INFINITY, f64::min),
    }
}

/// Per-node cost abstraction: sound intervals plus clean-run point
/// estimates.
#[derive(Debug, Clone)]
pub struct NodeCost {
    pub node_id: usize,
    pub op_kind: String,
    /// Rows (or 1 for a scalar) flowing out of this node.
    pub rows: Interval,
    pub llm_calls: Interval,
    pub input_tokens: Interval,
    pub output_tokens: Interval,
    pub cost_usd: Interval,
    /// Total virtual-clock latency of this node's calls — the quantity a
    /// per-query deadline budget observes (workers share one budget).
    pub latency_ms: Interval,
    pub expected_calls: f64,
    pub expected_tokens: f64,
    pub expected_cost_usd: f64,
    pub expected_latency_ms: f64,
}

impl NodeCost {
    fn pure(node_id: usize, op_kind: &str, rows: Interval) -> NodeCost {
        NodeCost {
            node_id,
            op_kind: op_kind.to_string(),
            rows,
            llm_calls: Interval::ZERO,
            input_tokens: Interval::ZERO,
            output_tokens: Interval::ZERO,
            cost_usd: Interval::ZERO,
            latency_ms: Interval::ZERO,
            expected_calls: 0.0,
            expected_tokens: 0.0,
            expected_cost_usd: 0.0,
            expected_latency_ms: 0.0,
        }
    }
}

/// The plan-level report, nodes in topological order.
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    pub nodes: Vec<NodeCost>,
    pub rows_out: Interval,
    pub llm_calls: Interval,
    pub input_tokens: Interval,
    pub output_tokens: Interval,
    pub cost_usd: Interval,
    pub latency_ms: Interval,
    /// Makespan bound: per-doc work divides across workers at best, runs
    /// sequentially at worst.
    pub critical_path_ms: Interval,
    pub expected_calls: f64,
    pub expected_tokens: f64,
    pub expected_cost_usd: f64,
    pub expected_latency_ms: f64,
}

impl CostReport {
    pub fn node(&self, id: usize) -> Option<&NodeCost> {
        self.nodes.iter().find(|n| n.node_id == id)
    }

    pub fn total_tokens(&self) -> Interval {
        self.input_tokens + self.output_tokens
    }

    /// One line per node plus totals — the `explain_analyze` cost block.
    pub fn render(&self) -> String {
        let mut out = String::from("static cost envelope (per node):\n");
        for n in &self.nodes {
            out.push_str(&format!(
                "  out_{} [{}] rows {}  calls {}  tokens {}  cost {}\n",
                n.node_id,
                n.op_kind,
                n.rows.render(),
                n.llm_calls.render(),
                (n.input_tokens + n.output_tokens).render(),
                n.cost_usd.render()
            ));
        }
        out.push_str(&format!(
            "  totals: calls {}  tokens {}  cost {}  latency_ms {}  critical_path_ms {}\n",
            self.llm_calls.render(),
            self.total_tokens().render(),
            self.cost_usd.render(),
            self.latency_ms.render(),
            self.critical_path_ms.render()
        ));
        out.push_str(&format!(
            "  expected (clean run): {:.0} calls  {:.0} tokens  ${:.4}  {:.0} ms\n",
            self.expected_calls, self.expected_tokens, self.expected_cost_usd, self.expected_latency_ms
        ));
        out
    }
}

/// Parameters of one LLM-calling node, fed to the shared transfer function.
struct LlmShape {
    /// Logical prompts issued (usually the input cardinality).
    items: Interval,
    /// Prompt tokens of the rendered task with an empty context — the
    /// guaranteed minimum per singleton call.
    envelope: f64,
    max_output: f64,
    /// Eligible for the PR 4 cross-document micro-batcher.
    batchable: bool,
    /// Walks a degradation ladder under a reliability policy
    /// (`generate_json_with_fallback` sites; plain `generate_json` sites
    /// only ever meter their primary tier).
    laddered: bool,
}

fn llm_node(
    node_id: usize,
    op_kind: &str,
    rows: Interval,
    shape: &LlmShape,
    primary: &'static ModelSpec,
    knobs: &CostKnobs,
) -> NodeCost {
    let facts = tier_facts(primary, shape.laddered && knobs.reliability.is_some());
    let pack = if shape.batchable { knobs.batch_max_items.max(1) as f64 } else { 1.0 };
    let bisect = if shape.batchable && knobs.batch_max_items > 1 { 2.0 } else { 1.0 };
    let calls = Interval::new(
        if knobs.guaranteed() { (shape.items.lo / pack).ceil() } else { 0.0 },
        shape.items.hi * knobs.attempts() * facts.tiers as f64 * bisect,
    );
    // Packed prompts use a different template than singletons, so only the
    // pack count survives as a per-call floor there.
    let env_lo = if pack > 1.0 { 1.0 } else { shape.envelope };
    let input_tokens = Interval::new(calls.lo * env_lo, calls.hi * facts.window);
    // Per item ≤ max_output (+8 packed headroom); per call +16 pack
    // overhead. `calls.hi` dominates both item and call counts.
    let output_tokens = Interval::new(0.0, calls.hi * (shape.max_output + 24.0));
    let cost_usd = Interval::new(
        input_tokens.lo / 1000.0 * facts.primary.usd_per_1k_input.min(facts.usd_in_max),
        input_tokens.hi / 1000.0 * facts.usd_in_max
            + output_tokens.hi / 1000.0 * facts.usd_out_max,
    );
    // Mock latency: base + (0.2·in + out)/tps · 1000; retry backoff is
    // charged to the deadline budget (never slept), so it widens the top.
    let latency_ms = Interval::new(
        calls.lo * facts.base_min,
        calls.hi * facts.base_max
            + (input_tokens.hi * 0.2 + output_tokens.hi) / facts.tps_min * 1000.0
            + shape.items.hi * knobs.backoff_ceiling(),
    );
    // Clean-run point estimates: one attempt per item at the upper
    // cardinality, typical context, typical completion.
    let (expected_calls, expected_tokens, expected_cost_usd, expected_latency_ms) =
        if shape.items.hi.is_finite() {
            let items = shape.items.hi;
            let calls_e = (items / pack).ceil();
            let in_e = items * (TYP_CTX_TOKENS + 4.0) + calls_e * shape.envelope;
            let out_e = items * TYP_OUT_TOKENS.min(shape.max_output);
            let cost_e = in_e / 1000.0 * facts.primary.usd_per_1k_input
                + out_e / 1000.0 * facts.primary.usd_per_1k_output;
            let lat_e = calls_e * facts.primary.base_latency_ms
                + (in_e * 0.2 + out_e) / facts.primary.tokens_per_sec * 1000.0;
            (calls_e, in_e + out_e, cost_e, lat_e)
        } else {
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY)
        };
    NodeCost {
        node_id,
        op_kind: op_kind.to_string(),
        rows,
        llm_calls: calls,
        input_tokens,
        output_tokens,
        cost_usd,
        latency_ms,
        expected_calls,
        expected_tokens,
        expected_cost_usd,
        expected_latency_ms,
    }
}

fn model_of(name: &str, knobs: &CostKnobs) -> &'static ModelSpec {
    if name.is_empty() {
        knobs.default_model
    } else {
        spec_by_name(name).unwrap_or(knobs.default_model)
    }
}

/// Abstractly interprets a plan. Structurally broken plans (no topological
/// order) get an empty report — the structural lints own that failure mode.
pub fn estimate(plan: &Plan, schemas: &[IndexSchema], knobs: &CostKnobs) -> CostReport {
    let Ok(order) = plan.topo_order() else {
        return CostReport::default();
    };
    let mut rows_of: BTreeMap<usize, Interval> = BTreeMap::new();
    let mut nodes: Vec<NodeCost> = Vec::with_capacity(order.len());
    for id in order {
        let Some(node) = plan.node(id) else { continue };
        let input = |i: usize| -> Interval {
            node.inputs
                .get(i)
                .and_then(|x| rows_of.get(x))
                .copied()
                .unwrap_or(Interval::ZERO)
        };
        let in0 = input(0);
        let nc = match &node.op {
            PlanOp::QueryDatabase { index, prefilter } => {
                let rows = match schemas.iter().find(|s| s.index == *index) {
                    Some(s) if prefilter.is_empty() => Interval::exact(s.doc_count as f64),
                    Some(s) => Interval::new(0.0, s.doc_count as f64),
                    // Unknown index: cardinality is statically unbounded.
                    None => Interval::at_least(0.0),
                };
                NodeCost::pure(id, node.op.kind(), rows)
            }
            PlanOp::BasicFilter { .. } | PlanOp::RangeFilter { .. } => {
                NodeCost::pure(id, node.op.kind(), Interval::new(0.0, in0.hi))
            }
            PlanOp::LlmFilter { predicate, model } => llm_node(
                id,
                node.op.kind(),
                Interval::new(0.0, in0.hi),
                &LlmShape {
                    items: in0,
                    envelope: count_tokens(&tasks::filter(predicate, "")) as f64,
                    max_output: 64.0,
                    batchable: true,
                    laddered: true,
                },
                model_of(model, knobs),
                knobs,
            ),
            PlanOp::LlmExtract { field, ftype, model } => {
                let schema = aryn_core::obj! { field.as_str() => ftype.as_str() };
                llm_node(
                    id,
                    node.op.kind(),
                    in0,
                    &LlmShape {
                        items: in0,
                        envelope: count_tokens(&tasks::extract(&schema, "")) as f64,
                        max_output: 512.0,
                        batchable: true,
                        laddered: true,
                    },
                    model_of(model, knobs),
                    knobs,
                )
            }
            PlanOp::Count | PlanOp::Math { .. } => {
                NodeCost::pure(id, node.op.kind(), Interval::exact(1.0))
            }
            PlanOp::Aggregate { key, .. } => {
                let rows = if key.is_empty() {
                    Interval::exact(1.0)
                } else {
                    Interval::new(if in0.lo > 0.0 { 1.0 } else { 0.0 }, in0.hi)
                };
                NodeCost::pure(id, node.op.kind(), rows)
            }
            PlanOp::Sort { .. } | PlanOp::GraphExpand { .. } => {
                NodeCost::pure(id, node.op.kind(), in0)
            }
            PlanOp::TopK { k, .. } => NodeCost::pure(id, node.op.kind(), in0.cap(*k as f64)),
            PlanOp::Join { .. } => {
                NodeCost::pure(id, node.op.kind(), Interval::new(0.0, in0.hi * input(1).hi))
            }
            PlanOp::SummarizeData { instructions } => llm_node(
                id,
                node.op.kind(),
                Interval::exact(1.0),
                &LlmShape {
                    // Hierarchical reduce: ≤ 2n+1 calls for n rows.
                    items: Interval::new(
                        if in0.lo > 0.0 { 1.0 } else { 0.0 },
                        if in0.hi == 0.0 { 0.0 } else { 2.0 * in0.hi + 1.0 },
                    ),
                    envelope: count_tokens(&tasks::summarize(instructions, "")) as f64,
                    max_output: 256.0,
                    batchable: false,
                    laddered: false,
                },
                knobs.default_model,
                knobs,
            ),
            PlanOp::LlmGenerate { question } => llm_node(
                id,
                node.op.kind(),
                Interval::exact(1.0),
                &LlmShape {
                    items: Interval::new(if knobs.guaranteed() { 1.0 } else { 0.0 }, 1.0),
                    envelope: count_tokens(&tasks::answer(question, "")) as f64,
                    max_output: 512.0,
                    batchable: false,
                    laddered: false,
                },
                knobs.default_model,
                knobs,
            ),
        };
        rows_of.insert(id, nc.rows);
        nodes.push(nc);
    }
    let fold = |f: fn(&NodeCost) -> Interval| {
        nodes.iter().map(f).fold(Interval::ZERO, |a, b| a + b)
    };
    let llm_calls = fold(|n| n.llm_calls);
    let input_tokens = fold(|n| n.input_tokens);
    let output_tokens = fold(|n| n.output_tokens);
    let cost_usd = fold(|n| n.cost_usd);
    let latency_ms = fold(|n| n.latency_ms);
    let critical_path_ms =
        Interval::new(latency_ms.lo / knobs.workers.max(1) as f64, latency_ms.hi);
    CostReport {
        rows_out: rows_of.get(&plan.result).copied().unwrap_or(Interval::ZERO),
        llm_calls,
        input_tokens,
        output_tokens,
        cost_usd,
        latency_ms,
        critical_path_ms,
        expected_calls: nodes.iter().map(|n| n.expected_calls).sum(),
        expected_tokens: nodes.iter().map(|n| n.expected_tokens).sum(),
        expected_cost_usd: nodes.iter().map(|n| n.expected_cost_usd).sum(),
        expected_latency_ms: nodes.iter().map(|n| n.expected_latency_ms).sum(),
        nodes,
    }
}

// --- Field liveness ---------------------------------------------------------

/// Which property fields a node's *output* must carry for downstream
/// consumers (live-out). `All` means the rows are user-visible (the result
/// rendering, an LLM prompt serializing properties) so everything is live.
#[derive(Debug, Clone, PartialEq)]
pub enum Live {
    All,
    Fields(BTreeSet<String>),
}

impl Live {
    fn none() -> Live {
        Live::Fields(BTreeSet::new())
    }

    fn union_into(&mut self, other: Live) {
        match (self, other) {
            (l @ Live::Fields(_), Live::All) => *l = Live::All,
            (Live::Fields(a), Live::Fields(b)) => a.extend(b),
            (Live::All, _) => {}
        }
    }

    pub fn contains(&self, field: &str) -> bool {
        match self {
            Live::All => true,
            Live::Fields(s) => s.contains(field),
        }
    }
}

fn fields(names: &[&str]) -> Live {
    Live::Fields(names.iter().filter(|n| !n.is_empty()).map(|n| n.to_string()).collect())
}

/// The demand a consumer places on its `pos`-th input: the fields the
/// consumer reads, plus whatever of its own live-out passes through.
fn input_demand(op: &PlanOp, live_out: &Live, _pos: usize) -> Live {
    let mut d = match op {
        // Structured references.
        PlanOp::BasicFilter { path, .. } => fields(&[path]),
        PlanOp::RangeFilter { path, .. } => fields(&[path]),
        PlanOp::Sort { path, .. } => fields(&[path]),
        PlanOp::TopK { path, .. } => fields(&[path]),
        PlanOp::Aggregate { key, path, .. } => fields(&[key, path]),
        PlanOp::Join { on } => fields(&[on]),
        // graphExpand resolves rows to graph nodes via name-like props.
        PlanOp::GraphExpand { .. } => fields(&["company", "entity", "name"]),
        // These serialize the whole property bag (or the document text,
        // which extraction cannot change) into a prompt.
        PlanOp::LlmGenerate { .. } | PlanOp::SummarizeData { .. } => Live::All,
        // Text-only consumers: llmFilter/llmExtract prompts render the
        // document's element text, never its properties.
        PlanOp::LlmFilter { .. } | PlanOp::LlmExtract { .. } => Live::none(),
        PlanOp::Count | PlanOp::Math { .. } => Live::none(),
        PlanOp::QueryDatabase { .. } => Live::none(),
    };
    // Pass-through: operators whose output rows are their input rows keep
    // every downstream-live field alive upstream. Aggregates and scalar
    // producers mint fresh rows/values, so nothing passes through them.
    let passes_through = matches!(
        op,
        PlanOp::BasicFilter { .. }
            | PlanOp::RangeFilter { .. }
            | PlanOp::LlmFilter { .. }
            | PlanOp::LlmExtract { .. }
            | PlanOp::Sort { .. }
            | PlanOp::TopK { .. }
            | PlanOp::Join { .. }
            | PlanOp::GraphExpand { .. }
    );
    if passes_through {
        let mut through = live_out.clone();
        // Fields the operator itself writes are satisfied locally.
        if let (Live::Fields(s), PlanOp::LlmExtract { field, .. }) = (&mut through, op) {
            s.remove(field);
        }
        if let (Live::Fields(s), PlanOp::GraphExpand { output, .. }) = (&mut through, op) {
            s.remove(output);
        }
        d.union_into(through);
    }
    d
}

/// Backward field-liveness dataflow over the plan DAG: live-out per node.
/// One reverse-topological pass suffices (every consumer is processed before
/// its producers).
pub fn liveness(plan: &Plan) -> BTreeMap<usize, Live> {
    let mut live: BTreeMap<usize, Live> = plan.nodes.iter().map(|n| (n.id, Live::none())).collect();
    let Ok(order) = plan.topo_order() else {
        return live;
    };
    // The result node's rows are rendered verbatim into the answer.
    let result_is_rows = plan.node(plan.result).is_some_and(|n| {
        !matches!(
            n.op,
            PlanOp::Count
                | PlanOp::Math { .. }
                | PlanOp::SummarizeData { .. }
                | PlanOp::LlmGenerate { .. }
        ) && !matches!(&n.op, PlanOp::Aggregate { key, .. } if key.is_empty())
    });
    if result_is_rows {
        live.insert(plan.result, Live::All);
    }
    for &id in order.iter().rev() {
        let Some(node) = plan.node(id) else { continue };
        let out = live.get(&id).cloned().unwrap_or_else(Live::none);
        for (pos, input) in node.inputs.iter().enumerate() {
            let demand = input_demand(&node.op, &out, pos);
            if let Some(slot) = live.get_mut(input) {
                slot.union_into(demand);
            }
        }
    }
    live
}

/// `llmExtract` nodes whose extracted field is never read downstream,
/// in topological order.
pub fn dead_extracts(plan: &Plan) -> Vec<usize> {
    let live = liveness(plan);
    let Ok(order) = plan.topo_order() else { return Vec::new() };
    order
        .into_iter()
        .filter(|id| {
            plan.node(*id).is_some_and(|n| match &n.op {
                PlanOp::LlmExtract { field, .. } => {
                    !live.get(id).is_some_and(|l| l.contains(field))
                }
                _ => false,
            })
        })
        .collect()
}

// --- Budget-feasibility verification (L22–L27) ------------------------------

/// Verifies a cost report against the active policy/knobs, emitting the
/// `L22`–`L27` diagnostics. `enforce` promotes hard infeasibility to
/// Error severity (gating planning/execution); otherwise it stays advisory.
pub fn verify(
    plan: &Plan,
    report: &CostReport,
    knobs: &CostKnobs,
    enforce: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let hard = |code, msg: String| {
        if enforce {
            Diagnostic::error(code, msg)
        } else {
            Diagnostic::warning(code, msg)
        }
    };
    // L22: the deadline budget cannot (or may not) cover the plan.
    if let Some(p) = knobs.reliability.filter(|p| p.deadline_ms > 0.0) {
        if report.latency_ms.lo > p.deadline_ms {
            out.push(
                hard(
                    codes::INFEASIBLE_DEADLINE,
                    format!(
                        "plan cannot finish inside the {:.0} ms deadline: even the optimistic \
                         latency bound is {:.0} ms",
                        p.deadline_ms, report.latency_ms.lo
                    ),
                )
                .at_node(plan.result)
                .with_suggestion("reduce cardinality (prefilter/topK) or raise the deadline"),
            );
        } else if report.expected_latency_ms > p.deadline_ms {
            out.push(
                Diagnostic::warning(
                    codes::INFEASIBLE_DEADLINE,
                    format!(
                        "expected clean-run latency {:.0} ms exceeds the {:.0} ms deadline; \
                         late calls will degrade or fail",
                        report.expected_latency_ms, p.deadline_ms
                    ),
                )
                .at_node(plan.result),
            );
        }
        // L25: a deadline below the proactive-degradation floor means every
        // guarded call skips straight to its terminal tier.
        if p.degrade_below_ms > 0.0 && p.deadline_ms <= p.degrade_below_ms {
            for n in &plan.nodes {
                let terminal = match &n.op {
                    PlanOp::LlmFilter { .. } => "string-match",
                    PlanOp::LlmExtract { .. } => "skip",
                    _ => continue,
                };
                out.push(
                    Diagnostic::warning(
                        codes::DEGRADED_TERMINAL_ONLY,
                        format!(
                            "deadline {:.0} ms never exceeds degrade_below {:.0} ms: every call \
                             proactively degrades to its {terminal} terminal",
                            p.deadline_ms, p.degrade_below_ms
                        ),
                    )
                    .at_node(n.id),
                );
            }
        }
    }
    for n in &plan.nodes {
        // L23: a guaranteed-minimum prompt that cannot fit the model window.
        let (envelope, max_output, model) = match &n.op {
            PlanOp::LlmFilter { predicate, model } => (
                count_tokens(&tasks::filter(predicate, "")) as f64,
                64.0,
                model_of(model, knobs),
            ),
            PlanOp::LlmExtract { field, ftype, model } => {
                let schema = aryn_core::obj! { field.as_str() => ftype.as_str() };
                (
                    count_tokens(&tasks::extract(&schema, "")) as f64,
                    512.0,
                    model_of(model, knobs),
                )
            }
            PlanOp::SummarizeData { instructions } => (
                count_tokens(&tasks::summarize(instructions, "")) as f64,
                256.0,
                knobs.default_model,
            ),
            PlanOp::LlmGenerate { question } => (
                count_tokens(&tasks::answer(question, "")) as f64,
                512.0,
                knobs.default_model,
            ),
            _ => continue,
        };
        if envelope + max_output + 16.0 > model.context_window as f64 {
            out.push(
                Diagnostic::error(
                    codes::TOKEN_BUDGET_OVERFLOW,
                    format!(
                        "prompt envelope ({:.0} tokens) plus completion cap ({:.0}) can never \
                         fit {}'s {}-token window",
                        envelope, max_output, model.name, model.context_window
                    ),
                )
                .at_node(n.id)
                .with_suggestion("shorten the predicate/instructions or pin a larger-window model"),
            );
        } else if knobs.batch_max_items > 1
            && matches!(n.op, PlanOp::LlmFilter { .. } | PlanOp::LlmExtract { .. })
            && envelope + knobs.batch_token_budget as f64 + max_output + 24.0
                > model.context_window as f64
        {
            out.push(
                Diagnostic::warning(
                    codes::TOKEN_BUDGET_OVERFLOW,
                    format!(
                        "micro-batch token budget {} cannot fit {}'s {}-token window alongside \
                         the envelope; packs will shrink toward singletons",
                        knobs.batch_token_budget, model.name, model.context_window
                    ),
                )
                .at_node(n.id),
            );
        }
    }
    // L24: unbounded cardinality feeding a reducer or per-row LLM operator.
    for n in &plan.nodes {
        let consumes_rows = matches!(
            n.op,
            PlanOp::LlmFilter { .. }
                | PlanOp::LlmExtract { .. }
                | PlanOp::Aggregate { .. }
                | PlanOp::Count
                | PlanOp::Sort { .. }
                | PlanOp::SummarizeData { .. }
        );
        if !consumes_rows {
            continue;
        }
        let unbounded_input = n.inputs.iter().any(|i| {
            report.node(*i).is_some_and(|c| c.rows.is_unbounded())
        });
        if unbounded_input {
            out.push(
                Diagnostic::warning(
                    codes::UNBOUNDED_CARDINALITY,
                    format!(
                        "statically unbounded cardinality flows into {} — the cost envelope \
                         is open above",
                        n.op.kind()
                    ),
                )
                .at_node(n.id)
                .with_suggestion("scan a known index or cap the set with topK/prefilters"),
            );
        }
    }
    // L26: identical semantic subtrees re-executed without a call cache.
    if !knobs.call_cache {
        let mut sigs: BTreeMap<String, usize> = BTreeMap::new();
        if let Ok(order) = plan.topo_order() {
            let mut sig_of: BTreeMap<usize, String> = BTreeMap::new();
            for id in order {
                let Some(n) = plan.node(id) else { continue };
                let ins: Vec<&str> = n
                    .inputs
                    .iter()
                    .map(|i| sig_of.get(i).map(String::as_str).unwrap_or("?"))
                    .collect();
                let sig = format!("{:?}<-({})", n.op, ins.join(","));
                if n.op.is_semantic() {
                    if let Some(first) = sigs.get(&sig) {
                        out.push(
                            Diagnostic::warning(
                                codes::CACHE_BLIND_REEXEC,
                                format!(
                                    "identical semantic subtree already computed at out_{first}; \
                                     without the call cache its LLM calls are paid twice"
                                ),
                            )
                            .at_node(id)
                            .with_suggestion("enable call_cache or deduplicate the subtree"),
                        );
                    } else {
                        sigs.insert(sig.clone(), id);
                    }
                }
                sig_of.insert(id, sig);
            }
        }
    }
    // L27: extracted fields nobody reads.
    for id in dead_extracts(plan) {
        if let Some(PlanOp::LlmExtract { field, .. }) = plan.node(id).map(|n| &n.op) {
            out.push(
                Diagnostic::warning(
                    codes::DEAD_FIELD,
                    format!("extracted field {field:?} is never read downstream"),
                )
                .at_node(id)
                .with_suggestion("enable prune_dead_fields or drop the llmExtract node"),
            );
        }
    }
    out
}

/// The cost/liveness verifier packaged as a PR 2 lint rule, so cost
/// diagnostics flow through the same repair loop, optimizer gate, and
/// telemetry counters as the semantic lints.
pub struct CostRules {
    pub knobs: CostKnobs,
    /// Promote hard infeasibility to Error severity (the
    /// `enforce_budget` knob).
    pub enforce: bool,
}

impl LintRule for CostRules {
    fn code(&self) -> &'static str {
        codes::INFEASIBLE_DEADLINE
    }

    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        let report = estimate(cx.plan, cx.schemas, &self.knobs);
        out.extend(verify(cx.plan, &report, &self.knobs, self.enforce));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::PlanNode;
    use crate::schema::Field;
    use aryn_core::Severity;

    fn schema(docs: usize) -> IndexSchema {
        IndexSchema {
            index: "ntsb".into(),
            doc_count: docs,
            fields: vec![
                Field { path: "fatal".into(), ftype: "int".into(), count: docs, samples: vec![] },
                Field { path: "year".into(), ftype: "int".into(), count: docs, samples: vec![] },
            ],
        }
    }

    fn node(id: usize, op: PlanOp, inputs: Vec<usize>) -> PlanNode {
        PlanNode { id, op, inputs, description: String::new() }
    }

    fn scan(id: usize) -> PlanNode {
        node(
            id,
            PlanOp::QueryDatabase { index: "ntsb".into(), prefilter: vec![] },
            vec![],
        )
    }

    fn plan(nodes: Vec<PlanNode>, result: usize) -> Plan {
        Plan { nodes, result }
    }

    #[test]
    fn scan_filter_count_cardinality() {
        let p = plan(
            vec![
                scan(0),
                node(1, PlanOp::BasicFilter { path: "fatal".into(), value: 1.into() }, vec![0]),
                node(2, PlanOp::Count, vec![1]),
            ],
            2,
        );
        let r = estimate(&p, &[schema(60)], &CostKnobs::default());
        assert_eq!(r.node(0).map(|n| n.rows), Some(Interval::exact(60.0)));
        assert_eq!(r.node(1).map(|n| n.rows), Some(Interval::new(0.0, 60.0)));
        assert_eq!(r.rows_out, Interval::exact(1.0));
        assert_eq!(r.llm_calls, Interval::ZERO);
    }

    #[test]
    fn llm_filter_call_bounds_track_knobs() {
        let p = plan(
            vec![
                scan(0),
                node(
                    1,
                    PlanOp::LlmFilter { predicate: "was it fatal".into(), model: String::new() },
                    vec![0],
                ),
            ],
            1,
        );
        let exact = estimate(&p, &[schema(10)], &CostKnobs::default());
        let calls = exact.node(1).map(|n| n.llm_calls).unwrap_or(Interval::ZERO);
        assert_eq!(calls.lo, 10.0);
        assert!(calls.contains(10.0));
        // Batching drops the floor to the pack count.
        let batched = estimate(
            &p,
            &[schema(10)],
            &CostKnobs { batch_max_items: 4, ..CostKnobs::default() },
        );
        assert_eq!(batched.node(1).map(|n| n.llm_calls.lo), Some(3.0));
        // A cache (or reliability, or chaos) legalizes zero calls.
        let cached = estimate(
            &p,
            &[schema(10)],
            &CostKnobs { call_cache: true, ..CostKnobs::default() },
        );
        assert_eq!(cached.node(1).map(|n| n.llm_calls.lo), Some(0.0));
        // A reliability ladder multiplies the ceiling.
        let laddered = estimate(
            &p,
            &[schema(10)],
            &CostKnobs {
                reliability: Some(ReliabilityPolicy::standard()),
                ..CostKnobs::default()
            },
        );
        assert!(
            laddered.node(1).map(|n| n.llm_calls.hi) > exact.node(1).map(|n| n.llm_calls.hi)
        );
    }

    #[test]
    fn unknown_index_is_unbounded_and_l24_fires() {
        let p = plan(
            vec![
                node(
                    0,
                    PlanOp::QueryDatabase { index: "nowhere".into(), prefilter: vec![] },
                    vec![],
                ),
                node(1, PlanOp::Count, vec![0]),
            ],
            1,
        );
        let knobs = CostKnobs::default();
        let r = estimate(&p, &[schema(60)], &knobs);
        assert!(r.node(0).is_some_and(|n| n.rows.is_unbounded()));
        let diags = verify(&p, &r, &knobs, false);
        assert!(diags.iter().any(|d| d.code == codes::UNBOUNDED_CARDINALITY));
    }

    #[test]
    fn infeasible_deadline_is_hard_under_enforce() {
        let p = plan(
            vec![
                scan(0),
                node(
                    1,
                    PlanOp::LlmFilter { predicate: "p".into(), model: String::new() },
                    vec![0],
                ),
            ],
            1,
        );
        // 60 docs × ≥450 ms base latency can never fit a 1 s deadline —
        // except that under reliability calls can degrade to terminals, so
        // the sound lower bound is 0 and only the *expected* check fires.
        let knobs = CostKnobs {
            reliability: Some(ReliabilityPolicy {
                deadline_ms: 1_000.0,
                ..ReliabilityPolicy::standard()
            }),
            ..CostKnobs::default()
        };
        let r = estimate(&p, &[schema(60)], &knobs);
        assert_eq!(r.latency_ms.lo, 0.0);
        let diags = verify(&p, &r, &knobs, true);
        let l22: Vec<_> =
            diags.iter().filter(|d| d.code == codes::INFEASIBLE_DEADLINE).collect();
        assert!(!l22.is_empty());
        assert!(l22.iter().all(|d| d.severity == Severity::Warning));
        assert!(r.expected_latency_ms > 1_000.0);
    }

    #[test]
    fn terminal_only_deadline_warns_l25() {
        let knobs = CostKnobs {
            reliability: Some(ReliabilityPolicy {
                deadline_ms: 1_000.0,
                degrade_below_ms: 2_000.0,
                ..ReliabilityPolicy::standard()
            }),
            ..CostKnobs::default()
        };
        let p = plan(
            vec![
                scan(0),
                node(
                    1,
                    PlanOp::LlmExtract {
                        field: "cause".into(),
                        ftype: "string".into(),
                        model: String::new(),
                    },
                    vec![0],
                ),
            ],
            1,
        );
        let r = estimate(&p, &[schema(10)], &knobs);
        let diags = verify(&p, &r, &knobs, false);
        assert!(diags.iter().any(|d| d.code == codes::DEGRADED_TERMINAL_ONLY));
    }

    #[test]
    fn duplicate_semantic_subtree_warns_l26_unless_cached() {
        let dup = |id| {
            node(
                id,
                PlanOp::LlmFilter { predicate: "same predicate".into(), model: String::new() },
                vec![0],
            )
        };
        let p = plan(vec![scan(0), dup(1), dup(2), node(3, PlanOp::Join { on: "year".into() }, vec![1, 2])], 3);
        let knobs = CostKnobs::default();
        let r = estimate(&p, &[schema(10)], &knobs);
        let diags = verify(&p, &r, &knobs, false);
        assert!(diags.iter().any(|d| d.code == codes::CACHE_BLIND_REEXEC));
        let cached = CostKnobs { call_cache: true, ..CostKnobs::default() };
        let diags = verify(&p, &r, &cached, false);
        assert!(diags.iter().all(|d| d.code != codes::CACHE_BLIND_REEXEC));
    }

    #[test]
    fn liveness_finds_dead_extract_but_spares_consumed_and_result_fields() {
        // scan → extract(cause) → extract(unused) → filter(cause) → count
        let p = plan(
            vec![
                scan(0),
                node(
                    1,
                    PlanOp::LlmExtract {
                        field: "cause".into(),
                        ftype: "string".into(),
                        model: String::new(),
                    },
                    vec![0],
                ),
                node(
                    2,
                    PlanOp::LlmExtract {
                        field: "unused".into(),
                        ftype: "string".into(),
                        model: String::new(),
                    },
                    vec![1],
                ),
                node(
                    3,
                    PlanOp::BasicFilter { path: "cause".into(), value: "bird strike".into() },
                    vec![2],
                ),
                node(4, PlanOp::Count, vec![3]),
            ],
            4,
        );
        assert_eq!(dead_extracts(&p), vec![2]);
        // If the rows themselves are the result, everything is live.
        let p_rows = plan(p.nodes[..4].to_vec(), 3);
        assert!(dead_extracts(&p_rows).is_empty());
    }

    #[test]
    fn envelope_overflow_is_a_hard_error_l23() {
        let huge = "fatal ".repeat(3000);
        let p = plan(
            vec![
                scan(0),
                node(1, PlanOp::LlmFilter { predicate: huge, model: "llama-7b-sim".into() }, vec![0]),
            ],
            1,
        );
        let knobs = CostKnobs::default();
        let r = estimate(&p, &[schema(5)], &knobs);
        let diags = verify(&p, &r, &knobs, false);
        assert!(diags
            .iter()
            .any(|d| d.code == codes::TOKEN_BUDGET_OVERFLOW && d.severity == Severity::Error));
    }

    #[test]
    fn cost_rules_flow_through_the_analyzer() {
        let p = plan(
            vec![
                scan(0),
                node(
                    1,
                    PlanOp::LlmExtract {
                        field: "unused".into(),
                        ftype: "string".into(),
                        model: String::new(),
                    },
                    vec![0],
                ),
                node(2, PlanOp::Count, vec![1]),
            ],
            2,
        );
        let analysis = crate::analyze::Analyzer::new()
            .with_rule(Box::new(CostRules { knobs: CostKnobs::default(), enforce: false }))
            .analyze(&p, &[schema(10)]);
        assert!(analysis.diagnostics.iter().any(|d| d.code == codes::DEAD_FIELD));
    }
}
