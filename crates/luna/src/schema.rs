//! Luna's data schema (§6.1): "Luna operates on data ingested using
//! Sycamore, benefiting from structured information extracted from
//! unstructured data. Luna uses this schema during the query planning phase."
//!
//! The schema is *discovered* from a document store's properties and "can
//! evolve over time" — re-deriving it after new extractions picks up new
//! fields automatically.

use aryn_core::Value;
use aryn_index::{DocStore, StoreSnapshot};

/// One discovered field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub path: String,
    pub ftype: String,
    /// How many documents carry the field.
    pub count: usize,
    /// A few distinct sample values (for planner grounding).
    pub samples: Vec<Value>,
}

/// Schema of one index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSchema {
    pub index: String,
    pub doc_count: usize,
    pub fields: Vec<Field>,
}

impl IndexSchema {
    /// Discovers the schema of a store.
    pub fn discover(index: &str, store: &DocStore) -> IndexSchema {
        let mut fields = Vec::new();
        for (path, (ftype, count)) in store.schema() {
            let samples: Vec<Value> = store
                .facet(&path)
                .into_iter()
                .take(8)
                .map(|(v, _)| v)
                .collect();
            fields.push(Field {
                path,
                ftype,
                count,
                samples,
            });
        }
        IndexSchema {
            index: index.to_string(),
            doc_count: store.len(),
            fields,
        }
    }

    /// Discovers the schema of a frozen MVCC snapshot — the same derivation
    /// as [`IndexSchema::discover`], but stable under concurrent ingestion:
    /// a question planned against a pinned snapshot sees the fields and
    /// counts as of that snapshot's sequence number.
    pub fn discover_snapshot(index: &str, snap: &StoreSnapshot) -> IndexSchema {
        let mut fields = Vec::new();
        for (path, (ftype, count)) in snap.schema() {
            let samples: Vec<Value> = snap
                .facet(&path)
                .into_iter()
                .take(8)
                .map(|(v, _)| v)
                .collect();
            fields.push(Field {
                path,
                ftype,
                count,
                samples,
            });
        }
        IndexSchema {
            index: index.to_string(),
            doc_count: snap.len(),
            fields,
        }
    }

    pub fn field(&self, path: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.path == path)
    }

    /// Resolves a natural-language mention to the best-matching field by
    /// token overlap (e.g. "revenue growth" → `growth_pct`).
    pub fn resolve_field(&self, mention: &str) -> Option<&Field> {
        let want = aryn_core::text::analyze(&mention.replace('_', " "));
        if want.is_empty() {
            return None;
        }
        let mut best: Option<(&Field, f64)> = None;
        for f in &self.fields {
            let have = aryn_core::text::analyze(&f.path.replace('_', " "));
            let hits = want.iter().filter(|t| have.contains(t)).count();
            if hits == 0 {
                continue;
            }
            // Prefer precise matches: overlap relative to both sides.
            let score = hits as f64 / want.len() as f64 + hits as f64 / have.len() as f64;
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((f, score));
            }
        }
        best.map(|(f, _)| f)
    }

    /// Renders the schema for the planner prompt.
    pub fn render(&self) -> Value {
        let mut m = std::collections::BTreeMap::new();
        for f in &self.fields {
            m.insert(f.path.clone(), Value::from(f.ftype.as_str()));
        }
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_core::{obj, Document};

    fn store() -> DocStore {
        let mut s = DocStore::new();
        for (i, (state, growth)) in [("AK", 10.5), ("TX", -2.0), ("AK", 3.0)].iter().enumerate() {
            let mut d = Document::new(format!("d{i}"));
            d.properties = obj! {
                "us_state_abbrev" => *state,
                "growth_pct" => *growth,
                "revenue_musd" => 100.0 + i as f64,
            };
            s.put(d);
        }
        s
    }

    #[test]
    fn discover_collects_fields_and_samples() {
        let schema = IndexSchema::discover("x", &store());
        assert_eq!(schema.doc_count, 3);
        let state = schema.field("us_state_abbrev").unwrap();
        assert_eq!(state.ftype, "string");
        assert_eq!(state.count, 3);
        assert!(!state.samples.is_empty());
    }

    #[test]
    fn resolve_field_by_mention() {
        let schema = IndexSchema::discover("x", &store());
        assert_eq!(schema.resolve_field("growth").unwrap().path, "growth_pct");
        assert_eq!(schema.resolve_field("revenue").unwrap().path, "revenue_musd");
        assert_eq!(schema.resolve_field("state").unwrap().path, "us_state_abbrev");
        assert!(schema.resolve_field("altitude").is_none());
        assert!(schema.resolve_field("").is_none());
    }

    #[test]
    fn render_is_prompt_friendly() {
        let schema = IndexSchema::discover("x", &store());
        let v = schema.render();
        assert_eq!(v.get("growth_pct").unwrap().as_str(), Some("float"));
    }
}
