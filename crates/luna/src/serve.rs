//! Multi-tenant query service: many concurrent Luna sessions over shared
//! indexes and one shared call cache.
//!
//! The serving layer owns everything that must exist exactly once — the
//! discovered schemas, the knowledge graph, the LLM call cache, the breaker
//! board, the fair-share call-slot gate — and hands each session a cheap
//! [`SessionWiring`] referencing it:
//!
//! - **Admission control**: at most `max_active` questions execute at once;
//!   up to `queue_depth` more wait; beyond that `submit` fails fast with
//!   [`ArynError::Overloaded`] instead of letting latency collapse for
//!   everyone (the paper's "interactive analytics" posture: a crisp reject
//!   beats an unbounded queue).
//! - **Per-tenant budgets**: every tenant gets a scoped
//!   [`ReliabilityState`] fork of one base state; every question forks
//!   again, so deadline/token/$ clocks are question-scoped — one tenant
//!   burning its budget never drains another's, and a tenant's breaker
//!   storms trip `{tenant}/{model}` keys instead of the shared ones.
//! - **Fair-share LLM slots**: all sessions draw model-call slots from one
//!   [`FairShare`] gate scheduled by deficit round-robin over tenant
//!   weights, so an aggressor's question storm queues behind its own
//!   deficit instead of starving everyone else.
//! - **Cache-key policy**: [`CacheKeyPolicy::Shared`] lets tenants reuse
//!   each other's temperature-0 completions (cheapest);
//!   [`CacheKeyPolicy::PerTenant`] folds the tenant id into the cache key
//!   namespace so entries never cross tenants (isolation when prompts may
//!   embed tenant data).
//!
//! The closed-loop [`LoadGen`] drives the same deficit-round-robin
//! discipline as a discrete-event simulation on the virtual clock —
//! hundreds of simulated users issuing questions back-to-back — and
//! reports per-tenant p50/p99 latency plus the Jain fairness index, which
//! is how the serving bench and the CI fairness guard measure that one
//! tenant's storm cannot starve the others.

use crate::luna::{Luna, LunaConfig, SessionWiring};
use crate::schema::IndexSchema;
use aryn_core::{ArynError, Result};
use aryn_llm::{
    jain_index, DrrQueue, FairShare, FairShareStats, LlmCallCache, ReliabilityPolicy,
    ReliabilityState, SimConfig,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Re-acquires a poisoned lock: state behind these mutexes is counters and
/// queues that stay coherent even if a holder panicked mid-update.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How cache keys are scoped across tenants in the shared call cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKeyPolicy {
    /// One key space: tenants reuse each other's temperature-0 completions.
    Shared,
    /// The tenant id is folded into every cache key (a disjoint namespace
    /// per tenant): entries never leak across tenants.
    PerTenant,
}

/// One tenant of the service.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub id: String,
    /// Fair-share weight: a tenant with weight 2.0 gets twice the LLM call
    /// slots of a weight-1.0 tenant under contention.
    pub weight: f64,
    /// Per-tenant reliability/budget override; `None` inherits the
    /// service-wide policy.
    pub policy: Option<ReliabilityPolicy>,
}

impl TenantSpec {
    pub fn new(id: &str, weight: f64) -> TenantSpec {
        TenantSpec { id: id.to_string(), weight, policy: None }
    }

    pub fn with_policy(mut self, policy: ReliabilityPolicy) -> TenantSpec {
        self.policy = Some(policy);
        self
    }
}

/// Service-wide knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Questions executing concurrently before new arrivals queue.
    pub max_active: usize,
    /// Arrivals waiting beyond `max_active` before `submit` rejects with
    /// [`ArynError::Overloaded`].
    pub queue_depth: usize,
    /// Capacity of the fair-share LLM call-slot gate shared by all
    /// sessions.
    pub llm_slots: usize,
    /// Cache-key scoping across tenants.
    pub cache_policy: CacheKeyPolicy,
    /// In-memory entry bound for the shared call cache.
    pub cache_capacity: usize,
    /// Base reliability policy (per-question deadline/token/$ budgets and
    /// breaker tuning); tenants may override via [`TenantSpec::policy`].
    pub reliability: ReliabilityPolicy,
    pub tenants: Vec<TenantSpec>,
    pub sim: SimConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_active: 8,
            queue_depth: 32,
            llm_slots: 4,
            cache_policy: CacheKeyPolicy::Shared,
            cache_capacity: 8192,
            reliability: ReliabilityPolicy::standard(),
            tenants: Vec::new(),
            sim: SimConfig::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

#[derive(Default)]
struct AdmissionInner {
    active: usize,
    waiting: usize,
}

/// Bounded-queue admission: `max_active` run, `queue_depth` wait, the rest
/// are rejected fast.
pub struct Admission {
    max_active: usize,
    queue_depth: usize,
    inner: Mutex<AdmissionInner>,
    cv: Condvar,
}

impl Admission {
    pub fn new(max_active: usize, queue_depth: usize) -> Arc<Admission> {
        Arc::new(Admission {
            max_active: max_active.max(1),
            queue_depth,
            inner: Mutex::new(AdmissionInner::default()),
            cv: Condvar::new(),
        })
    }

    /// Admits the caller, blocking in the bounded queue if the service is
    /// at capacity; errs [`ArynError::Overloaded`] when the queue is full.
    pub fn enter(self: &Arc<Self>) -> Result<AdmissionGuard> {
        let mut g = lock(&self.inner);
        if g.active >= self.max_active {
            if g.waiting >= self.queue_depth {
                return Err(ArynError::Overloaded { active: g.active, queued: g.waiting });
            }
            g.waiting += 1;
            while g.active >= self.max_active {
                g = self.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            g.waiting -= 1;
        }
        g.active += 1;
        Ok(AdmissionGuard { adm: Arc::clone(self) })
    }

    /// (active, waiting) right now.
    pub fn load(&self) -> (usize, usize) {
        let g = lock(&self.inner);
        (g.active, g.waiting)
    }
}

/// Releases the admission slot on drop and wakes one waiter.
pub struct AdmissionGuard {
    adm: Arc<Admission>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        let mut g = lock(&self.adm.inner);
        g.active = g.active.saturating_sub(1);
        drop(g);
        self.adm.cv.notify_one();
    }
}

// ---------------------------------------------------------------------------
// Per-tenant serving stats
// ---------------------------------------------------------------------------

/// Per-tenant counters the service accumulates across questions.
#[derive(Debug, Default, Clone)]
pub struct TenantStats {
    /// Questions submitted (answered + failed + rejected).
    pub questions: u64,
    pub answered: u64,
    /// Rejections at admission ([`ArynError::Overloaded`]).
    pub overloaded: u64,
    /// Questions that ran out of their simulated deadline.
    pub deadline_exceeded: u64,
    /// Questions that ran out of token or dollar budget.
    pub budget_exhausted: u64,
    /// Other failures (planner rejects, execution errors…).
    pub failed: u64,
    /// Simulated milliseconds charged against this tenant's deadlines.
    pub spent_ms: f64,
    pub spent_tokens: u64,
    pub spent_usd: f64,
}

/// Snapshot of the whole service's accounting.
#[derive(Debug, Default, Clone)]
pub struct ServeStats {
    pub tenants: BTreeMap<String, TenantStats>,
}

impl ServeStats {
    /// Jain fairness index over per-tenant answered-question counts
    /// normalized by fair-share weight (1.0 = perfectly fair).
    pub fn jain_by_weight(&self, weights: &BTreeMap<String, f64>) -> f64 {
        let alloc: Vec<f64> = self
            .tenants
            .iter()
            .map(|(id, t)| t.answered as f64 / weights.get(id).copied().unwrap_or(1.0).max(1e-9))
            .collect();
        jain_index(&alloc)
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

struct TenantHandle {
    spec: TenantSpec,
    /// Tenant-scoped fork of the base state: breaker keys are
    /// `{tenant}/{model}`, budget clocks are re-forked per question.
    reliability: Arc<ReliabilityState>,
}

/// A multi-tenant Luna front end over one Sycamore runtime.
pub struct QueryService {
    ctx: sycamore::Context,
    indexes: Vec<String>,
    schemas: Vec<IndexSchema>,
    graph: Arc<aryn_index::GraphStore>,
    cache: Arc<LlmCallCache>,
    cache_policy: CacheKeyPolicy,
    gate: Arc<FairShare>,
    base: Arc<ReliabilityState>,
    tenants: BTreeMap<String, TenantHandle>,
    admission: Arc<Admission>,
    stats: Mutex<ServeStats>,
    session_seq: AtomicU64,
    sim: SimConfig,
}

impl QueryService {
    /// Builds the service over a context whose catalog already holds the
    /// ingested stores named in `indexes`: schemas are discovered and the
    /// knowledge graph is built exactly once, then shared by every session.
    pub fn new(ctx: sycamore::Context, indexes: &[&str], cfg: ServeConfig) -> Result<QueryService> {
        let mut schemas = Vec::new();
        for name in indexes {
            schemas.push(ctx.with_store(name, |s| IndexSchema::discover(name, s))?);
        }
        let mut graph = aryn_index::GraphStore::new();
        for name in indexes {
            ctx.with_store(name, |s| {
                let _ = crate::kg::build_earnings_graph(s, &mut graph);
                let _ = crate::kg::build_ntsb_graph(s, &mut graph);
            })?;
        }
        let cache = Arc::new(LlmCallCache::with_capacity(cfg.cache_capacity));
        let base = ReliabilityState::new(cfg.reliability);
        let gate = FairShare::new(cfg.llm_slots);
        let mut tenants = BTreeMap::new();
        let mut stats = ServeStats::default();
        for spec in &cfg.tenants {
            gate.set_weight(&spec.id, spec.weight);
            let policy = spec.policy.unwrap_or(cfg.reliability);
            let reliability = base.fork_scoped(&spec.id, policy);
            stats.tenants.insert(spec.id.clone(), TenantStats::default());
            tenants.insert(spec.id.clone(), TenantHandle { spec: spec.clone(), reliability });
        }
        Ok(QueryService {
            ctx,
            indexes: indexes.iter().map(|s| s.to_string()).collect(),
            schemas,
            graph: Arc::new(graph),
            cache,
            cache_policy: cfg.cache_policy,
            gate,
            base,
            tenants,
            admission: Admission::new(cfg.max_active, cfg.queue_depth),
            stats: Mutex::new(stats),
            session_seq: AtomicU64::new(0),
            sim: cfg.sim,
        })
    }

    fn handle(&self, tenant: &str) -> Result<&TenantHandle> {
        self.tenants
            .get(tenant)
            .ok_or_else(|| ArynError::Other(format!("unknown tenant: {tenant}")))
    }

    /// Opens a session for a tenant: a full Luna built from the shared
    /// precomputed artifacts (cheap — no schema discovery, no KG build).
    /// Sessions are independent handles; any number may run concurrently.
    pub fn session(&self, tenant: &str) -> Result<Luna> {
        let handle = self.handle(tenant)?;
        let seq = self.session_seq.fetch_add(1, Ordering::Relaxed);
        let namespace = match self.cache_policy {
            CacheKeyPolicy::Shared => None,
            CacheKeyPolicy::PerTenant => Some(tenant.to_string()),
        };
        let wiring = SessionWiring {
            tenant: tenant.to_string(),
            session_tag: format!("{tenant}/session-{seq}"),
            call_cache: Some(Arc::clone(&self.cache)),
            cache_namespace: namespace,
            reliability: Some(Arc::clone(&handle.reliability)),
            slots: Some(Arc::clone(&self.gate)),
            schemas: Some(self.schemas.clone()),
            graph: Some(Arc::clone(&self.graph)),
        };
        let index_refs: Vec<&str> = self.indexes.iter().map(String::as_str).collect();
        Luna::new(
            self.ctx.clone(),
            &index_refs,
            LunaConfig { sim: self.sim.clone(), session: Some(wiring), ..LunaConfig::default() },
        )
    }

    /// One question end to end under admission control: open a session,
    /// ask, account the spend against the tenant. Blocks in the admission
    /// queue when the service is at capacity; errs
    /// [`ArynError::Overloaded`] when the queue is full too.
    pub fn submit(&self, tenant: &str, question: &str) -> Result<crate::luna::LunaAnswer> {
        self.handle(tenant)?;
        {
            let mut g = lock(&self.stats);
            g.tenants.entry(tenant.to_string()).or_default().questions += 1;
        }
        let _slot = match self.admission.enter() {
            Ok(guard) => guard,
            Err(e) => {
                if let ArynError::Overloaded { .. } = &e {
                    lock(&self.stats).tenants.entry(tenant.to_string()).or_default().overloaded +=
                        1;
                }
                return Err(e);
            }
        };
        let session = self.session(tenant)?;
        let outcome = session.ask(question);
        let mut g = lock(&self.stats);
        let t = g.tenants.entry(tenant.to_string()).or_default();
        if let Some(state) = session.question_reliability() {
            t.spent_ms += state.now_ms();
            t.spent_tokens += state.spent_tokens();
            t.spent_usd += state.spent_usd();
        }
        match &outcome {
            Ok(_) => t.answered += 1,
            Err(ArynError::DeadlineExceeded { .. }) => t.deadline_exceeded += 1,
            Err(ArynError::BudgetExhausted { .. }) => t.budget_exhausted += 1,
            Err(_) => t.failed += 1,
        }
        outcome
    }

    /// Per-tenant accounting so far.
    pub fn stats(&self) -> ServeStats {
        lock(&self.stats).clone()
    }

    /// Fair-share gate counters (grants and queue depths per tenant).
    pub fn fair_stats(&self) -> FairShareStats {
        self.gate.stats()
    }

    /// Shared call-cache counters.
    pub fn cache_stats(&self) -> aryn_llm::CacheStats {
        self.cache.stats()
    }

    /// Total circuit-breaker trips across every tenant scope and model.
    pub fn breaker_trips(&self) -> u64 {
        self.base.board().total_trips()
    }

    /// (active, waiting) questions right now.
    pub fn load(&self) -> (usize, usize) {
        self.admission.load()
    }

    /// The admission controller (tests hold a slot to provoke overload
    /// deterministically).
    pub fn admission(&self) -> Arc<Admission> {
        Arc::clone(&self.admission)
    }

    /// Fair-share weights by tenant (for fairness reporting).
    pub fn weights(&self) -> BTreeMap<String, f64> {
        self.tenants.iter().map(|(id, h)| (id.clone(), h.spec.weight)).collect()
    }
}

// ---------------------------------------------------------------------------
// Closed-loop load generator (discrete-event simulation, virtual clock)
// ---------------------------------------------------------------------------

/// Deterministic per-question service demands (simulated milliseconds of
/// LLM slot time), cycled in order. Profile these from solo runs so the
/// simulation's demands match what real questions cost.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    pub service_ms: Vec<f64>,
}

impl LoadProfile {
    pub fn uniform(ms: f64) -> LoadProfile {
        LoadProfile { service_ms: vec![ms.max(1e-9)] }
    }

    pub fn of(service_ms: Vec<f64>) -> LoadProfile {
        assert!(!service_ms.is_empty(), "load profile needs at least one service time");
        LoadProfile { service_ms }
    }

    fn demand(&self, n: usize) -> f64 {
        self.service_ms[n % self.service_ms.len()].max(1e-9)
    }
}

/// One tenant's closed-loop workload: `users` virtual users, each issuing
/// `questions_per_user` questions back-to-back (a user's next question
/// arrives the instant its previous answer lands).
#[derive(Debug, Clone)]
pub struct LoadTenant {
    pub id: String,
    pub weight: f64,
    pub users: usize,
    pub questions_per_user: usize,
    pub profile: LoadProfile,
}

/// Closed-loop load generator over the virtual clock: the same
/// deficit-round-robin slot discipline the live [`FairShare`] gate runs,
/// driven as a discrete-event simulation so thousands of concurrent
/// simulated questions cost microseconds of real time and the result is
/// bit-reproducible.
#[derive(Debug, Clone)]
pub struct LoadGen {
    /// Parallel LLM call slots (the gate capacity being modeled).
    pub slots: usize,
    /// DRR quantum in simulated milliseconds of service demand.
    pub quantum: f64,
    pub tenants: Vec<LoadTenant>,
}

/// Per-tenant results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct TenantSim {
    pub completed: u64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    pub max_ms: f64,
    /// Useful work: total simulated service milliseconds granted.
    pub service_ms: f64,
}

/// The simulation's report: per-tenant latency distributions, the Jain
/// fairness index over weight-normalized useful work, and the horizon.
///
/// Jain is computed over the **contention window** — from time zero to the
/// earliest instant any tenant ran out of work. Outside that window a
/// work-conserving scheduler hands idle capacity to whoever still has
/// backlog (correct, not unfair), so totals over the whole run would
/// reflect offered load, not scheduling fairness.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    pub tenants: BTreeMap<String, TenantSim>,
    pub jain: f64,
    pub horizon_ms: f64,
    /// End of the contention window the Jain index was measured over.
    pub contention_ms: f64,
}

impl SimReport {
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "horizon {:.0} ms, jain fairness {:.4} (contention window {:.0} ms)\n",
            self.horizon_ms, self.jain, self.contention_ms
        ));
        for (id, t) in &self.tenants {
            out.push_str(&format!(
                "  {id}: {} answered, p50 {:.1} ms, p99 {:.1} ms, mean {:.1} ms, max {:.1} ms, {:.0} ms service\n",
                t.completed, t.p50_ms, t.p99_ms, t.mean_ms, t.max_ms, t.service_ms,
            ));
        }
        out
    }
}

struct Job {
    tenant: usize,
    arrival: f64,
    service: f64,
}

/// Nearest-rank percentile over an unsorted sample (p in [0, 100]).
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize - 1;
    samples[rank.min(samples.len() - 1)]
}

impl LoadGen {
    /// Runs the closed loop to completion on the virtual clock.
    pub fn run(&self) -> SimReport {
        let slots = self.slots.max(1);
        let mut queue: DrrQueue<Job> = DrrQueue::new(self.quantum.max(1.0));
        for t in &self.tenants {
            queue.register(&t.id, t.weight);
        }
        // Per-tenant issue counters (how many questions the tenant has
        // started, across its users) and completion targets.
        let mut issued: Vec<usize> = vec![0; self.tenants.len()];
        let targets: Vec<usize> =
            self.tenants.iter().map(|t| t.users * t.questions_per_user).collect();
        let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); self.tenants.len()];
        let mut service_done: Vec<f64> = vec![0.0; self.tenants.len()];
        // (finish, service) per completion, for windowed fairness math.
        let mut completions: Vec<Vec<(f64, f64)>> = vec![Vec::new(); self.tenants.len()];
        // Closed loop: every user starts with one in-flight question.
        for (ti, t) in self.tenants.iter().enumerate() {
            for _ in 0..t.users.min(targets[ti]) {
                let n = issued[ti];
                issued[ti] += 1;
                let service = t.profile.demand(n);
                queue.push(&t.id, service, Job { tenant: ti, arrival: 0.0, service });
            }
        }
        // In-flight jobs keyed by finish time; `slots` is small, so a
        // linear min-scan beats heap bookkeeping.
        let mut inflight: Vec<(f64, Job)> = Vec::with_capacity(slots);
        let mut now = 0.0f64;
        loop {
            while inflight.len() < slots {
                match queue.pop() {
                    Some((_, job)) => {
                        let finish = now + job.service;
                        inflight.push((finish, job));
                    }
                    None => break,
                }
            }
            if inflight.is_empty() {
                break;
            }
            let (mi, _) = inflight
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1 .0.partial_cmp(&b.1 .0).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, e)| (i, e.0))
                .unwrap_or((0, 0.0));
            let (finish, job) = inflight.swap_remove(mi);
            now = finish;
            let ti = job.tenant;
            latencies[ti].push(now - job.arrival);
            service_done[ti] += job.service;
            completions[ti].push((now, job.service));
            // The user behind this question immediately issues its next one.
            if issued[ti] < targets[ti] {
                let n = issued[ti];
                issued[ti] += 1;
                let t = &self.tenants[ti];
                let service = t.profile.demand(n);
                queue.push(&t.id, service, Job { tenant: ti, arrival: now, service });
            }
        }
        // The contention window ends when the first tenant exhausted its
        // work (its last completion); Jain over weight-normalized service
        // granted inside the window measures scheduling fairness under
        // contention, independent of offered-load asymmetry.
        let contention_end = completions
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| c.last().map(|(t, _)| *t).unwrap_or(0.0))
            .fold(f64::INFINITY, f64::min);
        let contention_end = if contention_end.is_finite() { contention_end } else { 0.0 };
        let mut report =
            SimReport { horizon_ms: now, contention_ms: contention_end, ..SimReport::default() };
        let mut alloc = Vec::new();
        for (ti, t) in self.tenants.iter().enumerate() {
            let windowed: f64 = completions[ti]
                .iter()
                .filter(|(finish, _)| *finish <= contention_end)
                .map(|(_, service)| *service)
                .sum();
            let lat = &mut latencies[ti];
            let completed = lat.len() as u64;
            let mean =
                if lat.is_empty() { 0.0 } else { lat.iter().sum::<f64>() / lat.len() as f64 };
            let max = lat.iter().cloned().fold(0.0f64, f64::max);
            let sim = TenantSim {
                completed,
                p50_ms: percentile(lat, 50.0),
                p99_ms: percentile(lat, 99.0),
                mean_ms: mean,
                max_ms: max,
                service_ms: service_done[ti],
            };
            report.tenants.insert(t.id.clone(), sim);
            alloc.push(windowed / t.weight.max(1e-9));
        }
        report.jain = jain_index(&alloc);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn admission_rejects_beyond_queue() {
        let adm = Admission::new(1, 0);
        let g = adm.enter().expect("first admit");
        match adm.enter() {
            Err(ArynError::Overloaded { active, queued }) => {
                assert_eq!(active, 1);
                assert_eq!(queued, 0);
            }
            Ok(_) => panic!("expected Overloaded, got an admit"),
            Err(other) => panic!("expected Overloaded, got {other:?}"),
        }
        drop(g);
        let _g2 = adm.enter().expect("slot freed");
    }

    #[test]
    fn admission_queue_drains_in_capacity_order() {
        let adm = Admission::new(1, 8);
        let first = adm.enter().expect("admit");
        let mut joins = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&adm);
            joins.push(thread::spawn(move || {
                let _g = a.enter().expect("queued admit");
            }));
        }
        // Wait until all four are parked in the queue, then release.
        for _ in 0..1000 {
            if adm.load().1 == 4 {
                break;
            }
            thread::yield_now();
        }
        drop(first);
        for j in joins {
            j.join().expect("queued caller completes");
        }
        assert_eq!(adm.load(), (0, 0));
    }

    #[test]
    fn loadgen_even_tenants_are_fair() {
        let gen = LoadGen {
            slots: 4,
            quantum: 100.0,
            tenants: (0..3)
                .map(|i| LoadTenant {
                    id: format!("t{i}"),
                    weight: 1.0,
                    users: 8,
                    questions_per_user: 50,
                    profile: LoadProfile::uniform(120.0),
                })
                .collect(),
        };
        let report = gen.run();
        assert!(report.jain > 0.99, "even tenants should be fair: {}", report.render());
        for t in report.tenants.values() {
            assert_eq!(t.completed, 8 * 50);
        }
    }

    #[test]
    fn loadgen_aggressor_cannot_starve_victim() {
        let solo = LoadGen {
            slots: 4,
            quantum: 100.0,
            tenants: vec![LoadTenant {
                id: "victim".into(),
                weight: 1.0,
                users: 4,
                questions_per_user: 50,
                profile: LoadProfile::uniform(100.0),
            }],
        }
        .run();
        let contested = LoadGen {
            slots: 4,
            quantum: 100.0,
            tenants: vec![
                LoadTenant {
                    id: "victim".into(),
                    weight: 1.0,
                    users: 4,
                    questions_per_user: 50,
                    profile: LoadProfile::uniform(100.0),
                },
                LoadTenant {
                    id: "aggressor".into(),
                    weight: 1.0,
                    users: 64,
                    questions_per_user: 50,
                    profile: LoadProfile::uniform(100.0),
                },
            ],
        }
        .run();
        let solo_p99 = solo.tenants["victim"].p99_ms;
        let contested_p99 = contested.tenants["victim"].p99_ms;
        // DRR halves the victim's slot share (two equal-weight tenants), so
        // its p99 may roughly double — but a 64-user storm must not push it
        // toward the aggressor's own queueing delay.
        assert!(
            contested_p99 <= solo_p99 * 4.0 + 1.0,
            "victim p99 {contested_p99} vs solo {solo_p99}:\n{}",
            contested.render()
        );
        assert!(contested.jain > 0.9, "jain {} too low:\n{}", contested.jain, contested.render());
    }

    #[test]
    fn loadgen_weights_shift_service_share() {
        let report = LoadGen {
            slots: 2,
            quantum: 100.0,
            tenants: vec![
                LoadTenant {
                    id: "gold".into(),
                    weight: 3.0,
                    users: 16,
                    questions_per_user: 40,
                    profile: LoadProfile::uniform(100.0),
                },
                LoadTenant {
                    id: "bronze".into(),
                    weight: 1.0,
                    users: 16,
                    questions_per_user: 40,
                    profile: LoadProfile::uniform(100.0),
                },
            ],
        }
        .run();
        // Weight-normalized service should be near-equal → high Jain.
        // Steady-state latency (p99, mean — p50 is polluted by the low-
        // backlog warm-up transient) should favor the heavier weight.
        assert!(report.jain > 0.9, "jain {}:\n{}", report.jain, report.render());
        assert!(
            report.tenants["gold"].p99_ms < report.tenants["bronze"].p99_ms
                && report.tenants["gold"].mean_ms < report.tenants["bronze"].mean_ms,
            "{}",
            report.render()
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&mut v, 50.0), 20.0);
        assert_eq!(percentile(&mut v, 99.0), 40.0);
        assert_eq!(percentile([].as_mut_slice(), 50.0), 0.0);
    }
}
