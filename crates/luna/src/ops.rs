//! Luna's logical query plans.
//!
//! "Luna uses an LLM to interpret a user question and decompose it to a DAG
//! of data processing operations ... The LLM generates the plan in JSON
//! format, which we translate into Sycamore code for execution" (§6.1).
//!
//! A [`Plan`] is a DAG of [`PlanNode`]s mixing traditional operators
//! (query/filter/count/aggregate/join/sort/math) with semantic operators
//! (`llmFilter`, `llmExtract`, `summarizeData`, `llmGenerate`). Plans are
//! data: they serialize to/from JSON, validate structurally, render as
//! natural language (Figure 5) and as Python-like code (Figure 6), and can
//! be edited by a human before execution.

use aryn_core::{json, obj, ArynError, Result, Value};
use std::collections::BTreeSet;

/// One plan operator.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Scan a named document store, optionally with a structured prefilter
    /// (`field`, `value` loose-equality pairs). Source node (no inputs).
    QueryDatabase {
        index: String,
        prefilter: Vec<(String, Value)>,
    },
    /// Structured filter on an existing property.
    BasicFilter { path: String, value: Value },
    /// Structured range filter on a property (inclusive bounds, either
    /// optional).
    RangeFilter {
        path: String,
        lo: Option<Value>,
        hi: Option<Value>,
    },
    /// Semantic filter via LLM. `model` optionally pins a model (the
    /// optimizer's choice); empty = executor default.
    LlmFilter { predicate: String, model: String },
    /// Query-time property extraction via LLM (the Figure 5 "LLM Extract
    /// incident root cause" node).
    LlmExtract {
        field: String,
        ftype: String,
        model: String,
    },
    /// Count rows → scalar.
    Count,
    /// Group by `key` (empty = single group) with an aggregate over `path`.
    Aggregate {
        key: String,
        func: String, // "count" | "sum" | "avg" | "min" | "max"
        path: String,
    },
    /// Sort rows by property.
    Sort { path: String, descending: bool },
    /// Top-k rows by property.
    TopK {
        path: String,
        descending: bool,
        k: usize,
    },
    /// Join two inputs on equal property values.
    Join { on: String },
    /// Arithmetic over scalar node outputs: `"100 * {out_4} / {out_2}"`.
    Math { expr: String },
    /// Expand each row with its knowledge-graph neighbours over a relation
    /// (the §1 data-integration pattern: "...and their competitors"); the
    /// neighbour ids land in the `output` property.
    GraphExpand { relation: String, output: String },
    /// Collection summarization via LLM.
    SummarizeData { instructions: String },
    /// Final natural-language answer synthesis from rows + scalars.
    LlmGenerate { question: String },
}

impl PlanOp {
    pub fn kind(&self) -> &'static str {
        match self {
            PlanOp::QueryDatabase { .. } => "queryDatabase",
            PlanOp::BasicFilter { .. } => "basicFilter",
            PlanOp::RangeFilter { .. } => "rangeFilter",
            PlanOp::LlmFilter { .. } => "llmFilter",
            PlanOp::LlmExtract { .. } => "llmExtract",
            PlanOp::Count => "count",
            PlanOp::Aggregate { .. } => "aggregate",
            PlanOp::Sort { .. } => "sort",
            PlanOp::TopK { .. } => "topK",
            PlanOp::Join { .. } => "join",
            PlanOp::Math { .. } => "math",
            PlanOp::GraphExpand { .. } => "graphExpand",
            PlanOp::SummarizeData { .. } => "summarizeData",
            PlanOp::LlmGenerate { .. } => "llmGenerate",
        }
    }

    /// How many inputs this operator requires.
    pub fn arity(&self) -> (usize, usize) {
        match self {
            PlanOp::QueryDatabase { .. } => (0, 0),
            PlanOp::Join { .. } => (2, 2),
            PlanOp::Math { .. } | PlanOp::LlmGenerate { .. } => (1, usize::MAX),
            _ => (1, 1),
        }
    }

    /// Whether the operator calls an LLM per row (cost driver for the
    /// optimizer).
    pub fn is_semantic(&self) -> bool {
        matches!(
            self,
            PlanOp::LlmFilter { .. }
                | PlanOp::LlmExtract { .. }
                | PlanOp::SummarizeData { .. }
                | PlanOp::LlmGenerate { .. }
        )
    }

    /// All operator kind names, advertised to the planner LLM.
    pub const KINDS: [&'static str; 14] = [
        "queryDatabase",
        "basicFilter",
        "rangeFilter",
        "llmFilter",
        "llmExtract",
        "count",
        "aggregate",
        "sort",
        "topK",
        "join",
        "math",
        "graphExpand",
        "summarizeData",
        "llmGenerate",
    ];
}

/// A node in the plan DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Node id; the node's output is referred to as `out_<id>`.
    pub id: usize,
    pub op: PlanOp,
    /// Ids of input nodes.
    pub inputs: Vec<usize>,
    /// Human-readable description (Luna "expresses the query plans it
    /// produces as natural language text", §6.1).
    pub description: String,
}

/// A query plan: DAG plus designated result node.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub nodes: Vec<PlanNode>,
    pub result: usize,
}

impl Plan {
    pub fn node(&self, id: usize) -> Option<&PlanNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    pub fn node_mut(&mut self, id: usize) -> Option<&mut PlanNode> {
        self.nodes.iter_mut().find(|n| n.id == id)
    }

    /// Topological order of node ids; errors on cycles or dangling inputs.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        let ids: BTreeSet<usize> = self.nodes.iter().map(|n| n.id).collect();
        let mut order = Vec::new();
        let mut placed: BTreeSet<usize> = BTreeSet::new();
        let mut remaining: Vec<&PlanNode> = self.nodes.iter().collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|n| {
                if n.inputs.iter().all(|i| placed.contains(i)) {
                    order.push(n.id);
                    placed.insert(n.id);
                    false
                } else {
                    true
                }
            });
            if remaining.len() == before {
                // No progress: cycle or dangling reference.
                for n in &remaining {
                    for i in &n.inputs {
                        if !ids.contains(i) {
                            return Err(ArynError::InvalidPlan(format!(
                                "node {} references unknown input {}",
                                n.id, i
                            )));
                        }
                    }
                }
                return Err(ArynError::InvalidPlan("plan contains a cycle".into()));
            }
        }
        Ok(order)
    }

    /// Structural validation: unique ids, valid arities, acyclic, result
    /// exists, semantic ops have non-empty parameters.
    ///
    /// Thin wrapper over [`crate::analyze::structural`], which reports the
    /// same checks as [`aryn_core::Diagnostic`]s; the first finding becomes
    /// the `InvalidPlan` message. Semantic checking (field resolution, type
    /// checking, lints) lives in [`crate::analyze::analyze`].
    pub fn validate(&self) -> Result<()> {
        match crate::analyze::structural(self).into_iter().next() {
            Some(d) => Err(ArynError::InvalidPlan(d.message)),
            None => Ok(()),
        }
    }

    // --- JSON ---------------------------------------------------------------

    /// Serializes to the JSON shape the planner LLM produces.
    pub fn to_value(&self) -> Value {
        obj! {
            "result" => self.result as i64,
            "nodes" => self
                .nodes
                .iter()
                .map(|n| {
                    let mut v = obj! {
                        "id" => n.id as i64,
                        "op" => n.op.kind(),
                        "inputs" => n.inputs.iter().map(|i| Value::Int(*i as i64)).collect::<Vec<_>>(),
                        "description" => n.description.as_str(),
                    };
                    op_params(&n.op, &mut v);
                    v
                })
                .collect::<Vec<_>>(),
        }
    }

    /// Parses a plan from the planner LLM's JSON.
    pub fn from_value(v: &Value) -> Result<Plan> {
        let nodes_v = v
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or_else(|| ArynError::InvalidPlan("missing nodes array".into()))?;
        let mut nodes = Vec::with_capacity(nodes_v.len());
        for nv in nodes_v {
            nodes.push(node_from_value(nv)?);
        }
        let result = v
            .get("result")
            .and_then(Value::as_int)
            .map(|i| i as usize)
            .or_else(|| nodes.last().map(|n| n.id))
            .ok_or_else(|| ArynError::InvalidPlan("missing result".into()))?;
        Ok(Plan { nodes, result })
    }

    /// Parses + validates from raw LLM text (lenient JSON).
    ///
    /// ```
    /// use luna::{Plan, PlanOp};
    /// let text = r#"Here is your plan:
    /// {"result": 1, "nodes": [
    ///   {"id": 0, "op": "queryDatabase", "index": "ntsb", "inputs": []},
    ///   {"id": 1, "op": "count", "inputs": [0]}
    /// ]}"#;
    /// let plan = Plan::parse(text).unwrap();
    /// assert!(matches!(plan.node(1).unwrap().op, PlanOp::Count));
    /// ```
    pub fn parse(text: &str) -> Result<Plan> {
        let v = json::parse_lenient(text)
            .map_err(|e| ArynError::InvalidPlan(format!("unparseable plan json: {e}")))?;
        let plan = Plan::from_value(&v)?;
        plan.validate()?;
        Ok(plan)
    }

    /// Natural-language rendering (the Figure 5 view).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, id) in self.topo_order().unwrap_or_default().iter().enumerate() {
            let Some(n) = self.node(*id) else { continue };
            let desc = if n.description.is_empty() {
                default_description(&n.op)
            } else {
                n.description.clone()
            };
            out.push_str(&format!("{}. [out_{}] {desc}", i + 1, n.id));
            if !n.inputs.is_empty() {
                let ins: Vec<String> = n.inputs.iter().map(|x| format!("out_{x}")).collect();
                out.push_str(&format!(" (inputs: {})", ins.join(", ")));
            }
            out.push('\n');
        }
        out
    }
}

fn default_description(op: &PlanOp) -> String {
    match op {
        PlanOp::QueryDatabase { index, .. } => format!("Scan the {index:?} index"),
        PlanOp::BasicFilter { path, value } => format!("Keep records where {path} = {value}"),
        PlanOp::RangeFilter { path, .. } => format!("Keep records where {path} is in range"),
        PlanOp::LlmFilter { predicate, .. } => format!("LLM filter: {predicate:?}"),
        PlanOp::LlmExtract { field, .. } => format!("LLM extract {field:?} from each record"),
        PlanOp::Count => "Count the records".into(),
        PlanOp::Aggregate { key, func, path } => {
            if key.is_empty() {
                format!("Compute {func} of {path}")
            } else {
                format!("Group by {key} and compute {func} of {path}")
            }
        }
        PlanOp::Sort { path, descending } => format!(
            "Sort by {path} {}",
            if *descending { "descending" } else { "ascending" }
        ),
        PlanOp::TopK { path, k, .. } => format!("Take the top {k} by {path}"),
        PlanOp::Join { on } => format!("Join the two inputs on {on}"),
        PlanOp::Math { expr } => format!("Compute {expr}"),
        PlanOp::GraphExpand { relation, .. } => {
            format!("Look up each record's {relation} neighbours in the knowledge graph")
        }
        PlanOp::SummarizeData { .. } => "Summarize the records".into(),
        PlanOp::LlmGenerate { question } => format!("Generate the answer to {question:?}"),
    }
}

fn op_params(op: &PlanOp, v: &mut Value) {
    match op {
        PlanOp::QueryDatabase { index, prefilter } => {
            v.set_path("index", Value::from(index.as_str()));
            if !prefilter.is_empty() {
                let mut m = std::collections::BTreeMap::new();
                for (k, val) in prefilter {
                    m.insert(k.clone(), val.clone());
                }
                v.set_path("prefilter", Value::Object(m));
            }
        }
        PlanOp::BasicFilter { path, value } => {
            v.set_path("path", Value::from(path.as_str()));
            v.set_path("value", value.clone());
        }
        PlanOp::RangeFilter { path, lo, hi } => {
            v.set_path("path", Value::from(path.as_str()));
            if let Some(lo) = lo {
                v.set_path("lo", lo.clone());
            }
            if let Some(hi) = hi {
                v.set_path("hi", hi.clone());
            }
        }
        PlanOp::LlmFilter { predicate, model } => {
            v.set_path("predicate", Value::from(predicate.as_str()));
            if !model.is_empty() {
                v.set_path("model", Value::from(model.as_str()));
            }
        }
        PlanOp::LlmExtract { field, ftype, model } => {
            v.set_path("field", Value::from(field.as_str()));
            v.set_path("ftype", Value::from(ftype.as_str()));
            if !model.is_empty() {
                v.set_path("model", Value::from(model.as_str()));
            }
        }
        PlanOp::Count => {}
        PlanOp::Aggregate { key, func, path } => {
            v.set_path("key", Value::from(key.as_str()));
            v.set_path("func", Value::from(func.as_str()));
            v.set_path("path", Value::from(path.as_str()));
        }
        PlanOp::Sort { path, descending } => {
            v.set_path("path", Value::from(path.as_str()));
            v.set_path("descending", Value::Bool(*descending));
        }
        PlanOp::TopK { path, descending, k } => {
            v.set_path("path", Value::from(path.as_str()));
            v.set_path("descending", Value::Bool(*descending));
            v.set_path("k", Value::Int(*k as i64));
        }
        PlanOp::Join { on } => {
            v.set_path("on", Value::from(on.as_str()));
        }
        PlanOp::Math { expr } => {
            v.set_path("expr", Value::from(expr.as_str()));
        }
        PlanOp::GraphExpand { relation, output } => {
            v.set_path("relation", Value::from(relation.as_str()));
            v.set_path("output", Value::from(output.as_str()));
        }
        PlanOp::SummarizeData { instructions } => {
            v.set_path("instructions", Value::from(instructions.as_str()));
        }
        PlanOp::LlmGenerate { question } => {
            v.set_path("question", Value::from(question.as_str()));
        }
    }
}

fn node_from_value(v: &Value) -> Result<PlanNode> {
    let id = v
        .get("id")
        .and_then(Value::as_int)
        .ok_or_else(|| ArynError::InvalidPlan("node missing id".into()))? as usize;
    let kind = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ArynError::InvalidPlan(format!("node {id} missing op")))?;
    let s = |k: &str| -> String {
        v.get(k).and_then(Value::as_str).unwrap_or("").to_string()
    };
    let op = match kind {
        "queryDatabase" => PlanOp::QueryDatabase {
            index: s("index"),
            prefilter: v
                .get("prefilter")
                .and_then(Value::as_object)
                .map(|m| m.iter().map(|(k, val)| (k.clone(), val.clone())).collect())
                .unwrap_or_default(),
        },
        "basicFilter" => PlanOp::BasicFilter {
            path: s("path"),
            value: v.get("value").cloned().unwrap_or(Value::Null),
        },
        "rangeFilter" => PlanOp::RangeFilter {
            path: s("path"),
            lo: v.get("lo").cloned(),
            hi: v.get("hi").cloned(),
        },
        "llmFilter" => PlanOp::LlmFilter {
            predicate: s("predicate"),
            model: s("model"),
        },
        "llmExtract" => PlanOp::LlmExtract {
            field: s("field"),
            ftype: {
                let t = s("ftype");
                if t.is_empty() {
                    "string".into()
                } else {
                    t
                }
            },
            model: s("model"),
        },
        "count" => PlanOp::Count,
        "aggregate" => PlanOp::Aggregate {
            key: s("key"),
            func: s("func"),
            path: s("path"),
        },
        "sort" => PlanOp::Sort {
            path: s("path"),
            descending: v.get("descending").and_then(Value::as_bool).unwrap_or(false),
        },
        "topK" => PlanOp::TopK {
            path: s("path"),
            descending: v.get("descending").and_then(Value::as_bool).unwrap_or(true),
            k: v.get("k").and_then(Value::as_int).unwrap_or(5) as usize,
        },
        "join" => PlanOp::Join { on: s("on") },
        "math" => PlanOp::Math { expr: s("expr") },
        "graphExpand" => PlanOp::GraphExpand {
            relation: s("relation"),
            output: {
                let o = s("output");
                if o.is_empty() {
                    "neighbors".into()
                } else {
                    o
                }
            },
        },
        "summarizeData" => PlanOp::SummarizeData {
            instructions: s("instructions"),
        },
        "llmGenerate" => PlanOp::LlmGenerate {
            question: s("question"),
        },
        other => {
            return Err(ArynError::InvalidPlan(format!(
                "node {id}: unknown operator {other:?}"
            )))
        }
    };
    let inputs = v
        .get("inputs")
        .and_then(Value::as_array)
        .map(|a| {
            a.iter()
                .filter_map(Value::as_int)
                .map(|i| i as usize)
                .collect()
        })
        .unwrap_or_default();
    Ok(PlanNode {
        id,
        op,
        inputs,
        description: s("description"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 5 plan.
    pub fn figure5_plan() -> Plan {
        Plan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    op: PlanOp::QueryDatabase {
                        index: "ntsb".into(),
                        prefilter: vec![],
                    },
                    inputs: vec![],
                    description: "Scan the ntsb incident reports".into(),
                },
                PlanNode {
                    id: 1,
                    op: PlanOp::LlmFilter {
                        predicate: "caused by environmental factors".into(),
                        model: String::new(),
                    },
                    inputs: vec![0],
                    description: String::new(),
                },
                PlanNode {
                    id: 2,
                    op: PlanOp::Count,
                    inputs: vec![1],
                    description: String::new(),
                },
                PlanNode {
                    id: 3,
                    op: PlanOp::LlmFilter {
                        predicate: "caused by wind".into(),
                        model: String::new(),
                    },
                    inputs: vec![0],
                    description: String::new(),
                },
                PlanNode {
                    id: 4,
                    op: PlanOp::Count,
                    inputs: vec![3],
                    description: String::new(),
                },
                PlanNode {
                    id: 5,
                    op: PlanOp::Math {
                        expr: "100 * {out_4} / {out_2}".into(),
                    },
                    inputs: vec![2, 4],
                    description: String::new(),
                },
            ],
            result: 5,
        }
    }

    #[test]
    fn json_roundtrip() {
        let p = figure5_plan();
        let v = p.to_value();
        let back = Plan::from_value(&v).unwrap();
        assert_eq!(back, p);
        // And through text + lenient parsing with chatter.
        let text = format!("Here's the plan:\n```json\n{}\n```", json::to_string_pretty(&v));
        let reparsed = Plan::parse(&text).unwrap();
        assert_eq!(reparsed, p);
    }

    #[test]
    fn validate_accepts_figure5() {
        assert!(figure5_plan().validate().is_ok());
        let order = figure5_plan().topo_order().unwrap();
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 6);
        let pos =
            |id: usize| order.iter().position(|x| *x == id).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(3) < pos(4));
        assert!(pos(2) < pos(5) && pos(4) < pos(5));
    }

    #[test]
    fn validate_rejects_malformed() {
        // Duplicate ids.
        let mut p = figure5_plan();
        p.nodes[1].id = 0;
        assert!(p.validate().is_err());
        // Dangling input.
        let mut p = figure5_plan();
        p.nodes[1].inputs = vec![99];
        assert!(p.validate().is_err());
        // Cycle.
        let mut p = figure5_plan();
        p.nodes[0].op = PlanOp::Count;
        p.nodes[0].inputs = vec![5];
        assert!(matches!(p.validate(), Err(ArynError::InvalidPlan(m)) if m.contains("cycle")));
        // Wrong arity.
        let mut p = figure5_plan();
        p.nodes[5].op = PlanOp::Join { on: "x".into() };
        p.nodes[5].inputs = vec![2];
        assert!(p.validate().is_err());
        // Missing result.
        let mut p = figure5_plan();
        p.result = 42;
        assert!(p.validate().is_err());
        // Empty predicate.
        let mut p = figure5_plan();
        p.nodes[1].op = PlanOp::LlmFilter { predicate: "  ".into(), model: String::new() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn parse_rejects_unknown_operator() {
        let text = r#"{"result": 0, "nodes": [{"id": 0, "op": "teleport", "inputs": []}]}"#;
        assert!(matches!(Plan::parse(text), Err(ArynError::InvalidPlan(_))));
    }

    #[test]
    fn describe_renders_numbered_steps() {
        let d = figure5_plan().describe();
        assert!(d.contains("1. [out_0]"));
        assert!(d.contains("environmental factors"));
        assert!(d.contains("inputs: out_2, out_4"));
        assert_eq!(d.lines().count(), 6);
    }

    #[test]
    fn missing_result_defaults_to_last_node() {
        let text = r#"{"nodes": [
            {"id": 0, "op": "queryDatabase", "index": "ntsb", "inputs": []},
            {"id": 1, "op": "count", "inputs": [0]}
        ]}"#;
        let p = Plan::parse(text).unwrap();
        assert_eq!(p.result, 1);
    }
}
