//! The plan optimizer (§6.1): "The plan optimizer makes trade-offs based on
//! cost vs efficiency ... It is able to combine and batch operations when
//! possible, and make decisions about what technique (string matching vs
//! semantic matching), and tool (e.g., GPT-4 versus Llama 7B) to use."
//!
//! Three passes, each recorded as a human-readable rewrite note:
//!
//! 1. **Structured pushdown** — an `llmFilter` whose predicate maps onto a
//!    discovered schema field ("occurred in Alaska (AK)" → `us_state_abbrev
//!    = "AK"`; "in the AI sector" → `sector = "AI"`) becomes a free
//!    `basicFilter` (string matching instead of semantic matching).
//! 2. **Filter ordering** — structured filters run before semantic ones, so
//!    the LLM sees fewer rows.
//! 3. **Model selection** — remaining semantic operators are costed against
//!    the model catalogue: lexically easy predicates route to the cheap
//!    model, hard ones (sentiment, vague phrasing) to the strong one.

use crate::ops::{Plan, PlanOp};
use crate::schema::IndexSchema;
use aryn_core::{lexicon, ArynError, Result, Value};
use aryn_llm::registry::{ModelSpec, GPT4_SIM, LLAMA7B_SIM};

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerCfg {
    pub pushdown: bool,
    pub reorder: bool,
    /// Fuse consecutive semantic filters into one batched LLM call per row
    /// (§6.1: "combine and batch operations when possible").
    pub batch_filters: bool,
    pub model_selection: bool,
    /// Minimum acceptable per-call accuracy when picking a model.
    pub min_accuracy: f64,
    /// Cross-document micro-batch width the engine will apply to surviving
    /// semantic operators (1 = off). The cost model doesn't rewrite the plan
    /// for it — packing happens at execution time — but it notes the
    /// expected call reduction so `explain_analyze` surfaces the decision.
    pub batch_max_items: usize,
    /// Set when the engine runs under a reliability policy with
    /// model-degradation ladders: the cost model notes each semantic
    /// operator's fallback route (cheaper catalogue tiers, then string
    /// matching) so `explain_analyze` shows where a degraded answer could
    /// come from before it happens.
    pub degradation_chain: bool,
    /// Remove `llmExtract` nodes whose field the [`crate::costmodel`]
    /// liveness pass proves is never read downstream (the `L27 dead-field`
    /// lint made actionable), recording before/after cost-model deltas.
    pub prune_dead_fields: bool,
}

impl Default for OptimizerCfg {
    fn default() -> Self {
        OptimizerCfg {
            pushdown: true,
            reorder: true,
            batch_filters: true,
            model_selection: true,
            min_accuracy: 0.85,
            batch_max_items: 1,
            degradation_chain: false,
            prune_dead_fields: false,
        }
    }
}

/// The result of optimization: the rewritten plan plus rewrite notes.
#[derive(Debug, Clone)]
pub struct Optimized {
    pub plan: Plan,
    pub notes: Vec<String>,
}

/// Runs all enabled passes.
///
/// Every pass output is re-checked by the semantic analyzer
/// ([`crate::analyze`]) in all build profiles — a rewrite that hallucinates
/// a field, breaks the DAG, or changes an operator's input shape is an
/// `InvalidPlan` error naming the offending pass, never a silently wrong
/// answer at runtime.
pub fn optimize(plan: &Plan, schemas: &[IndexSchema], cfg: &OptimizerCfg) -> Result<Optimized> {
    let mut plan = plan.clone();
    let mut notes = Vec::new();
    check_pass("input", &plan, schemas)?;
    if cfg.pushdown {
        pushdown(&mut plan, schemas, &mut notes);
        check_pass("pushdown", &plan, schemas)?;
    }
    if cfg.reorder {
        reorder_filters(&mut plan, &mut notes);
        check_pass("reorder", &plan, schemas)?;
    }
    if cfg.batch_filters {
        batch_filters(&mut plan, &mut notes);
        check_pass("batch", &plan, schemas)?;
    }
    if cfg.model_selection {
        select_models(&mut plan, cfg, &mut notes);
        check_pass("model-selection", &plan, schemas)?;
    }
    if cfg.prune_dead_fields {
        prune_dead(&mut plan, schemas, cfg, &mut notes);
        check_pass("prune-dead-fields", &plan, schemas)?;
    }
    if cfg.batch_max_items > 1 {
        note_batching(&plan, schemas, cfg, &mut notes);
    }
    if cfg.degradation_chain {
        note_degradation(&plan, &mut notes);
    }
    Ok(Optimized { plan, notes })
}

/// Cost-model pass for cross-document micro-batching: estimates the call
/// reduction each surviving semantic operator gets from packing up to
/// `batch_max_items` documents per call. Row counts are upper-bounded by the
/// scanned index's document count (filters only shrink the set), so the
/// estimate is a ceiling on calls and a floor on savings.
fn note_batching(plan: &Plan, schemas: &[IndexSchema], cfg: &OptimizerCfg, notes: &mut Vec<String>) {
    let index_docs = plan.nodes.iter().find_map(|n| match &n.op {
        PlanOp::QueryDatabase { index, .. } => schemas
            .iter()
            .find(|s| s.index == *index)
            .map(|s| s.doc_count),
        _ => None,
    });
    let k = cfg.batch_max_items;
    for n in &plan.nodes {
        let kind = match &n.op {
            PlanOp::LlmFilter { .. } => "llmFilter",
            PlanOp::LlmExtract { .. } => "llmExtract",
            _ => continue,
        };
        match index_docs {
            Some(rows) if rows > 0 => {
                let calls = rows.div_ceil(k);
                notes.push(format!(
                    "out_{}: {kind} micro-batches up to {k} docs/call (≤{rows} rows → ≤{calls} calls, saving ≥{})",
                    n.id,
                    rows - calls
                ));
            }
            _ => notes.push(format!(
                "out_{}: {kind} micro-batches up to {k} docs/call",
                n.id
            )),
        }
    }
}

/// Cost-model note for degradation ladders: records each semantic
/// operator's fallback route under the reliability policy — the cheaper
/// catalogue tiers its breaker/deadline failures would walk, ending at
/// string matching for `llmFilter` (a skipped extraction for `llmExtract`).
fn note_degradation(plan: &Plan, notes: &mut Vec<String>) {
    for n in &plan.nodes {
        let (kind, model, terminal) = match &n.op {
            PlanOp::LlmFilter { model, .. } => ("llmFilter", model, "string-match"),
            PlanOp::LlmExtract { model, .. } => ("llmExtract", model, "skip"),
            _ => continue,
        };
        let primary = if model.is_empty() { GPT4_SIM.name } else { model.as_str() };
        let start = aryn_llm::ALL_MODELS
            .iter()
            .position(|s| s.name == primary)
            .unwrap_or(0);
        let mut tiers: Vec<&str> = aryn_llm::ALL_MODELS[start..].iter().map(|s| s.name).collect();
        tiers.push(terminal);
        notes.push(format!(
            "out_{}: {kind} degradation ladder {} (breaker/deadline failures fall through)",
            n.id,
            tiers.join(" -> ")
        ));
    }
}

/// Pass 5 (opt-in): splice out `llmExtract` nodes whose extracted field the
/// backward liveness analysis ([`crate::costmodel::liveness`]) proves is
/// never read downstream. Extraction is 1:1 on rows, so consumers are
/// rewired to the extract's input (and `math` `{out_N}` references renamed)
/// without changing any answer; iterates to a fixed point because removing
/// one extract can orphan another's field. The note records the cost-model
/// delta so `explain_analyze` shows what the rewrite bought.
fn prune_dead(plan: &mut Plan, schemas: &[IndexSchema], cfg: &OptimizerCfg, notes: &mut Vec<String>) {
    let knobs = crate::costmodel::CostKnobs {
        batch_max_items: cfg.batch_max_items.max(1),
        ..crate::costmodel::CostKnobs::default()
    };
    let before = crate::costmodel::estimate(plan, schemas, &knobs);
    let mut pruned: Vec<(usize, String)> = Vec::new();
    loop {
        let dead = crate::costmodel::dead_extracts(plan);
        let Some(&id) = dead.first() else { break };
        let Some(node) = plan.node(id) else { break };
        let Some(&input) = node.inputs.first() else { break };
        let field = match &node.op {
            PlanOp::LlmExtract { field, .. } => field.clone(),
            _ => break,
        };
        for n in &mut plan.nodes {
            for i in &mut n.inputs {
                if *i == id {
                    *i = input;
                }
            }
            if let PlanOp::Math { expr } = &mut n.op {
                *expr = expr.replace(&format!("{{out_{id}}}"), &format!("{{out_{input}}}"));
            }
        }
        if plan.result == id {
            plan.result = input;
        }
        plan.nodes.retain(|n| n.id != id);
        pruned.push((id, field));
    }
    if pruned.is_empty() {
        return;
    }
    for (id, field) in &pruned {
        notes.push(format!(
            "out_{id}: pruned dead llmExtract field {field:?} (liveness: never read downstream)"
        ));
    }
    let after = crate::costmodel::estimate(plan, schemas, &knobs);
    notes.push(format!(
        "prune-dead-fields: predicted calls {} -> {}, tokens {} -> {}, cost {} -> {}",
        before.llm_calls.render(),
        after.llm_calls.render(),
        before.total_tokens().render(),
        after.total_tokens().render(),
        before.cost_usd.render(),
        after.cost_usd.render(),
    ));
}

/// The analyzer gate behind each pass (replaces the old `debug_assert!`,
/// which vanished in release builds).
fn check_pass(pass: &str, plan: &Plan, schemas: &[IndexSchema]) -> Result<()> {
    let analysis = crate::analyze::analyze(plan, schemas);
    if analysis.has_errors() {
        return Err(ArynError::InvalidPlan(format!(
            "optimizer pass {pass:?} produced an invalid plan:\n{}",
            analysis.render_errors()
        )));
    }
    Ok(())
}

/// Pass 1: llmFilter → basicFilter when the predicate names a schema value.
fn pushdown(plan: &mut Plan, schemas: &[IndexSchema], notes: &mut Vec<String>) {
    // Which index does this plan scan?
    let index = plan.nodes.iter().find_map(|n| match &n.op {
        PlanOp::QueryDatabase { index, .. } => Some(index.clone()),
        _ => None,
    });
    let Some(index) = index else { return };
    let Some(schema) = schemas.iter().find(|s| s.index == index) else { return };
    for n in &mut plan.nodes {
        let PlanOp::LlmFilter { predicate, .. } = &n.op else { continue };
        if let Some((path, value)) = structured_equivalent(predicate, schema) {
            notes.push(format!(
                "out_{}: pushed down llmFilter {predicate:?} to structured filter {path} = {value}",
                n.id
            ));
            n.op = PlanOp::BasicFilter { path, value };
            continue;
        }
        // Fatality predicates push to a range over the extracted count.
        if schema.field("fatal").is_some() && predicate.to_lowercase().contains("fatal") {
            notes.push(format!(
                "out_{}: pushed down llmFilter {predicate:?} to structured filter fatal >= 1",
                n.id
            ));
            n.op = PlanOp::RangeFilter {
                path: "fatal".into(),
                lo: Some(Value::Int(1)),
                hi: None,
            };
        }
    }
}

/// Maps a semantic predicate to `(field, value)` when it names a known
/// categorical value of the schema. Shared with the analyzer's
/// `semantic-pushdown` hint.
pub(crate) fn structured_equivalent(predicate: &str, schema: &IndexSchema) -> Option<(String, Value)> {
    let p = predicate.to_lowercase();
    // State mentions: "occurred in Alaska (AK)" — the planner annotates the
    // abbreviation; bare full names also resolve via the lexicon.
    if let Some(f) = schema.field("us_state_abbrev") {
        for (abbrev, full) in lexicon::US_STATES {
            if p.contains(&format!("({})", abbrev.to_lowercase()))
                || p.contains(&full.to_lowercase())
            {
                let _ = f;
                return Some(("us_state_abbrev".into(), Value::from(*abbrev)));
            }
        }
    }
    // Cause predicates: ETL already extracted cause_detail/cause_category,
    // so "caused by wind" is a string match on the extracted field — the
    // optimizer's "string matching vs semantic matching" decision (§6.1).
    if schema.field("cause_category").is_some() {
        for (cat, _) in lexicon::CAUSES {
            if p.contains(cat) || (*cat == "pilot error" && p.contains("pilot error")) {
                return Some(("cause_category".into(), Value::from(*cat)));
            }
        }
    }
    if schema.field("cause_detail").is_some() && (p.contains("caused by") || p.contains("due to")) {
        for (_, details) in lexicon::CAUSES {
            for d in *details {
                if p.contains(d) {
                    return Some(("cause_detail".into(), Value::from(*d)));
                }
            }
        }
    }
    // Sector mentions: any lexicon sector named with the word "sector".
    if schema.field("sector").is_some() {
        for name in lexicon::SECTORS {
            if p.contains(&format!("{} sector", name.to_lowercase())) {
                return Some(("sector".into(), Value::from(*name)));
            }
        }
    }
    // Guidance: "the company lowered its guidance".
    if schema.field("guidance").is_some() {
        for g in ["lowered", "raised", "maintained"] {
            if p.contains(&format!("{g} its guidance")) || p.contains(&format!("{g} guidance")) {
                return Some(("guidance".into(), Value::from(g)));
            }
        }
    }
    // CEO change.
    if schema.field("ceo_changed").is_some() && p.contains("ceo") && p.contains("chang") {
        return Some(("ceo_changed".into(), Value::Bool(true)));
    }
    // Weather flag: "caused by environmental factors" — equivalent to the
    // extracted weather_related property when ETL extracted it.
    if schema.field("weather_related").is_some()
        && (p.contains("environmental factors") || p.contains("weather related"))
    {
        return Some(("weather_related".into(), Value::Bool(true)));
    }
    // Sentiment.
    if schema.field("sentiment").is_some() {
        for s in ["positive", "negative", "neutral"] {
            if p.contains(&format!("{s} sentiment")) {
                return Some(("sentiment".into(), Value::from(s)));
            }
        }
    }
    None
}

/// Pass 2: within each linear filter chain, structured filters first.
fn reorder_filters(plan: &mut Plan, notes: &mut Vec<String>) {
    // Find chains: sequences n1 → n2 where n2.inputs == [n1.id] and both are
    // filters; bubble structured filters ahead of semantic ones by swapping
    // the ops (keeping the node wiring intact keeps the DAG valid).
    fn is_structured(op: &PlanOp) -> bool {
        matches!(op, PlanOp::BasicFilter { .. } | PlanOp::RangeFilter { .. })
    }
    fn is_filter(op: &PlanOp) -> bool {
        is_structured(op) || matches!(op, PlanOp::LlmFilter { .. })
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..plan.nodes.len() {
            let child_id = plan.nodes[i].id;
            let Some(parent_id) = (plan.nodes[i].inputs.len() == 1).then(|| plan.nodes[i].inputs[0]) else {
                continue;
            };
            let Some(parent_pos) = plan.nodes.iter().position(|n| n.id == parent_id) else { continue };
            // Only swap when the parent feeds just this child (linear chain).
            let consumers = plan
                .nodes
                .iter()
                .filter(|n| n.inputs.contains(&parent_id))
                .count();
            if consumers != 1 {
                continue;
            }
            let parent_op = plan.nodes[parent_pos].op.clone();
            let child_op = plan.nodes[i].op.clone();
            if is_filter(&parent_op)
                && is_filter(&child_op)
                && !is_structured(&parent_op)
                && is_structured(&child_op)
            {
                plan.nodes[parent_pos].op = child_op;
                plan.nodes[i].op = parent_op;
                notes.push(format!(
                    "out_{parent_id}/out_{child_id}: reordered structured filter before semantic filter"
                ));
                changed = true;
            }
        }
    }
}

/// Pass 3: fuse a linear chain `llmFilter(A) → llmFilter(B)` into a single
/// `llmFilter(A; and also B)` — half the per-row LLM calls.
fn batch_filters(plan: &mut Plan, notes: &mut Vec<String>) {
    loop {
        // Find a child llmFilter whose sole input is an llmFilter consumed
        // only by this child.
        let mut fused = None;
        for (ci, child) in plan.nodes.iter().enumerate() {
            let PlanOp::LlmFilter { .. } = &child.op else { continue };
            if child.inputs.len() != 1 {
                continue;
            }
            let parent_id = child.inputs[0];
            let Some(pi) = plan.nodes.iter().position(|n| n.id == parent_id) else { continue };
            let PlanOp::LlmFilter { .. } = &plan.nodes[pi].op else { continue };
            let consumers = plan.nodes.iter().filter(|n| n.inputs.contains(&parent_id)).count();
            if consumers == 1 {
                fused = Some((pi, ci));
                break;
            }
        }
        let Some((pi, ci)) = fused else { break };
        let (parent_pred, parent_model) = match &plan.nodes[pi].op {
            PlanOp::LlmFilter { predicate, model } => (predicate.clone(), model.clone()),
            _ => unreachable!("checked above"),
        };
        let parent_id = plan.nodes[pi].id;
        let parent_inputs = plan.nodes[pi].inputs.clone();
        {
            let child = &mut plan.nodes[ci];
            let child_id = child.id;
            if let PlanOp::LlmFilter { predicate, model } = &mut child.op {
                *predicate = format!("{parent_pred}; and also {predicate}");
                if model.is_empty() {
                    *model = parent_model;
                }
            }
            child.inputs = parent_inputs;
            notes.push(format!(
                "out_{parent_id}/out_{child_id}: batched two semantic filters into one call"
            ));
        }
        plan.nodes.remove(pi);
    }
}

/// Pass 4: pick a model per semantic operator, cheapest that clears the
/// accuracy bar for the predicate's difficulty.
fn select_models(plan: &mut Plan, cfg: &OptimizerCfg, notes: &mut Vec<String>) {
    for n in &mut plan.nodes {
        let (predicate, model_slot): (String, &mut String) = match &mut n.op {
            PlanOp::LlmFilter { predicate, model } => (predicate.clone(), model),
            PlanOp::LlmExtract { field, model, .. } => (field.clone(), model),
            _ => continue,
        };
        if !model_slot.is_empty() {
            continue; // human already pinned a model
        }
        let difficulty = predicate_difficulty(&predicate);
        let chosen = choose_model(difficulty, cfg.min_accuracy);
        *model_slot = chosen.name.to_string();
        notes.push(format!(
            "out_{}: routed {predicate:?} (difficulty {difficulty:.2}) to {}",
            n.id, chosen.name
        ));
    }
}

/// Heuristic difficulty in `[0,1]`: lexicon-anchored predicates are easy;
/// sentiment/comparison/vague phrasing is hard.
pub fn predicate_difficulty(predicate: &str) -> f64 {
    let p = predicate.to_lowercase();
    let mut d: f64 = 0.5;
    // Easy: a concrete cause/category/field term the cheap model's lexicon
    // pins down.
    let concrete = lexicon::CAUSES
        .iter()
        .flat_map(|(_, details)| details.iter())
        .any(|t| p.contains(t))
        || lexicon::CAUSES.iter().any(|(c, _)| p.contains(c))
        || p.contains("(")  // planner-annotated structured hint
        || p.contains("guidance");
    if concrete {
        d -= 0.3;
    }
    // Hard: judgment calls.
    for cue in ["sentiment", "outlook", "compare", "better", "worse", "recently", "tone"] {
        if p.contains(cue) {
            d += 0.25;
        }
    }
    if p.split_whitespace().count() > 8 {
        d += 0.1;
    }
    d.clamp(0.0, 1.0)
}

/// Expected accuracy of a model on a predicate of given difficulty.
pub fn expected_accuracy(spec: &ModelSpec, difficulty: f64) -> f64 {
    // Harder predicates erode accuracy, weaker models erode faster.
    let erosion = difficulty * (1.0 - spec.accuracy.filter) * 1.5;
    (spec.accuracy.filter - erosion).clamp(0.0, 1.0)
}

fn choose_model(difficulty: f64, min_accuracy: f64) -> &'static ModelSpec {
    // Candidates cheapest-first.
    for spec in [&LLAMA7B_SIM, &aryn_llm::GPT35_SIM, &GPT4_SIM] {
        if expected_accuracy(spec, difficulty) >= min_accuracy {
            return spec;
        }
    }
    &GPT4_SIM
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::PlanNode;
    use crate::planner::RulePlanner;
    use aryn_core::obj;
    use aryn_index::DocStore;

    fn schemas() -> Vec<IndexSchema> {
        let mut ntsb = DocStore::new();
        let mut d = aryn_core::Document::new("n1");
        d.properties = obj! {
            "us_state_abbrev" => "AK", "year" => 2019i64, "weather_related" => true,
            "cause_detail" => "wind",
        };
        ntsb.put(d);
        let mut earn = DocStore::new();
        let mut d = aryn_core::Document::new("e1");
        d.properties = obj! {
            "company" => "Apex", "sector" => "AI", "guidance" => "lowered",
            "ceo_changed" => true, "sentiment" => "negative", "growth_pct" => 1.0,
        };
        earn.put(d);
        vec![
            IndexSchema::discover("ntsb", &ntsb),
            IndexSchema::discover("earnings", &earn),
        ]
    }

    #[test]
    fn pushdown_converts_state_filter() {
        let planner = RulePlanner::new(schemas());
        let plan = planner.plan_question("How many incidents occurred in Alaska?");
        let opt = optimize(&plan, &schemas(), &OptimizerCfg::default()).unwrap();
        assert!(opt
            .plan
            .nodes
            .iter()
            .any(|n| matches!(&n.op, PlanOp::BasicFilter { path, value }
                if path == "us_state_abbrev" && value.as_str() == Some("AK"))));
        assert!(opt.notes.iter().any(|n| n.contains("pushed down")));
        opt.plan.validate().unwrap();
    }

    #[test]
    fn pushdown_respects_schema_absence() {
        // The ntsb schema has no "sector": sector predicates stay semantic.
        let plan = Plan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    op: PlanOp::QueryDatabase { index: "ntsb".into(), prefilter: vec![] },
                    inputs: vec![],
                    description: String::new(),
                },
                PlanNode {
                    id: 1,
                    op: PlanOp::LlmFilter { predicate: "in the AI sector".into(), model: String::new() },
                    inputs: vec![0],
                    description: String::new(),
                },
            ],
            result: 1,
        };
        let opt = optimize(&plan, &schemas(), &OptimizerCfg::default()).unwrap();
        assert!(matches!(&opt.plan.nodes[1].op, PlanOp::LlmFilter { .. }));
    }

    #[test]
    fn reorder_puts_structured_first() {
        // llmFilter then rangeFilter in a linear chain → swapped.
        let plan = Plan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    op: PlanOp::QueryDatabase { index: "ntsb".into(), prefilter: vec![] },
                    inputs: vec![],
                    description: String::new(),
                },
                PlanNode {
                    id: 1,
                    op: PlanOp::LlmFilter { predicate: "caused by a rare anomaly".into(), model: String::new() },
                    inputs: vec![0],
                    description: String::new(),
                },
                PlanNode {
                    id: 2,
                    op: PlanOp::RangeFilter { path: "year".into(), lo: Some(Value::Int(2019)), hi: Some(Value::Int(2019)) },
                    inputs: vec![1],
                    description: String::new(),
                },
                PlanNode { id: 3, op: PlanOp::Count, inputs: vec![2], description: String::new() },
            ],
            result: 3,
        };
        let opt = optimize(&plan, &schemas(), &OptimizerCfg::default()).unwrap();
        assert!(matches!(opt.plan.nodes[1].op, PlanOp::RangeFilter { .. }));
        assert!(matches!(opt.plan.nodes[2].op, PlanOp::LlmFilter { .. }));
        assert!(opt.notes.iter().any(|n| n.contains("reordered")));
        opt.plan.validate().unwrap();
    }

    #[test]
    fn reorder_skips_shared_scans() {
        // Figure 5: out_0 feeds two branches — no swap may move a filter
        // above the shared scan.
        let planner = RulePlanner::new(schemas());
        let plan = planner
            .plan_question("What percent of environmentally caused incidents were due to wind?");
        let opt = optimize(&plan, &schemas(), &OptimizerCfg { pushdown: false, ..OptimizerCfg::default() }).unwrap();
        assert!(matches!(&opt.plan.nodes[0].op, PlanOp::QueryDatabase { .. }));
        opt.plan.validate().unwrap();
    }

    #[test]
    fn model_selection_routes_by_difficulty() {
        let plan = Plan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    op: PlanOp::QueryDatabase { index: "earnings".into(), prefilter: vec![] },
                    inputs: vec![],
                    description: String::new(),
                },
                PlanNode {
                    id: 1,
                    op: PlanOp::LlmFilter { predicate: "caused by wind".into(), model: String::new() },
                    inputs: vec![0],
                    description: String::new(),
                },
                PlanNode {
                    id: 2,
                    op: PlanOp::LlmFilter {
                        predicate: "management's tone suggests a cautious outlook compared to last quarter".into(),
                        model: String::new(),
                    },
                    inputs: vec![1],
                    description: String::new(),
                },
            ],
            result: 2,
        };
        let models_at = |min_accuracy: f64| -> Vec<String> {
            let opt = optimize(
                &plan,
                &schemas(),
                &OptimizerCfg {
                    pushdown: false,
                    reorder: false,
                    batch_filters: false,
                    min_accuracy,
                    ..OptimizerCfg::default()
                },
            )
            .unwrap();
            opt.plan
                .nodes
                .iter()
                .filter_map(|n| match &n.op {
                    PlanOp::LlmFilter { model, .. } => Some(model.clone()),
                    _ => None,
                })
                .collect()
        };
        // At a relaxed accuracy bar, easy predicates route to the cheap
        // model while hard ones still need the strong one.
        let relaxed = models_at(0.68);
        assert_eq!(relaxed[0], "llama-7b-sim", "easy predicate → cheap model");
        assert_eq!(relaxed[1], "gpt-4-sim", "hard predicate → strong model");
        // At the strict default bar, everything needs the strong model.
        let strict = models_at(0.85);
        assert!(strict.iter().all(|m| m == "gpt-4-sim"), "{strict:?}");
    }

    #[test]
    fn pinned_models_are_respected() {
        let plan = Plan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    op: PlanOp::QueryDatabase { index: "ntsb".into(), prefilter: vec![] },
                    inputs: vec![],
                    description: String::new(),
                },
                PlanNode {
                    id: 1,
                    op: PlanOp::LlmFilter { predicate: "caused by wind".into(), model: "gpt-4-sim".into() },
                    inputs: vec![0],
                    description: String::new(),
                },
            ],
            result: 1,
        };
        let opt = optimize(&plan, &schemas(), &OptimizerCfg::default()).unwrap();
        // Pushdown may not apply ("wind" has no single structured field in
        // this schema? cause_detail exists — but predicate is causal, not
        // named; assert the model stays pinned if the filter survived).
        for n in &opt.plan.nodes {
            if let PlanOp::LlmFilter { model, .. } = &n.op {
                assert_eq!(model, "gpt-4-sim");
            }
        }
    }

    #[test]
    fn dead_extract_is_pruned_with_cost_delta() {
        // scan → extract("summary", never read) → rangeFilter(year) → count
        let plan = Plan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    op: PlanOp::QueryDatabase { index: "ntsb".into(), prefilter: vec![] },
                    inputs: vec![],
                    description: String::new(),
                },
                PlanNode {
                    id: 1,
                    op: PlanOp::LlmExtract {
                        field: "summary".into(),
                        ftype: "string".into(),
                        model: String::new(),
                    },
                    inputs: vec![0],
                    description: String::new(),
                },
                PlanNode {
                    id: 2,
                    op: PlanOp::RangeFilter {
                        path: "year".into(),
                        lo: Some(Value::Int(2019)),
                        hi: None,
                    },
                    inputs: vec![1],
                    description: String::new(),
                },
                PlanNode { id: 3, op: PlanOp::Count, inputs: vec![2], description: String::new() },
            ],
            result: 3,
        };
        let cfg = OptimizerCfg { prune_dead_fields: true, ..OptimizerCfg::default() };
        let opt = optimize(&plan, &schemas(), &cfg).unwrap();
        assert!(
            !opt.plan.nodes.iter().any(|n| matches!(n.op, PlanOp::LlmExtract { .. })),
            "dead extract should be spliced out: {:?}",
            opt.plan
        );
        // The filter now reads the scan directly.
        let filt = opt
            .plan
            .nodes
            .iter()
            .find(|n| matches!(n.op, PlanOp::RangeFilter { .. }))
            .unwrap();
        assert_eq!(filt.inputs, vec![0]);
        assert!(opt.notes.iter().any(|n| n.contains("pruned dead llmExtract")));
        assert!(opt.notes.iter().any(|n| n.contains("prune-dead-fields: predicted calls")));
        opt.plan.validate().unwrap();
        // Off by default: the extract survives.
        let off = optimize(&plan, &schemas(), &OptimizerCfg::default()).unwrap();
        assert!(off.plan.nodes.iter().any(|n| matches!(n.op, PlanOp::LlmExtract { .. })));
    }

    #[test]
    fn live_extract_is_not_pruned() {
        // The filter reads the extracted field — pruning would change the
        // answer, so the pass must leave the plan alone.
        let plan = Plan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    op: PlanOp::QueryDatabase { index: "ntsb".into(), prefilter: vec![] },
                    inputs: vec![],
                    description: String::new(),
                },
                PlanNode {
                    id: 1,
                    op: PlanOp::LlmExtract {
                        field: "cause_detail".into(),
                        ftype: "string".into(),
                        model: String::new(),
                    },
                    inputs: vec![0],
                    description: String::new(),
                },
                PlanNode {
                    id: 2,
                    op: PlanOp::BasicFilter {
                        path: "cause_detail".into(),
                        value: Value::from("wind"),
                    },
                    inputs: vec![1],
                    description: String::new(),
                },
                PlanNode { id: 3, op: PlanOp::Count, inputs: vec![2], description: String::new() },
            ],
            result: 3,
        };
        let cfg = OptimizerCfg { prune_dead_fields: true, ..OptimizerCfg::default() };
        let opt = optimize(&plan, &schemas(), &cfg).unwrap();
        assert!(opt.plan.nodes.iter().any(|n| matches!(n.op, PlanOp::LlmExtract { .. })));
        assert!(opt.notes.iter().all(|n| !n.contains("pruned dead")));
    }

    #[test]
    fn difficulty_ordering() {
        assert!(predicate_difficulty("caused by wind") < predicate_difficulty("carries a negative sentiment"));
        assert!(expected_accuracy(&GPT4_SIM, 0.9) > expected_accuracy(&LLAMA7B_SIM, 0.9));
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::ops::PlanNode;

    fn chain_plan() -> Plan {
        Plan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    op: PlanOp::QueryDatabase { index: "ntsb".into(), prefilter: vec![] },
                    inputs: vec![],
                    description: String::new(),
                },
                PlanNode {
                    id: 1,
                    op: PlanOp::LlmFilter { predicate: "mentions strong gusts".into(), model: String::new() },
                    inputs: vec![0],
                    description: String::new(),
                },
                PlanNode {
                    id: 2,
                    op: PlanOp::LlmFilter { predicate: "the airplane was damaged".into(), model: String::new() },
                    inputs: vec![1],
                    description: String::new(),
                },
                PlanNode { id: 3, op: PlanOp::Count, inputs: vec![2], description: String::new() },
            ],
            result: 3,
        }
    }

    #[test]
    fn consecutive_semantic_filters_fuse() {
        let cfg = OptimizerCfg {
            pushdown: false,
            reorder: false,
            model_selection: false,
            ..OptimizerCfg::default()
        };
        let opt = optimize(&chain_plan(), &[], &cfg).unwrap();
        opt.plan.validate().unwrap();
        let filters: Vec<&PlanOp> = opt
            .plan
            .nodes
            .iter()
            .filter(|n| matches!(n.op, PlanOp::LlmFilter { .. }))
            .map(|n| &n.op)
            .collect();
        assert_eq!(filters.len(), 1, "two filters fused into one");
        match filters[0] {
            PlanOp::LlmFilter { predicate, .. } => {
                assert!(predicate.contains("; and also "), "{predicate}");
                assert!(predicate.contains("gusts") && predicate.contains("damaged"));
            }
            _ => unreachable!(),
        }
        assert!(opt.notes.iter().any(|n| n.contains("batched")));
        // Count still reads from the fused filter.
        let count = opt.plan.nodes.iter().find(|n| matches!(n.op, PlanOp::Count)).unwrap();
        let fused_id = opt
            .plan
            .nodes
            .iter()
            .find(|n| matches!(n.op, PlanOp::LlmFilter { .. }))
            .unwrap()
            .id;
        assert_eq!(count.inputs, vec![fused_id]);
    }

    #[test]
    fn shared_branches_do_not_fuse() {
        // Figure 5: both filters read the shared scan; fusing them would
        // change semantics. The batching pass must leave them alone.
        let planner = crate::planner::RulePlanner::new(vec![]);
        let _ = planner; // (Figure 5 shape built directly)
        let mut plan = chain_plan();
        // Re-wire: both filters read the scan, a second count reads filter 1.
        plan.nodes[2].inputs = vec![0];
        plan.nodes.push(PlanNode {
            id: 4,
            op: PlanOp::Count,
            inputs: vec![1],
            description: String::new(),
        });
        let cfg = OptimizerCfg {
            pushdown: false,
            reorder: false,
            model_selection: false,
            ..OptimizerCfg::default()
        };
        let opt = optimize(&plan, &[], &cfg).unwrap();
        let n_filters = opt
            .plan
            .nodes
            .iter()
            .filter(|n| matches!(n.op, PlanOp::LlmFilter { .. }))
            .count();
        assert_eq!(n_filters, 2, "parallel branches must not fuse");
    }

    #[test]
    fn micro_batching_cost_model_notes_call_reduction() {
        let mut store = aryn_index::DocStore::new();
        for i in 0..10 {
            let mut d = aryn_core::Document::new(format!("n{i}"));
            d.properties = aryn_core::obj! { "us_state_abbrev" => "AK" };
            store.put(d);
        }
        let schemas = vec![crate::schema::IndexSchema::discover("ntsb", &store)];
        let cfg = OptimizerCfg {
            pushdown: false,
            reorder: false,
            batch_filters: false,
            model_selection: false,
            batch_max_items: 4,
            ..OptimizerCfg::default()
        };
        let opt = optimize(&chain_plan(), &schemas, &cfg).unwrap();
        // 10 rows at ≤4 docs/call → ≤3 calls, saving ≥7; one note per
        // semantic operator.
        let batch_notes: Vec<&String> = opt
            .notes
            .iter()
            .filter(|n| n.contains("micro-batches"))
            .collect();
        assert_eq!(batch_notes.len(), 2, "{:?}", opt.notes);
        assert!(batch_notes[0].contains("≤10 rows → ≤3 calls, saving ≥7"));
        // Off by default: no notes.
        let off = optimize(&chain_plan(), &schemas, &OptimizerCfg {
            pushdown: false,
            reorder: false,
            batch_filters: false,
            model_selection: false,
            ..OptimizerCfg::default()
        })
        .unwrap();
        assert!(off.notes.iter().all(|n| !n.contains("micro-batches")));
    }

    #[test]
    fn batched_predicate_semantics_are_conjunctive() {
        let text = "The airplane was substantially damaged after strong gusts hit on final.";
        assert!(aryn_llm::semantics::eval_predicate(
            "mentions strong gusts; and also the airplane was damaged",
            text
        ));
        assert!(!aryn_llm::semantics::eval_predicate(
            "mentions strong gusts; and also the pilot was a student",
            text
        ));
    }
}
