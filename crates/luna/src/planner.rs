//! The query planner: natural language → plan JSON.
//!
//! [`RulePlanner`] is the simulated planner-LLM's brain: a rule grammar over
//! analytic question shapes (percent-of, count, average/total, top-k,
//! group-by-most, list, describe). It registers as an [`aryn_llm::TaskEngine`]
//! for the `plan` task, so planning flows through the same LLM API as every
//! other call — prompt in, JSON text out, subject to the model's error model
//! (a weak model truncates plans; Luna's validator catches it and re-asks).
//!
//! Like its real counterpart, the grammar has blind spots: negated
//! predicates lose their negation, and "compare A and B" questions keep only
//! A. The §6 micro-benchmark's incorrect/plausible answers come from these
//! misinterpretations, which is exactly the failure mode the paper reports
//! ("the intention of certain ambiguous questions was misinterpreted by the
//! query planner").

use crate::ops::{Plan, PlanNode, PlanOp};
use crate::schema::IndexSchema;
use aryn_core::{json, lexicon, Value};
use aryn_llm::mock::{EngineCtx, TaskEngine};
use aryn_llm::prompt::ParsedTask;
use aryn_llm::registry::TaskKind;

/// Rule-based planner over discovered index schemas.
#[derive(Debug, Clone)]
pub struct RulePlanner {
    pub schemas: Vec<IndexSchema>,
}

impl RulePlanner {
    pub fn new(schemas: Vec<IndexSchema>) -> RulePlanner {
        RulePlanner { schemas }
    }

    /// Picks the target index from question vocabulary.
    fn pick_index(&self, q: &str) -> &IndexSchema {
        let ql = q.to_lowercase();
        let ntsb_cues = ["incident", "accident", "crash", "ntsb", "aircraft", "aviation", "pilot"];
        let earn_cues = [
            "company", "companies", "revenue", "earnings", "ceo", "sector", "guidance", "growth",
            "eps", "quarter", "market",
        ];
        let score = |cues: &[&str]| cues.iter().filter(|c| ql.contains(*c)).count();
        let ntsb = score(&ntsb_cues);
        let earn = score(&earn_cues);
        let want = if earn > ntsb { "earnings" } else { "ntsb" };
        self.schemas
            .iter()
            .find(|s| s.index == want)
            .unwrap_or(&self.schemas[0])
    }

    /// Plans a question. Always returns *some* plan; misinterpretations show
    /// up as subtly wrong plans, not errors.
    pub fn plan_question(&self, question: &str) -> Plan {
        let schema = self.pick_index(question);
        let ql = question.to_lowercase();
        let ql = ql.trim_end_matches(['?', '.', '!']).to_string();

        // Data-integration suffix (§1: "...and their competitors"): plan the
        // base question, then append a knowledge-graph expansion before the
        // final generation step.
        for (suffix, relation, output) in [
            (" and their competitors", "competitor_of", "competitors"),
            (" and their competition", "competitor_of", "competitors"),
        ] {
            if let Some(base_q) = ql.strip_suffix(suffix) {
                let plan = self.plan_question(base_q);
                return graft_graph_expand(plan, relation, output, question);
            }
        }

        let mut b = PlanBuilder::new(schema.index.clone());

        // --- "what percent of <A> were <B>" (Figure 5 shape) ---------------
        if let Some(rest) = strip_prefixes(&ql, &["what percent of ", "what percentage of "]) {
            if let Some((a_clause, sep, b_clause)) = split_once_any_with_sep(
                rest,
                &[" were due to ", " were caused by ", " were ", " involved ", " are "],
            ) {
                let base = b.scan();
                let denom_f = b.filter_from_clause(schema, base, a_clause);
                let denom = b.count(denom_f);
                // Causal separators keep their framing ("due to wind" →
                // "caused by wind", not a bare keyword match).
                let b_clause_framed = if sep.contains("due to") || sep.contains("caused by") {
                    format!("caused by {b_clause}")
                } else {
                    b_clause.to_string()
                };
                // Faithful to the paper's plan: the numerator filters the
                // base scan by B (assuming B ⊆ A).
                let num_f = b.filter_from_clause(schema, base, &b_clause_framed);
                let num = b.count(num_f);
                let result = b.math(&format!("100 * {{out_{num}}} / {{out_{denom}}}"), vec![denom, num]);
                return b.finish(result);
            }
        }

        // --- "how many ..." -------------------------------------------------
        if let Some(rest) = strip_prefixes(&ql, &["how many "]) {
            let base = b.scan();
            let filtered = b.filter_from_clause(schema, base, rest);
            let result = b.count(filtered);
            return b.finish(result);
        }

        // --- "average/mean/total <field> ..." -------------------------------
        for (cue, func) in [
            ("average ", "avg"),
            ("mean ", "avg"),
            ("total ", "sum"),
            ("median ", "avg"), // blind spot: median approximated by avg
        ] {
            if let Some(pos) = ql.find(&format!("what is the {cue}")).map(|p| p + 12 + cue.len())
                .or_else(|| ql.find(&format!("what was the {cue}")).map(|p| p + 13 + cue.len()))
                .or_else(|| ql.strip_prefix(cue).map(|_| cue.len()))
            {
                let rest = &ql[pos..];
                // "<field mention> of|for <filter clause>" or just field.
                let (field_mention, filter_clause) =
                    split_once_any(rest, &[" of companies ", " of incidents ", " for ", " of ", " across "])
                        .map(|(f, c)| (f, Some(c)))
                        .unwrap_or((rest, None));
                let field = schema
                    .resolve_field(field_mention)
                    .map(|f| f.path.clone())
                    .unwrap_or_else(|| field_mention.trim().replace(' ', "_"));
                let base = b.scan();
                let filtered = match filter_clause {
                    Some(c) => b.filter_from_clause(schema, base, c),
                    None => base,
                };
                let result = b.push(
                    PlanOp::Aggregate {
                        key: String::new(),
                        func: func.into(),
                        path: field,
                    },
                    vec![filtered],
                );
                return b.finish(result);
            }
        }

        // --- "what was the most common <field>" (group-by count over a
        //     possibly query-time-extracted field — Figure 5's "LLM Extract
        //     incident root cause" shape) -------------------------------------
        if let Some(field_mention) = strip_prefixes(
            &ql,
            &["what was the most common ", "what is the most common ", "most common "],
        ) {
            let field_mention = field_mention
                .trim_end_matches(" of incidents")
                .trim_end_matches(" of companies");
            let base = b.scan();
            // Resolve against the schema; if absent, extract at query time.
            let (input, field) = match schema.resolve_field(field_mention) {
                Some(f) => (base, f.path.clone()),
                None => {
                    let field = field_mention.trim().replace(' ', "_");
                    let extracted = b.push(
                        PlanOp::LlmExtract {
                            field: field.clone(),
                            ftype: "string".into(),
                            model: String::new(),
                        },
                        vec![base],
                    );
                    (extracted, field)
                }
            };
            let grouped = b.push(
                PlanOp::Aggregate {
                    key: field,
                    func: "count".into(),
                    path: String::new(),
                },
                vec![input],
            );
            let top = b.push(
                PlanOp::TopK {
                    path: "count".into(),
                    descending: true,
                    k: 1,
                },
                vec![grouped],
            );
            let result = b.push(
                PlanOp::LlmGenerate {
                    question: question.to_string(),
                },
                vec![top],
            );
            return b.finish(result);
        }

        // --- "which <entity> had the most <things>" (group-by count) -------
        if let Some((entity_mention, _rest)) = which_most(&ql) {
            let base = b.scan();
            // Group by the entity field and count; take the top group.
            let entity = schema
                .resolve_field(entity_mention)
                .map(|f| f.path.clone())
                .unwrap_or_else(|| entity_mention.trim().replace(' ', "_"));
            let grouped = b.push(
                PlanOp::Aggregate {
                    key: entity,
                    func: "count".into(),
                    path: String::new(),
                },
                vec![base],
            );
            let top = b.push(
                PlanOp::TopK {
                    path: "count".into(),
                    descending: true,
                    k: 1,
                },
                vec![grouped],
            );
            let result = b.push(
                PlanOp::LlmGenerate {
                    question: question.to_string(),
                },
                vec![top],
            );
            return b.finish(result);
        }

        // --- "which/what <entity> had the highest <field>" (top-k) ----------
        if let Some((field_mention, filter_clause, k, descending)) = superlative(&ql) {
            let field = schema
                .resolve_field(field_mention)
                .map(|f| f.path.clone())
                .unwrap_or_else(|| field_mention.trim().replace(' ', "_"));
            let base = b.scan();
            let filtered = match filter_clause {
                Some(c) => b.filter_from_clause(schema, base, c),
                None => base,
            };
            let top = b.push(
                PlanOp::TopK {
                    path: field,
                    descending,
                    k,
                },
                vec![filtered],
            );
            let result = b.push(
                PlanOp::LlmGenerate {
                    question: question.to_string(),
                },
                vec![top],
            );
            return b.finish(result);
        }

        // --- "list ..." ------------------------------------------------------
        if let Some(rest) = strip_prefixes(&ql, &["list ", "show ", "give me ", "which companies ", "which incidents "]) {
            let base = b.scan();
            let filtered = b.filter_from_clause(schema, base, rest);
            let result = b.push(
                PlanOp::LlmGenerate {
                    question: question.to_string(),
                },
                vec![filtered],
            );
            return b.finish(result);
        }

        // --- "summarize ..." --------------------------------------------------
        if ql.starts_with("summarize") || ql.contains("overview") {
            let base = b.scan();
            let rest = ql.strip_prefix("summarize ").unwrap_or(&ql);
            let filtered = b.filter_from_clause(schema, base, rest);
            let result = b.push(
                PlanOp::SummarizeData {
                    instructions: question.to_string(),
                },
                vec![filtered],
            );
            return b.finish(result);
        }

        // --- fallback: filter by whatever clauses we find, then generate -----
        let base = b.scan();
        let filtered = b.filter_from_clause(schema, base, &ql);
        let result = b.push(
            PlanOp::LlmGenerate {
                question: question.to_string(),
            },
            vec![filtered],
        );
        b.finish(result)
    }
}

/// Incremental plan construction.
struct PlanBuilder {
    index: String,
    nodes: Vec<PlanNode>,
}

impl PlanBuilder {
    fn new(index: String) -> PlanBuilder {
        PlanBuilder {
            index,
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, op: PlanOp, inputs: Vec<usize>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(PlanNode {
            id,
            op,
            inputs,
            description: String::new(),
        });
        id
    }

    fn scan(&mut self) -> usize {
        // Reuse an existing scan of the same index (shared DAG input, as in
        // Figure 5 where out_0 feeds both branches).
        if let Some(existing) = self.nodes.iter().find(
            |n| matches!(&n.op, PlanOp::QueryDatabase { index, .. } if *index == self.index),
        ) {
            return existing.id;
        }
        let index = self.index.clone();
        self.push(
            PlanOp::QueryDatabase {
                index,
                prefilter: vec![],
            },
            vec![],
        )
    }

    fn count(&mut self, input: usize) -> usize {
        self.push(PlanOp::Count, vec![input])
    }

    fn math(&mut self, expr: &str, inputs: Vec<usize>) -> usize {
        self.push(
            PlanOp::Math {
                expr: expr.to_string(),
            },
            inputs,
        )
    }

    /// Extracts filters from a clause and chains them after `input`.
    /// Emits semantic (llmFilter) predicates — converting them to cheap
    /// structured filters is the optimizer's job, not the planner's.
    fn filter_from_clause(&mut self, schema: &IndexSchema, input: usize, clause: &str) -> usize {
        let mut cur = input;
        let c = clause.to_lowercase();
        let mut matched_any = false;

        // Report-id mentions ("incident ntsb-00012") become exact id
        // lookups on the `_id` pseudo-field — no LLM needed.
        for word in c.split_whitespace() {
            let w = word.trim_matches(|ch: char| !ch.is_ascii_alphanumeric() && ch != '-');
            if let Some((prefix, digits)) = w.split_once('-') {
                if !prefix.is_empty()
                    && prefix.chars().all(|ch| ch.is_ascii_alphabetic())
                    && digits.len() >= 3
                    && digits.chars().all(|ch| ch.is_ascii_digit())
                {
                    cur = self.push(
                        PlanOp::BasicFilter {
                            path: "_id".into(),
                            value: Value::from(w),
                        },
                        vec![cur],
                    );
                    matched_any = true;
                }
            }
        }

        // Causal predicates ("caused by X", "due to X").
        for marker in ["caused by ", "due to ", "attributed to "] {
            if let Some(pos) = c.find(marker) {
                let tail: String = c[pos + marker.len()..]
                    .split([',', '.'])
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                if !tail.is_empty() {
                    cur = self.push(
                        PlanOp::LlmFilter {
                            predicate: format!("caused by {tail}"),
                            model: String::new(),
                        },
                        vec![cur],
                    );
                    matched_any = true;
                }
                break;
            }
        }
        // "environmentally caused" adjective form.
        if !matched_any && (c.contains("environmentally caused") || c.contains("weather related") || c.contains("weather-related")) {
            cur = self.push(
                PlanOp::LlmFilter {
                    predicate: "caused by environmental factors".into(),
                    model: String::new(),
                },
                vec![cur],
            );
            matched_any = true;
        }

        // Location: "in <State>" (full names only; abbreviations are too
        // ambiguous in prose).
        for (abbrev, full) in lexicon::US_STATES {
            if c.contains(&format!("in {}", full.to_lowercase())) {
                cur = self.push(
                    PlanOp::LlmFilter {
                        predicate: format!("occurred in {full} ({abbrev})"),
                        model: String::new(),
                    },
                    vec![cur],
                );
                matched_any = true;
                break;
            }
        }

        // Year mentions → structured range filter (time is structured even
        // for the planner; embedding-based systems cannot do this, §2).
        // "between 2018 and 2020" / "from 2018 to 2020" bound a range;
        // "since 2019" / "after 2019" / "before 2021" are half-open; a bare
        // year is an exact match.
        let years: Vec<i64> = c
            .split(|ch: char| !ch.is_ascii_digit())
            .filter(|w| w.len() == 4)
            .filter_map(|w| w.parse::<i64>().ok())
            .filter(|y| (1990..2050).contains(y))
            .collect();
        if !years.is_empty() && schema.field("year").is_some() {
            let (lo, hi) = if years.len() >= 2 && (c.contains("between") || c.contains(" to ") || c.contains("from")) {
                let a = years[0].min(years[1]);
                let b = years[0].max(years[1]);
                (Some(a), Some(b))
            } else if c.contains("since") || c.contains("after") || c.contains("starting") {
                (Some(years[0]), None)
            } else if c.contains("before") || c.contains("until") || c.contains("prior to") {
                (None, Some(years[0] - 1))
            } else {
                (Some(years[0]), Some(years[0]))
            };
            cur = self.push(
                PlanOp::RangeFilter {
                    path: "year".into(),
                    lo: lo.map(Value::Int),
                    hi: hi.map(Value::Int),
                },
                vec![cur],
            );
            matched_any = true;
        }

        // Sector mentions (word-boundary aware so "AI market" matches the
        // AI sector but "air" does not).
        for sector in lexicon::SECTORS {
            if c.contains(&format!("{} sector", sector.to_lowercase()))
                || c.contains(&format!("in {}", sector.to_lowercase()))
                || ((c.contains("market") || c.contains("industry"))
                    && aryn_core::text::contains_term(&c, sector))
            {
                cur = self.push(
                    PlanOp::LlmFilter {
                        predicate: format!("in the {sector} sector"),
                        model: String::new(),
                    },
                    vec![cur],
                );
                matched_any = true;
                break;
            }
        }

        // CEO change.
        if c.contains("ceo") && (c.contains("chang") || c.contains("new ceo") || c.contains("recently")) {
            cur = self.push(
                PlanOp::LlmFilter {
                    predicate: "the CEO changed recently".into(),
                    model: String::new(),
                },
                vec![cur],
            );
            matched_any = true;
        }

        // Guidance.
        for g in ["lowered", "raised", "maintained"] {
            if c.contains(&format!("{g} their guidance")) || c.contains(&format!("{g} guidance")) {
                cur = self.push(
                    PlanOp::LlmFilter {
                        predicate: format!("the company {g} its guidance"),
                        model: String::new(),
                    },
                    vec![cur],
                );
                matched_any = true;
                break;
            }
        }

        // Sentiment.
        for s in ["negative", "positive"] {
            if c.contains(&format!("{s} sentiment")) || c.contains(&format!("{s} outlook")) {
                cur = self.push(
                    PlanOp::LlmFilter {
                        predicate: format!("carries a {s} sentiment"),
                        model: String::new(),
                    },
                    vec![cur],
                );
                matched_any = true;
                break;
            }
        }

        // Fatalities. BLIND SPOT: negation ("no fatalities", "without") is
        // not modelled — the filter keeps the positive sense.
        if c.contains("fatal") {
            cur = self.push(
                PlanOp::LlmFilter {
                    predicate: "involved a fatality".into(),
                    model: String::new(),
                },
                vec![cur],
            );
            matched_any = true;
        }

        // Revenue decline / growth qualifiers.
        if c.contains("declin") || c.contains("shrink") || c.contains("negative growth") {
            if let Some(f) = schema.field("growth_pct") {
                let _ = f;
                cur = self.push(
                    PlanOp::RangeFilter {
                        path: "growth_pct".into(),
                        lo: None,
                        hi: Some(Value::Float(0.0)),
                    },
                    vec![cur],
                );
                matched_any = true;
            }
        }

        // Nothing recognized: fall back to one semantic filter over the raw
        // clause, unless the clause is a bare entity word ("incidents").
        if !matched_any {
            let content: Vec<String> = aryn_core::text::analyze(&c)
                .into_iter()
                .filter(|t| !matches!(t.as_str(), "incid" | "company" | "companie" | "report" | "occur" | "all"))
                .collect();
            if !content.is_empty() {
                cur = self.push(
                    PlanOp::LlmFilter {
                        predicate: clause.trim().to_string(),
                        model: String::new(),
                    },
                    vec![cur],
                );
            }
        }
        cur
    }

    fn finish(mut self, result: usize) -> Plan {
        for n in &mut self.nodes {
            n.description = String::new();
        }
        Plan {
            nodes: self.nodes,
            result,
        }
    }
}

/// Inserts a `graphExpand` node before the plan's generation step (or at
/// the result if there is none), re-targeting the final answer.
fn graft_graph_expand(mut plan: Plan, relation: &str, output: &str, question: &str) -> Plan {
    let new_id = plan.nodes.iter().map(|n| n.id).max().unwrap_or(0) + 1;
    let gen_pos = plan
        .nodes
        .iter()
        .position(|n| matches!(n.op, PlanOp::LlmGenerate { .. }));
    match gen_pos {
        Some(pos) => {
            // generate(X) becomes generate(expand(X)).
            let gen_inputs = plan.nodes[pos].inputs.clone();
            plan.nodes.insert(
                pos,
                PlanNode {
                    id: new_id,
                    op: PlanOp::GraphExpand {
                        relation: relation.to_string(),
                        output: output.to_string(),
                    },
                    inputs: gen_inputs,
                    description: String::new(),
                },
            );
            plan.nodes[pos + 1].inputs = vec![new_id];
            if let PlanOp::LlmGenerate { question: q } = &mut plan.nodes[pos + 1].op {
                *q = question.to_string();
            }
        }
        None => {
            // Row-valued result: expand it and generate from the expansion.
            let result = plan.result;
            plan.nodes.push(PlanNode {
                id: new_id,
                op: PlanOp::GraphExpand {
                    relation: relation.to_string(),
                    output: output.to_string(),
                },
                inputs: vec![result],
                description: String::new(),
            });
            plan.nodes.push(PlanNode {
                id: new_id + 1,
                op: PlanOp::LlmGenerate {
                    question: question.to_string(),
                },
                inputs: vec![new_id],
                description: String::new(),
            });
            plan.result = new_id + 1;
        }
    }
    plan
}

fn strip_prefixes<'a>(s: &'a str, prefixes: &[&str]) -> Option<&'a str> {
    prefixes.iter().find_map(|p| s.strip_prefix(p))
}

fn split_once_any_with_sep<'a, 'b>(
    s: &'a str,
    seps: &[&'b str],
) -> Option<(&'a str, &'b str, &'a str)> {
    let mut best: Option<(usize, &'b str)> = None;
    for sep in seps {
        if let Some(pos) = s.find(sep) {
            if best.is_none_or(|(p, _)| pos < p) {
                best = Some((pos, sep));
            }
        }
    }
    best.map(|(pos, sep)| (&s[..pos], sep, &s[pos + sep.len()..]))
}

fn split_once_any<'a>(s: &'a str, seps: &[&str]) -> Option<(&'a str, &'a str)> {
    // Earliest separator occurrence wins.
    let mut best: Option<(usize, &str)> = None;
    for sep in seps {
        if let Some(pos) = s.find(sep) {
            if best.is_none_or(|(p, _)| pos < p) {
                best = Some((pos, sep));
            }
        }
    }
    best.map(|(pos, sep)| (&s[..pos], &s[pos + sep.len()..]))
}

/// Matches "which/what <entity> had/has the most <things>".
fn which_most(q: &str) -> Option<(&str, &str)> {
    let rest = strip_prefixes(q, &["which ", "what "])?;
    let (entity, tail) = split_once_any(rest, &[" had the most ", " has the most ", " have the most ", " with the most "])?;
    Some((entity, tail))
}

/// Matches superlative field questions: "which company had the highest
/// revenue ...", "the fastest growing companies ...", "lowest eps".
/// Returns `(field mention, optional filter clause, k, descending)`.
fn superlative(q: &str) -> Option<(&str, Option<&str>, usize, bool)> {
    for (cue, desc) in [
        ("highest ", true),
        ("largest ", true),
        ("biggest ", true),
        ("lowest ", false),
        ("smallest ", false),
        ("worst ", false),
        ("best ", true),
    ] {
        if let Some(pos) = q.find(cue) {
            let rest = &q[pos + cue.len()..];
            let (field, clause) = split_once_any(rest, &[" in ", " among ", " for ", " of "])
                .map(|(f, c)| (f, Some(c)))
                .unwrap_or((rest, None));
            return Some((field, clause, 1, desc));
        }
    }
    // "fastest growing companies [in the X market/sector]".
    if let Some(pos) = q.find("fastest growing") {
        let rest = &q[pos..];
        let clause = split_once_any(rest, &[" in the ", " in "]).map(|(_, c)| c);
        return Some(("growth", clause, 5, true));
    }
    None
}

/// The TaskEngine adapter: makes the rule planner the simulated LLM's
/// `plan`-task brain.
pub struct PlannerEngine {
    planner: RulePlanner,
}

impl PlannerEngine {
    pub fn new(planner: RulePlanner) -> PlannerEngine {
        PlannerEngine { planner }
    }
}

impl TaskEngine for PlannerEngine {
    fn kind(&self) -> TaskKind {
        TaskKind::Plan
    }

    fn run(&self, task: &ParsedTask, _ctx: &EngineCtx<'_>) -> Option<String> {
        let question = task.params.get("question").and_then(Value::as_str)?;
        let plan = self.planner.plan_question(question);
        Some(json::to_string_pretty(&plan.to_value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_core::obj;
    use aryn_index::DocStore;

    fn schemas() -> Vec<IndexSchema> {
        let mut ntsb = DocStore::new();
        let mut d = aryn_core::Document::new("n1");
        d.properties = obj! {
            "us_state_abbrev" => "AK", "year" => 2019i64, "cause_category" => "environmental",
            "cause_detail" => "wind", "fatal" => 0i64, "weather_related" => true,
        };
        ntsb.put(d);
        let mut earn = DocStore::new();
        let mut d = aryn_core::Document::new("e1");
        d.properties = obj! {
            "company" => "Apex Robotics", "sector" => "AI", "growth_pct" => 12.0,
            "revenue_musd" => 100.0, "ceo_changed" => true, "guidance" => "raised",
            "sentiment" => "positive", "year" => 2024i64,
        };
        earn.put(d);
        vec![
            IndexSchema::discover("ntsb", &ntsb),
            IndexSchema::discover("earnings", &earn),
        ]
    }

    fn planner() -> RulePlanner {
        RulePlanner::new(schemas())
    }

    #[test]
    fn figure5_question_produces_figure5_shape() {
        let p = planner().plan_question("What percent of environmentally caused incidents were due to wind?");
        p.validate().unwrap();
        let kinds: Vec<&str> = p.nodes.iter().map(|n| n.op.kind()).collect();
        assert_eq!(
            kinds,
            vec!["queryDatabase", "llmFilter", "count", "llmFilter", "count", "math"]
        );
        // Both filters read the same scan (shared DAG input).
        assert_eq!(p.nodes[1].inputs, vec![0]);
        assert_eq!(p.nodes[3].inputs, vec![0]);
        match &p.nodes[5].op {
            PlanOp::Math { expr } => assert!(expr.contains("100 *"), "{expr}"),
            other => panic!("expected math, got {other:?}"),
        }
        // Predicates carry the right semantics.
        match &p.nodes[1].op {
            PlanOp::LlmFilter { predicate, .. } => assert!(predicate.contains("environmental")),
            _ => panic!(),
        }
        match &p.nodes[3].op {
            PlanOp::LlmFilter { predicate, .. } => assert!(predicate.contains("wind")),
            _ => panic!(),
        }
    }

    #[test]
    fn how_many_with_filters() {
        let p = planner().plan_question("How many incidents were caused by engine failure in 2019?");
        p.validate().unwrap();
        let kinds: Vec<&str> = p.nodes.iter().map(|n| n.op.kind()).collect();
        assert!(kinds.contains(&"llmFilter"));
        assert!(kinds.contains(&"rangeFilter"), "{kinds:?}");
        assert_eq!(*kinds.last().unwrap(), "count");
    }

    #[test]
    fn average_resolves_field_via_schema() {
        let p = planner().plan_question("What was the average revenue growth of companies in the AI sector?");
        p.validate().unwrap();
        let agg = p
            .nodes
            .iter()
            .find_map(|n| match &n.op {
                PlanOp::Aggregate { func, path, .. } => Some((func.clone(), path.clone())),
                _ => None,
            })
            .expect("aggregate node");
        assert_eq!(agg.0, "avg");
        assert_eq!(agg.1, "growth_pct");
        assert!(p.nodes.iter().any(|n| matches!(&n.op, PlanOp::LlmFilter { predicate, .. } if predicate.contains("AI"))));
    }

    #[test]
    fn superlative_topk() {
        let p = planner().plan_question("Which company had the highest revenue in 2024?");
        p.validate().unwrap();
        assert!(p.nodes.iter().any(|n| matches!(&n.op, PlanOp::TopK { path, descending: true, k: 1 } if path == "revenue_musd")));
        assert!(matches!(p.node(p.result).unwrap().op, PlanOp::LlmGenerate { .. }));
    }

    #[test]
    fn group_by_most() {
        let p = planner().plan_question("Which state had the most incidents?");
        p.validate().unwrap();
        let agg = p
            .nodes
            .iter()
            .find_map(|n| match &n.op {
                PlanOp::Aggregate { key, func, .. } => Some((key.clone(), func.clone())),
                _ => None,
            })
            .expect("aggregate");
        assert_eq!(agg.0, "us_state_abbrev");
        assert_eq!(agg.1, "count");
    }

    #[test]
    fn list_questions_filter_then_generate() {
        let p = planner().plan_question("List the companies whose CEO recently changed");
        p.validate().unwrap();
        assert!(p.nodes.iter().any(|n| matches!(&n.op, PlanOp::LlmFilter { predicate, .. } if predicate.contains("CEO"))));
        assert!(matches!(p.node(p.result).unwrap().op, PlanOp::LlmGenerate { .. }));
    }

    #[test]
    fn index_routing() {
        let pl = planner();
        let p = pl.plan_question("How many incidents were caused by wind?");
        assert!(matches!(&p.nodes[0].op, PlanOp::QueryDatabase { index, .. } if index == "ntsb"));
        let p = pl.plan_question("How many companies lowered guidance?");
        assert!(matches!(&p.nodes[0].op, PlanOp::QueryDatabase { index, .. } if index == "earnings"));
    }

    #[test]
    fn negation_blind_spot_is_present() {
        // The documented misinterpretation: "no fatalities" plans the same
        // filter as "fatalities".
        let pl = planner();
        let with = pl.plan_question("How many incidents involved fatalities?");
        let without = pl.plan_question("How many incidents involved no fatalities?");
        assert_eq!(with.nodes.len(), without.nodes.len());
        let pred = |p: &Plan| {
            p.nodes
                .iter()
                .find_map(|n| match &n.op {
                    PlanOp::LlmFilter { predicate, .. } => Some(predicate.clone()),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(pred(&with), pred(&without));
    }

    #[test]
    fn all_generated_plans_validate() {
        let pl = planner();
        for q in [
            "What percent of environmentally caused incidents were due to wind?",
            "How many incidents occurred in Alaska?",
            "What is the total revenue of companies in the software sector?",
            "Which company had the lowest eps?",
            "List incidents caused by icing in Montana",
            "Summarize the incidents in 2021",
            "what happened in texas",
            "fastest growing companies in the AI market",
        ] {
            let p = pl.plan_question(q);
            p.validate().unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn engine_adapter_produces_parseable_json() {
        use aryn_llm::prompt::{parse_prompt, tasks};
        let engine = PlannerEngine::new(planner());
        let prompt = tasks::plan(
            "How many incidents were caused by wind?",
            &Value::object(),
            &PlanOp::KINDS,
        );
        let _task = parse_prompt(&prompt).unwrap();
        let spec = &aryn_llm::GPT4_SIM;
        let mock = aryn_llm::MockLlm::new(spec, aryn_llm::SimConfig::perfect(1));
        let _ = mock; // EngineCtx is constructed internally; call run directly.
        let text = {
            // A minimal EngineCtx stand-in is not constructible here; instead
            // run through the full model path.
            let model = aryn_llm::MockLlm::new(spec, aryn_llm::SimConfig::perfect(1))
                .with_engine(Box::new(PlannerEngine::new(planner())));
            let resp = aryn_llm::LanguageModel::generate(
                &model,
                &aryn_llm::LlmRequest::new(prompt),
            )
            .unwrap();
            resp.text
        };
        let plan = Plan::parse(&text).unwrap();
        assert!(matches!(plan.node(plan.result).unwrap().op, PlanOp::Count));
        let _ = engine;
    }
}

#[cfg(test)]
mod query_time_extract_tests {
    use super::*;
    use crate::schema::IndexSchema;
    use aryn_core::obj;
    use aryn_index::DocStore;

    fn ntsb_schema_fixture() -> Vec<IndexSchema> {
        let mut ntsb = DocStore::new();
        let mut d = aryn_core::Document::new("n1");
        // Note: no "phase" field — it must be extracted at query time.
        d.properties = obj! {
            "us_state_abbrev" => "AK", "year" => 2019i64, "cause_category" => "environmental",
        };
        ntsb.put(d);
        vec![IndexSchema::discover("ntsb", &ntsb)]
    }

    #[test]
    fn missing_field_triggers_query_time_extraction() {
        // The Figure 5 pattern: "Previously, a system would need an ETL job
        // to extract 'incident root cause,' but with Luna's runtime LLM
        // operations we can extract this information dynamically."
        let planner = RulePlanner::new(ntsb_schema_fixture());
        let p = planner.plan_question("What was the most common phase of incidents?");
        p.validate().unwrap();
        let kinds: Vec<&str> = p.nodes.iter().map(|n| n.op.kind()).collect();
        assert!(kinds.contains(&"llmExtract"), "{kinds:?}");
        // Extraction feeds the aggregate.
        let extract = p
            .nodes
            .iter()
            .find(|n| matches!(&n.op, PlanOp::LlmExtract { field, .. } if field == "phase"))
            .expect("extract node");
        let agg = p
            .nodes
            .iter()
            .find(|n| matches!(&n.op, PlanOp::Aggregate { key, .. } if key == "phase"))
            .expect("aggregate node");
        assert_eq!(agg.inputs, vec![extract.id]);
    }

    #[test]
    fn present_field_skips_extraction() {
        let planner = RulePlanner::new(ntsb_schema_fixture());
        let p = planner.plan_question("What was the most common cause category of incidents?");
        p.validate().unwrap();
        assert!(
            !p.nodes.iter().any(|n| matches!(&n.op, PlanOp::LlmExtract { .. })),
            "schema field should be used directly"
        );
        assert!(p
            .nodes
            .iter()
            .any(|n| matches!(&n.op, PlanOp::Aggregate { key, .. } if key == "cause_category")));
    }
}

#[cfg(test)]
mod year_range_tests {
    use super::*;
    use crate::schema::IndexSchema;
    use aryn_core::obj;
    use aryn_index::DocStore;

    fn schema_with_year() -> Vec<IndexSchema> {
        let mut ntsb = DocStore::new();
        let mut d = aryn_core::Document::new("n1");
        d.properties = obj! { "year" => 2019i64, "cause_detail" => "wind" };
        ntsb.put(d);
        vec![IndexSchema::discover("ntsb", &ntsb)]
    }

    fn year_filter(p: &Plan) -> Option<(Option<i64>, Option<i64>)> {
        p.nodes.iter().find_map(|n| match &n.op {
            PlanOp::RangeFilter { path, lo, hi } if path == "year" => Some((
                lo.as_ref().and_then(Value::as_int),
                hi.as_ref().and_then(Value::as_int),
            )),
            _ => None,
        })
    }

    #[test]
    fn year_range_forms() {
        let pl = RulePlanner::new(schema_with_year());
        let p = pl.plan_question("How many incidents occurred between 2018 and 2020?");
        assert_eq!(year_filter(&p), Some((Some(2018), Some(2020))));
        let p = pl.plan_question("How many incidents since 2019?");
        assert_eq!(year_filter(&p), Some((Some(2019), None)));
        let p = pl.plan_question("How many incidents before 2021?");
        assert_eq!(year_filter(&p), Some((None, Some(2020))));
        let p = pl.plan_question("How many incidents in 2019?");
        assert_eq!(year_filter(&p), Some((Some(2019), Some(2019))));
        // Reversed bounds normalize.
        let p = pl.plan_question("How many incidents from 2022 to 2018?");
        assert_eq!(year_filter(&p), Some((Some(2018), Some(2022))));
    }
}
