//! Static semantic analysis over Luna plan DAGs.
//!
//! The paper's Luna planner (§6) puts *plan validation* between LLM plan
//! generation and cost-based optimization. Structural validation (arity,
//! duplicate ids, cycles — see [`structural`]) cannot catch an LLM-hallucinated
//! field name, a type-mismatched predicate, or an aggregate over a non-numeric
//! column; those only surfaced at runtime, as wrong-but-plausible answers.
//!
//! This module is a real static analyzer:
//!
//! 1. **Schema inference.** Starting from the scan's discovered
//!    [`IndexSchema`], every operator's output shape is inferred over a small
//!    type lattice ([`FieldType`]: string/number/bool/date/list/any). Semantic
//!    operators extend the schema (`llmExtract` adds its target field,
//!    `aggregate` produces `key`/`count`/`value` rows, `graphExpand` adds a
//!    list field), so downstream references to query-time-extracted fields
//!    resolve correctly.
//! 2. **Reference resolution.** Every field reference — filters, prefilters,
//!    aggregates, sorts, joins, math `{out_N}` refs — is resolved against the
//!    inferred shape of its input.
//! 3. **Lint rules.** An extensible registry of [`LintRule`]s produces
//!    structured [`Diagnostic`]s with stable codes (documented in DESIGN.md,
//!    enforced by `cargo xtask lint`).
//!
//! Diagnostics feed three gates: the planner re-prompts the LLM once with
//! rendered Error diagnostics (the repair loop), the optimizer verifies every
//! pass output in all build profiles, and the executor refuses plans with
//! Error diagnostics.

use crate::ops::{Plan, PlanNode, PlanOp};
use crate::schema::IndexSchema;
use aryn_core::{Diagnostic, Severity, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Diagnostic codes emitted by the plan analyzer. Every code here must be
/// documented in DESIGN.md; `cargo xtask lint` enforces that.
pub mod codes {
    pub const EMPTY_PLAN: &str = "empty-plan";
    pub const DUPLICATE_NODE_ID: &str = "duplicate-node-id";
    pub const BAD_ARITY: &str = "bad-arity";
    pub const EMPTY_PARAM: &str = "empty-param";
    pub const UNKNOWN_INPUT: &str = "unknown-input";
    pub const CYCLE: &str = "cycle";
    pub const MISSING_RESULT: &str = "missing-result";
    pub const UNKNOWN_INDEX: &str = "unknown-index";
    pub const UNKNOWN_FIELD: &str = "unknown-field";
    pub const TYPE_MISMATCH: &str = "type-mismatch";
    pub const AGGREGATE_NON_NUMERIC: &str = "aggregate-non-numeric";
    pub const UNKNOWN_AGGREGATE_FUNC: &str = "unknown-aggregate-func";
    pub const SCALAR_INPUT: &str = "scalar-input";
    pub const MATH_UNKNOWN_REF: &str = "math-unknown-ref";
    pub const MATH_REF_NOT_INPUT: &str = "math-ref-not-input";
    pub const MATH_SYNTAX: &str = "math-syntax";
    pub const JOIN_KEY_TYPE_SKEW: &str = "join-key-type-skew";
    pub const SEMANTIC_PUSHDOWN: &str = "semantic-pushdown";
    pub const FILTER_REORDER: &str = "filter-reorder";
    pub const DEAD_NODE: &str = "dead-node";
    pub const REDUNDANT_EXTRACT: &str = "redundant-extract";
    // L22–L27: cost/liveness diagnostics from [`crate::costmodel`].
    pub const INFEASIBLE_DEADLINE: &str = "infeasible-deadline";
    pub const TOKEN_BUDGET_OVERFLOW: &str = "token-budget-overflow";
    pub const UNBOUNDED_CARDINALITY: &str = "unbounded-cardinality";
    pub const DEGRADED_TERMINAL_ONLY: &str = "degraded-terminal-only";
    pub const CACHE_BLIND_REEXEC: &str = "cache-blind-reexec";
    pub const DEAD_FIELD: &str = "dead-field";

    /// All analyzer codes, for documentation checks.
    pub const ALL: &[&str] = &[
        EMPTY_PLAN,
        DUPLICATE_NODE_ID,
        BAD_ARITY,
        EMPTY_PARAM,
        UNKNOWN_INPUT,
        CYCLE,
        MISSING_RESULT,
        UNKNOWN_INDEX,
        UNKNOWN_FIELD,
        TYPE_MISMATCH,
        AGGREGATE_NON_NUMERIC,
        UNKNOWN_AGGREGATE_FUNC,
        SCALAR_INPUT,
        MATH_UNKNOWN_REF,
        MATH_REF_NOT_INPUT,
        MATH_SYNTAX,
        JOIN_KEY_TYPE_SKEW,
        SEMANTIC_PUSHDOWN,
        FILTER_REORDER,
        DEAD_NODE,
        REDUNDANT_EXTRACT,
        INFEASIBLE_DEADLINE,
        TOKEN_BUDGET_OVERFLOW,
        UNBOUNDED_CARDINALITY,
        DEGRADED_TERMINAL_ONLY,
        CACHE_BLIND_REEXEC,
        DEAD_FIELD,
    ];
}

// --- Type lattice -----------------------------------------------------------

/// The analyzer's field type lattice. `Any` is the top: everything joins to
/// it, and it is compatible with everything (used for open schemas and
/// fields whose type cannot be pinned down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    Str,
    Num,
    Bool,
    Date,
    List,
    Any,
}

impl FieldType {
    /// Parses a schema/extraction type name ("string", "int", "float", ...).
    pub fn parse(name: &str) -> FieldType {
        match name.trim().to_ascii_lowercase().as_str() {
            "string" | "str" | "text" => FieldType::Str,
            "int" | "integer" | "float" | "number" | "double" => FieldType::Num,
            "bool" | "boolean" => FieldType::Bool,
            "date" | "datetime" => FieldType::Date,
            "array" | "list" => FieldType::List,
            _ => FieldType::Any,
        }
    }

    /// The type of a literal JSON value.
    pub fn of_value(v: &Value) -> FieldType {
        match v {
            Value::Str(_) => FieldType::Str,
            Value::Int(_) | Value::Float(_) => FieldType::Num,
            Value::Bool(_) => FieldType::Bool,
            Value::Array(_) => FieldType::List,
            _ => FieldType::Any,
        }
    }

    /// Lattice join: equal types stay, different types widen to `Any`.
    pub fn join(self, other: FieldType) -> FieldType {
        if self == other {
            self
        } else {
            FieldType::Any
        }
    }

    /// Whether a value of type `other` can meaningfully compare to this
    /// field. `Any` on either side is compatible; dates compare as strings.
    pub fn compatible(self, other: FieldType) -> bool {
        if self == FieldType::Any || other == FieldType::Any {
            return true;
        }
        if self == other {
            return true;
        }
        matches!(
            (self, other),
            (FieldType::Date, FieldType::Str) | (FieldType::Str, FieldType::Date)
        )
    }

    pub fn is_numeric(self) -> bool {
        matches!(self, FieldType::Num | FieldType::Any)
    }

    pub fn name(self) -> &'static str {
        match self {
            FieldType::Str => "string",
            FieldType::Num => "number",
            FieldType::Bool => "bool",
            FieldType::Date => "date",
            FieldType::List => "list",
            FieldType::Any => "any",
        }
    }
}

// --- Shapes -----------------------------------------------------------------

/// What a field reference resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Field exists with this type.
    Known(FieldType),
    /// Schema is closed and the field is absent.
    Unknown,
    /// Schema is open (scan of an undiscovered index); absence proves nothing.
    Open,
}

/// The inferred output of one plan node: a row set with a field map, or a
/// scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    Rows {
        fields: BTreeMap<String, FieldType>,
        /// Open shapes come from scans whose schema is unavailable; field
        /// resolution is lenient there.
        open: bool,
    },
    Scalar(FieldType),
}

impl Shape {
    pub fn open_rows() -> Shape {
        Shape::Rows {
            fields: BTreeMap::new(),
            open: true,
        }
    }

    pub fn is_rows(&self) -> bool {
        matches!(self, Shape::Rows { .. })
    }

    /// Resolves a field path against this shape. `_id` is the document-key
    /// pseudo-field and always resolves to a string.
    pub fn resolve(&self, path: &str) -> Resolution {
        if path == "_id" {
            return Resolution::Known(FieldType::Str);
        }
        match self {
            Shape::Rows { fields, open } => match fields.get(path) {
                Some(t) => Resolution::Known(*t),
                None if *open => Resolution::Open,
                None => Resolution::Unknown,
            },
            Shape::Scalar(_) => Resolution::Open,
        }
    }

    /// Field names, for `unknown-field` suggestions.
    pub fn field_names(&self) -> Vec<&str> {
        match self {
            Shape::Rows { fields, .. } => fields.keys().map(String::as_str).collect(),
            Shape::Scalar(_) => Vec::new(),
        }
    }
}

// --- Analysis result --------------------------------------------------------

/// The outcome of analyzing one plan.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    pub diagnostics: Vec<Diagnostic>,
    /// Inferred output shape per node id (empty when structural errors stop
    /// inference).
    pub shapes: BTreeMap<usize, Shape>,
}

impl Analysis {
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    pub fn has_errors(&self) -> bool {
        aryn_core::diag::has_errors(&self.diagnostics)
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// All diagnostics rendered one per line, errors first.
    pub fn render(&self) -> String {
        aryn_core::diag::render(&self.diagnostics)
    }

    /// Only the Error diagnostics, rendered for error messages and the
    /// planner repair prompt.
    pub fn render_errors(&self) -> String {
        let errs: Vec<Diagnostic> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .cloned()
            .collect();
        aryn_core::diag::render(&errs)
    }
}

// --- Structural checks (the old `Plan::validate`) ---------------------------

/// Structural validation as diagnostics: unique ids, valid arities, acyclic,
/// result exists, semantic ops have non-empty parameters. This is the single
/// source of truth behind [`Plan::validate`], which surfaces the first Error
/// here for API stability.
pub fn structural(plan: &Plan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if plan.nodes.is_empty() {
        out.push(Diagnostic::error(codes::EMPTY_PLAN, "empty plan").at_path("nodes"));
        return out;
    }
    let mut seen = BTreeSet::new();
    for (pos, n) in plan.nodes.iter().enumerate() {
        let npath = format!("nodes[{pos}]");
        if !seen.insert(n.id) {
            out.push(
                Diagnostic::error(
                    codes::DUPLICATE_NODE_ID,
                    format!("duplicate node id {}", n.id),
                )
                .at_node(n.id)
                .at_path(format!("{npath}.id")),
            );
        }
        let (lo, hi) = n.op.arity();
        if n.inputs.len() < lo || n.inputs.len() > hi {
            out.push(
                Diagnostic::error(
                    codes::BAD_ARITY,
                    format!(
                        "node {} ({}) takes {lo}..{} inputs, got {}",
                        n.id,
                        n.op.kind(),
                        if hi == usize::MAX {
                            "N".to_string()
                        } else {
                            hi.to_string()
                        },
                        n.inputs.len()
                    ),
                )
                .at_node(n.id)
                .at_path(format!("{npath}.inputs")),
            );
        }
        match &n.op {
            PlanOp::LlmFilter { predicate, .. } if predicate.trim().is_empty() => {
                out.push(
                    Diagnostic::error(
                        codes::EMPTY_PARAM,
                        format!("node {}: llmFilter with empty predicate", n.id),
                    )
                    .at_node(n.id)
                    .at_path(format!("{npath}.predicate")),
                );
            }
            PlanOp::LlmExtract { field, .. } if field.trim().is_empty() => {
                out.push(
                    Diagnostic::error(
                        codes::EMPTY_PARAM,
                        format!("node {}: llmExtract with empty field", n.id),
                    )
                    .at_node(n.id)
                    .at_path(format!("{npath}.field")),
                );
            }
            PlanOp::Math { expr } if expr.trim().is_empty() => {
                out.push(
                    Diagnostic::error(
                        codes::EMPTY_PARAM,
                        format!("node {}: math with empty expression", n.id),
                    )
                    .at_node(n.id)
                    .at_path(format!("{npath}.expr")),
                );
            }
            _ => {}
        }
    }
    if plan.node(plan.result).is_none() {
        out.push(
            Diagnostic::error(
                codes::MISSING_RESULT,
                format!("result node {} does not exist", plan.result),
            )
            .at_path("result"),
        );
    }
    if let Err(e) = plan.topo_order() {
        let msg = e.to_string();
        let msg = msg.strip_prefix("invalid plan: ").unwrap_or(&msg).to_string();
        let code = if msg.contains("cycle") {
            codes::CYCLE
        } else {
            codes::UNKNOWN_INPUT
        };
        out.push(Diagnostic::error(code, msg).at_path("nodes"));
    }
    out
}

// --- Shape inference --------------------------------------------------------

fn schema_shape(index: &str, schemas: &[IndexSchema]) -> Shape {
    match schemas.iter().find(|s| s.index == index) {
        Some(s) => Shape::Rows {
            fields: s
                .fields
                .iter()
                .map(|f| (f.path.clone(), FieldType::parse(&f.ftype)))
                .collect(),
            open: false,
        },
        None => Shape::open_rows(),
    }
}

fn input_rows_shape(node: &PlanNode, shapes: &BTreeMap<usize, Shape>, i: usize) -> Shape {
    match node.inputs.get(i).and_then(|id| shapes.get(id)) {
        Some(s @ Shape::Rows { .. }) => s.clone(),
        _ => Shape::open_rows(),
    }
}

fn agg_value_type(func: &str, path_type: FieldType) -> FieldType {
    match func {
        "count" | "" | "sum" | "avg" | "mean" | "average" => FieldType::Num,
        "min" | "max" => path_type,
        _ => FieldType::Any,
    }
}

/// Infers each node's output shape in topological order.
fn infer_shapes(
    plan: &Plan,
    schemas: &[IndexSchema],
    order: &[usize],
) -> BTreeMap<usize, Shape> {
    let mut shapes: BTreeMap<usize, Shape> = BTreeMap::new();
    for id in order {
        let Some(node) = plan.node(*id) else { continue };
        let shape = match &node.op {
            PlanOp::QueryDatabase { index, .. } => schema_shape(index, schemas),
            PlanOp::BasicFilter { .. }
            | PlanOp::RangeFilter { .. }
            | PlanOp::LlmFilter { .. }
            | PlanOp::Sort { .. }
            | PlanOp::TopK { .. } => input_rows_shape(node, &shapes, 0),
            PlanOp::LlmExtract { field, ftype, .. } => {
                let mut s = input_rows_shape(node, &shapes, 0);
                if let Shape::Rows { fields, .. } = &mut s {
                    fields.insert(field.clone(), FieldType::parse(ftype));
                }
                s
            }
            PlanOp::Count => Shape::Scalar(FieldType::Num),
            PlanOp::Aggregate { key, func, path } => {
                if key.is_empty() {
                    Shape::Scalar(FieldType::Num)
                } else {
                    let input = input_rows_shape(node, &shapes, 0);
                    let key_type = match input.resolve(key) {
                        Resolution::Known(t) => t,
                        _ => FieldType::Any,
                    };
                    let path_type = match input.resolve(path) {
                        Resolution::Known(t) => t,
                        _ => FieldType::Any,
                    };
                    let mut fields = BTreeMap::new();
                    fields.insert(key.clone(), key_type);
                    fields.insert("count".to_string(), FieldType::Num);
                    fields.insert("value".to_string(), agg_value_type(func, path_type));
                    Shape::Rows {
                        fields,
                        open: false,
                    }
                }
            }
            PlanOp::Join { .. } => {
                let left = input_rows_shape(node, &shapes, 0);
                let right = input_rows_shape(node, &shapes, 1);
                match (left, right) {
                    (
                        Shape::Rows {
                            fields: mut lf,
                            open: lo,
                        },
                        Shape::Rows {
                            fields: rf,
                            open: ro,
                        },
                    ) => {
                        for (k, v) in rf {
                            // Left side wins on conflict (executor keeps the
                            // left value via or_insert).
                            lf.entry(k).or_insert(v);
                        }
                        Shape::Rows {
                            fields: lf,
                            open: lo || ro,
                        }
                    }
                    _ => Shape::open_rows(),
                }
            }
            PlanOp::Math { .. } => Shape::Scalar(FieldType::Num),
            PlanOp::GraphExpand { output, .. } => {
                let mut s = input_rows_shape(node, &shapes, 0);
                if let Shape::Rows { fields, .. } = &mut s {
                    fields.insert(output.clone(), FieldType::List);
                }
                s
            }
            PlanOp::SummarizeData { .. } | PlanOp::LlmGenerate { .. } => {
                Shape::Scalar(FieldType::Str)
            }
        };
        shapes.insert(*id, shape);
    }
    shapes
}

// --- Rule registry ----------------------------------------------------------

/// Context handed to every lint rule: the plan, the discovered schemas, the
/// inferred per-node shapes, and the topological order.
pub struct PlanCtx<'a> {
    pub plan: &'a Plan,
    pub schemas: &'a [IndexSchema],
    pub shapes: &'a BTreeMap<usize, Shape>,
    pub order: &'a [usize],
}

impl<'a> PlanCtx<'a> {
    /// JSON path to a node's field in the plan rendering.
    pub fn path(&self, node_id: usize, field: &str) -> String {
        let pos = self
            .plan
            .nodes
            .iter()
            .position(|n| n.id == node_id)
            .unwrap_or(0);
        if field.is_empty() {
            format!("nodes[{pos}]")
        } else {
            format!("nodes[{pos}].{field}")
        }
    }

    pub fn shape_of(&self, node_id: usize) -> Option<&Shape> {
        self.shapes.get(&node_id)
    }

    /// Shape of a node's i-th input (open rows when unavailable).
    pub fn input_shape(&self, node: &PlanNode, i: usize) -> Shape {
        input_rows_shape(node, self.shapes, i)
    }

    /// How many nodes consume a node's output.
    pub fn consumers(&self, node_id: usize) -> usize {
        self.plan
            .nodes
            .iter()
            .filter(|n| n.inputs.contains(&node_id))
            .count()
    }
}

/// One lint rule. Rules run after structural validation and shape inference
/// and append [`Diagnostic`]s. Register custom rules with
/// [`Analyzer::with_rule`].
pub trait LintRule: Send + Sync {
    /// The diagnostic code this rule emits (documentation key).
    fn code(&self) -> &'static str;
    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// The analyzer: structural checks + shape inference + a rule registry.
pub struct Analyzer {
    rules: Vec<Box<dyn LintRule>>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    /// The default rule set.
    pub fn new() -> Analyzer {
        Analyzer {
            rules: vec![
                Box::new(ScalarInputRule),
                Box::new(FieldRefRule),
                Box::new(MathRule),
                Box::new(UnknownIndexRule),
                Box::new(PushdownHintRule),
                Box::new(ReorderHintRule),
                Box::new(DeadNodeRule),
                Box::new(RedundantExtractRule),
            ],
        }
    }

    /// An analyzer with no rules (structural checks + inference only).
    pub fn empty() -> Analyzer {
        Analyzer { rules: Vec::new() }
    }

    pub fn with_rule(mut self, rule: Box<dyn LintRule>) -> Analyzer {
        self.rules.push(rule);
        self
    }

    /// Runs the full analysis. Structural errors stop inference (shapes stay
    /// empty); otherwise every rule runs over the inferred shapes.
    pub fn analyze(&self, plan: &Plan, schemas: &[IndexSchema]) -> Analysis {
        let mut diagnostics = structural(plan);
        if aryn_core::diag::has_errors(&diagnostics) {
            return Analysis {
                diagnostics,
                shapes: BTreeMap::new(),
            };
        }
        let order = match plan.topo_order() {
            Ok(o) => o,
            Err(_) => {
                // Unreachable: structural() already vetted the DAG.
                return Analysis {
                    diagnostics,
                    shapes: BTreeMap::new(),
                };
            }
        };
        let shapes = infer_shapes(plan, schemas, &order);
        let cx = PlanCtx {
            plan,
            schemas,
            shapes: &shapes,
            order: &order,
        };
        for rule in &self.rules {
            rule.check(&cx, &mut diagnostics);
        }
        Analysis {
            diagnostics,
            shapes,
        }
    }
}

/// Analyzes a plan with the default rule set.
pub fn analyze(plan: &Plan, schemas: &[IndexSchema]) -> Analysis {
    Analyzer::new().analyze(plan, schemas)
}

// --- Built-in rules ---------------------------------------------------------

fn available_fields(shape: &Shape) -> Option<String> {
    let names = shape.field_names();
    if names.is_empty() {
        return None;
    }
    let shown: Vec<&str> = names.iter().take(8).copied().collect();
    Some(format!("available fields: {}", shown.join(", ")))
}

fn unknown_field(
    cx: &PlanCtx<'_>,
    severity: Severity,
    node: &PlanNode,
    json_field: &str,
    field: &str,
    shape: &Shape,
) -> Diagnostic {
    let mut d = Diagnostic::new(
        codes::UNKNOWN_FIELD,
        severity,
        format!(
            "node {} ({}): field {field:?} does not exist in its input",
            node.id,
            node.op.kind()
        ),
    )
    .at_node(node.id)
    .at_path(cx.path(node.id, json_field));
    if let Some(s) = available_fields(shape) {
        d = d.with_suggestion(s);
    }
    d
}

/// Row-consuming operators fed a scalar input fail at runtime; catch them
/// statically.
struct ScalarInputRule;

impl LintRule for ScalarInputRule {
    fn code(&self) -> &'static str {
        codes::SCALAR_INPUT
    }

    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        for node in &cx.plan.nodes {
            // Math and llmGenerate accept scalar inputs; everything else
            // that takes inputs needs rows.
            if matches!(node.op, PlanOp::Math { .. } | PlanOp::LlmGenerate { .. }) {
                continue;
            }
            for (i, input) in node.inputs.iter().enumerate() {
                if let Some(Shape::Scalar(_)) = cx.shape_of(*input) {
                    out.push(
                        Diagnostic::error(
                            codes::SCALAR_INPUT,
                            format!(
                                "node {} ({}) requires a row input, but out_{input} produces a scalar",
                                node.id,
                                node.op.kind()
                            ),
                        )
                        .at_node(node.id)
                        .at_path(cx.path(node.id, &format!("inputs[{i}]"))),
                    );
                }
            }
        }
    }
}

/// Resolves every field reference against the inferred input shape and
/// checks literal types: the `unknown-field` / `type-mismatch` /
/// `aggregate-non-numeric` / `unknown-aggregate-func` / `join-key-type-skew`
/// lints.
struct FieldRefRule;

impl FieldRefRule {
    fn check_literal(
        cx: &PlanCtx<'_>,
        node: &PlanNode,
        json_field: &str,
        field: &str,
        ftype: FieldType,
        value: &Value,
        out: &mut Vec<Diagnostic>,
    ) {
        if value.is_null() {
            return;
        }
        let vt = FieldType::of_value(value);
        if !ftype.compatible(vt) {
            out.push(
                Diagnostic::error(
                    codes::TYPE_MISMATCH,
                    format!(
                        "node {} ({}): field {field:?} is {} but the literal {value} is {}",
                        node.id,
                        node.op.kind(),
                        ftype.name(),
                        vt.name()
                    ),
                )
                .at_node(node.id)
                .at_path(cx.path(node.id, json_field)),
            );
        }
    }

    fn check_resolved(
        cx: &PlanCtx<'_>,
        node: &PlanNode,
        json_field: &str,
        field: &str,
        shape: &Shape,
        severity: Severity,
        out: &mut Vec<Diagnostic>,
    ) -> Option<FieldType> {
        match shape.resolve(field) {
            Resolution::Known(t) => Some(t),
            Resolution::Open => None,
            Resolution::Unknown => {
                out.push(unknown_field(cx, severity, node, json_field, field, shape));
                None
            }
        }
    }
}

impl LintRule for FieldRefRule {
    fn code(&self) -> &'static str {
        codes::UNKNOWN_FIELD
    }

    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        for node in &cx.plan.nodes {
            match &node.op {
                PlanOp::QueryDatabase { prefilter, .. } => {
                    let Some(shape) = cx.shape_of(node.id).cloned() else { continue };
                    for (k, v) in prefilter {
                        if let Some(t) = Self::check_resolved(
                            cx,
                            node,
                            &format!("prefilter.{k}"),
                            k,
                            &shape,
                            Severity::Error,
                            out,
                        ) {
                            Self::check_literal(
                                cx,
                                node,
                                &format!("prefilter.{k}"),
                                k,
                                t,
                                v,
                                out,
                            );
                        }
                    }
                }
                PlanOp::BasicFilter { path, value } => {
                    let shape = cx.input_shape(node, 0);
                    if let Some(t) = Self::check_resolved(
                        cx,
                        node,
                        "path",
                        path,
                        &shape,
                        Severity::Error,
                        out,
                    ) {
                        Self::check_literal(cx, node, "value", path, t, value, out);
                    }
                }
                PlanOp::RangeFilter { path, lo, hi } => {
                    let shape = cx.input_shape(node, 0);
                    if let Some(t) = Self::check_resolved(
                        cx,
                        node,
                        "path",
                        path,
                        &shape,
                        Severity::Error,
                        out,
                    ) {
                        for (name, bound) in [("lo", lo), ("hi", hi)] {
                            if let Some(v) = bound {
                                Self::check_literal(cx, node, name, path, t, v, out);
                            }
                        }
                    }
                }
                PlanOp::Aggregate { key, func, path } => {
                    let shape = cx.input_shape(node, 0);
                    let needs_numeric = matches!(func.as_str(), "sum" | "avg" | "mean" | "average");
                    let ordered = matches!(func.as_str(), "min" | "max");
                    if !needs_numeric && !ordered && !matches!(func.as_str(), "count" | "") {
                        out.push(
                            Diagnostic::error(
                                codes::UNKNOWN_AGGREGATE_FUNC,
                                format!(
                                    "node {}: unknown aggregate function {func:?}",
                                    node.id
                                ),
                            )
                            .at_node(node.id)
                            .at_path(cx.path(node.id, "func"))
                            .with_suggestion("use one of count, sum, avg, min, max"),
                        );
                    }
                    if needs_numeric || ordered {
                        let severity = if needs_numeric {
                            Severity::Error
                        } else {
                            Severity::Warning
                        };
                        if let Some(t) =
                            Self::check_resolved(cx, node, "path", path, &shape, severity, out)
                        {
                            if !t.is_numeric() {
                                out.push(
                                    Diagnostic::new(
                                        codes::AGGREGATE_NON_NUMERIC,
                                        severity,
                                        format!(
                                            "node {}: {func} over non-numeric field {path:?} ({})",
                                            node.id,
                                            t.name()
                                        ),
                                    )
                                    .at_node(node.id)
                                    .at_path(cx.path(node.id, "path"))
                                    .with_suggestion(
                                        "aggregate a numeric field, or llmExtract a numeric value first",
                                    ),
                                );
                            }
                        }
                    }
                    if !key.is_empty() {
                        Self::check_resolved(
                            cx,
                            node,
                            "key",
                            key,
                            &shape,
                            Severity::Warning,
                            out,
                        );
                    }
                }
                PlanOp::Sort { path, .. } | PlanOp::TopK { path, .. } => {
                    let shape = cx.input_shape(node, 0);
                    Self::check_resolved(
                        cx,
                        node,
                        "path",
                        path,
                        &shape,
                        Severity::Warning,
                        out,
                    );
                }
                PlanOp::Join { on } => {
                    if on.trim().is_empty() {
                        out.push(
                            Diagnostic::error(
                                codes::EMPTY_PARAM,
                                format!("node {}: join with empty key", node.id),
                            )
                            .at_node(node.id)
                            .at_path(cx.path(node.id, "on")),
                        );
                        continue;
                    }
                    let mut sides = Vec::new();
                    for (i, side) in ["left", "right"].iter().enumerate() {
                        let shape = cx.input_shape(node, i);
                        match shape.resolve(on) {
                            Resolution::Known(t) => sides.push(Some(t)),
                            Resolution::Open => sides.push(None),
                            Resolution::Unknown => {
                                out.push(
                                    Diagnostic::error(
                                        codes::UNKNOWN_FIELD,
                                        format!(
                                            "node {}: join key {on:?} missing from the {side} input",
                                            node.id
                                        ),
                                    )
                                    .at_node(node.id)
                                    .at_path(cx.path(node.id, "on")),
                                );
                                sides.push(None);
                            }
                        }
                    }
                    if let (Some(Some(l)), Some(Some(r))) = (sides.first(), sides.get(1)) {
                        if *l != FieldType::Any && *r != FieldType::Any && l != r {
                            out.push(
                                Diagnostic::warning(
                                    codes::JOIN_KEY_TYPE_SKEW,
                                    format!(
                                        "node {}: join key {on:?} is {} on the left but {} on the right",
                                        node.id,
                                        l.name(),
                                        r.name()
                                    ),
                                )
                                .at_node(node.id)
                                .at_path(cx.path(node.id, "on")),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Checks `{out_N}` references in math expressions: they must name existing
/// nodes (ideally the node's declared inputs) with numeric outputs, and the
/// expression must parse.
struct MathRule;

impl MathRule {
    fn refs(expr: &str) -> (Vec<usize>, bool) {
        let mut refs = Vec::new();
        let mut rest = expr;
        let mut malformed = false;
        while let Some(start) = rest.find("{out_") {
            let after = &rest[start + 5..];
            match after.find('}') {
                Some(end) => {
                    match after[..end].parse::<usize>() {
                        Ok(id) => refs.push(id),
                        Err(_) => malformed = true,
                    }
                    rest = &after[end + 1..];
                }
                None => {
                    malformed = true;
                    break;
                }
            }
        }
        (refs, malformed)
    }
}

impl LintRule for MathRule {
    fn code(&self) -> &'static str {
        codes::MATH_SYNTAX
    }

    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        for node in &cx.plan.nodes {
            let PlanOp::Math { expr } = &node.op else { continue };
            let (refs, malformed) = Self::refs(expr);
            if malformed {
                out.push(
                    Diagnostic::error(
                        codes::MATH_SYNTAX,
                        format!("node {}: malformed {{out_N}} reference in {expr:?}", node.id),
                    )
                    .at_node(node.id)
                    .at_path(cx.path(node.id, "expr")),
                );
                continue;
            }
            for r in &refs {
                if cx.plan.node(*r).is_none() {
                    out.push(
                        Diagnostic::error(
                            codes::MATH_UNKNOWN_REF,
                            format!(
                                "node {}: math references out_{r}, which is not in the plan",
                                node.id
                            ),
                        )
                        .at_node(node.id)
                        .at_path(cx.path(node.id, "expr")),
                    );
                    continue;
                }
                if !node.inputs.contains(r) {
                    out.push(
                        Diagnostic::warning(
                            codes::MATH_REF_NOT_INPUT,
                            format!(
                                "node {}: math references out_{r} but does not list it as an input; \
                                 execution order is not guaranteed",
                                node.id
                            ),
                        )
                        .at_node(node.id)
                        .at_path(cx.path(node.id, "inputs")),
                    );
                }
                if let Some(Shape::Scalar(t)) = cx.shape_of(*r) {
                    if !t.is_numeric() {
                        out.push(
                            Diagnostic::error(
                                codes::TYPE_MISMATCH,
                                format!(
                                    "node {}: math uses out_{r}, which is a {} scalar, not a number",
                                    node.id,
                                    t.name()
                                ),
                            )
                            .at_node(node.id)
                            .at_path(cx.path(node.id, "expr")),
                        );
                    }
                }
            }
            // Syntax check: substitute each reference with a distinct
            // constant and evaluate. Division-by-zero under the substitution
            // is not a syntax error.
            let mut probe = expr.clone();
            for (i, r) in refs.iter().enumerate() {
                probe = probe.replace(&format!("{{out_{r}}}"), &format!("{}", 3 + 2 * i));
            }
            if let Err(e) = crate::exec::eval_math(&probe) {
                let msg = e.to_string();
                if !msg.contains("division by zero") {
                    out.push(
                        Diagnostic::error(
                            codes::MATH_SYNTAX,
                            format!("node {}: math expression {expr:?} does not parse: {msg}", node.id),
                        )
                        .at_node(node.id)
                        .at_path(cx.path(node.id, "expr")),
                    );
                }
            }
        }
    }
}

/// Scans of indexes the analyzer has no schema for.
struct UnknownIndexRule;

impl LintRule for UnknownIndexRule {
    fn code(&self) -> &'static str {
        codes::UNKNOWN_INDEX
    }

    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        if cx.schemas.is_empty() {
            return;
        }
        for node in &cx.plan.nodes {
            let PlanOp::QueryDatabase { index, .. } = &node.op else { continue };
            if !cx.schemas.iter().any(|s| s.index == *index) {
                let known: Vec<&str> = cx.schemas.iter().map(|s| s.index.as_str()).collect();
                out.push(
                    Diagnostic::warning(
                        codes::UNKNOWN_INDEX,
                        format!(
                            "node {}: index {index:?} has no discovered schema; field checks are disabled for it",
                            node.id
                        ),
                    )
                    .at_node(node.id)
                    .at_path(cx.path(node.id, "index"))
                    .with_suggestion(format!("known indexes: {}", known.join(", "))),
                );
            }
        }
    }
}

/// `llmFilter` predicates the optimizer could answer by string matching
/// against an extracted property — the paper's "string matching vs semantic
/// matching" decision (§6.1).
struct PushdownHintRule;

impl LintRule for PushdownHintRule {
    fn code(&self) -> &'static str {
        codes::SEMANTIC_PUSHDOWN
    }

    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        let index = cx.plan.nodes.iter().find_map(|n| match &n.op {
            PlanOp::QueryDatabase { index, .. } => Some(index.clone()),
            _ => None,
        });
        let Some(index) = index else { return };
        let Some(schema) = cx.schemas.iter().find(|s| s.index == index) else { return };
        for node in &cx.plan.nodes {
            let PlanOp::LlmFilter { predicate, .. } = &node.op else { continue };
            if let Some((path, value)) = crate::optimize::structured_equivalent(predicate, schema) {
                out.push(
                    Diagnostic::hint(
                        codes::SEMANTIC_PUSHDOWN,
                        format!(
                            "node {}: llmFilter {predicate:?} can be answered by string matching on an extracted property",
                            node.id
                        ),
                    )
                    .at_node(node.id)
                    .at_path(cx.path(node.id, "predicate"))
                    .with_suggestion(format!("basicFilter {path} = {value}")),
                );
            }
        }
    }
}

/// Structured filters downstream of LLM operators in a linear chain: running
/// them first shrinks the row set the LLM sees.
struct ReorderHintRule;

impl LintRule for ReorderHintRule {
    fn code(&self) -> &'static str {
        codes::FILTER_REORDER
    }

    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        for node in &cx.plan.nodes {
            if !matches!(
                node.op,
                PlanOp::BasicFilter { .. } | PlanOp::RangeFilter { .. }
            ) {
                continue;
            }
            let [parent_id] = node.inputs[..] else { continue };
            let Some(parent) = cx.plan.node(parent_id) else { continue };
            if !matches!(
                parent.op,
                PlanOp::LlmFilter { .. } | PlanOp::LlmExtract { .. }
            ) {
                continue;
            }
            if cx.consumers(parent_id) != 1 {
                continue;
            }
            out.push(
                Diagnostic::hint(
                    codes::FILTER_REORDER,
                    format!(
                        "node {}: structured filter runs after LLM operator out_{parent_id}; \
                         running it first would reduce per-row LLM calls",
                        node.id
                    ),
                )
                .at_node(node.id)
                .at_path(cx.path(node.id, ""))
                .with_suggestion("let the optimizer reorder structured filters before semantic ones"),
            );
        }
    }
}

/// Nodes whose output never reaches the result.
struct DeadNodeRule;

impl LintRule for DeadNodeRule {
    fn code(&self) -> &'static str {
        codes::DEAD_NODE
    }

    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        let mut live: BTreeSet<usize> = BTreeSet::new();
        let mut stack = vec![cx.plan.result];
        while let Some(id) = stack.pop() {
            if !live.insert(id) {
                continue;
            }
            if let Some(n) = cx.plan.node(id) {
                stack.extend(n.inputs.iter().copied());
                // Math nodes may pull values from referenced nodes that are
                // not wired as inputs; those are live too.
                if let PlanOp::Math { expr } = &n.op {
                    let (refs, _) = MathRule::refs(expr);
                    stack.extend(refs);
                }
            }
        }
        for node in &cx.plan.nodes {
            if !live.contains(&node.id) {
                out.push(
                    Diagnostic::warning(
                        codes::DEAD_NODE,
                        format!(
                            "node {} ({}) does not contribute to the result node {}",
                            node.id,
                            node.op.kind(),
                            cx.plan.result
                        ),
                    )
                    .at_node(node.id)
                    .at_path(cx.path(node.id, ""))
                    .with_suggestion("remove the node, or wire its output into the result"),
                );
            }
        }
    }
}

/// `llmExtract` of a field the schema already carries: the stored property is
/// free, the extraction costs one LLM call per row.
struct RedundantExtractRule;

impl LintRule for RedundantExtractRule {
    fn code(&self) -> &'static str {
        codes::REDUNDANT_EXTRACT
    }

    fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        for node in &cx.plan.nodes {
            let PlanOp::LlmExtract { field, .. } = &node.op else { continue };
            let shape = cx.input_shape(node, 0);
            if let Resolution::Known(_) = shape.resolve(field) {
                out.push(
                    Diagnostic::warning(
                        codes::REDUNDANT_EXTRACT,
                        format!(
                            "node {}: llmExtract of {field:?}, which its input already carries",
                            node.id
                        ),
                    )
                    .at_node(node.id)
                    .at_path(cx.path(node.id, "field"))
                    .with_suggestion(format!("read the stored property {field:?} directly")),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_core::obj;
    use aryn_index::DocStore;

    fn ntsb_schema_fixture() -> Vec<IndexSchema> {
        let mut ntsb = DocStore::new();
        let mut d = aryn_core::Document::new("n1");
        d.properties = obj! {
            "us_state_abbrev" => "AK", "year" => 2019i64, "cause_category" => "environmental",
            "cause_detail" => "wind", "fatal" => 0i64, "weather_related" => true,
        };
        ntsb.put(d);
        vec![IndexSchema::discover("ntsb", &ntsb)]
    }

    fn scan(id: usize) -> PlanNode {
        PlanNode {
            id,
            op: PlanOp::QueryDatabase {
                index: "ntsb".into(),
                prefilter: vec![],
            },
            inputs: vec![],
            description: String::new(),
        }
    }

    fn node(id: usize, op: PlanOp, inputs: Vec<usize>) -> PlanNode {
        PlanNode {
            id,
            op,
            inputs,
            description: String::new(),
        }
    }

    #[test]
    fn clean_plan_has_no_errors() {
        let plan = Plan {
            nodes: vec![
                scan(0),
                node(
                    1,
                    PlanOp::BasicFilter {
                        path: "us_state_abbrev".into(),
                        value: Value::from("AK"),
                    },
                    vec![0],
                ),
                node(2, PlanOp::Count, vec![1]),
            ],
            result: 2,
        };
        let a = analyze(&plan, &ntsb_schema_fixture());
        assert!(!a.has_errors(), "{}", a.render());
        assert!(matches!(a.shapes.get(&2), Some(Shape::Scalar(FieldType::Num))));
    }

    #[test]
    fn unknown_field_is_an_error_on_closed_schema() {
        let plan = Plan {
            nodes: vec![
                scan(0),
                node(
                    1,
                    PlanOp::BasicFilter {
                        path: "altitude".into(),
                        value: Value::Int(3000),
                    },
                    vec![0],
                ),
            ],
            result: 1,
        };
        // Structural validation accepts this…
        plan.validate().unwrap();
        // …but the analyzer catches it.
        let a = analyze(&plan, &ntsb_schema_fixture());
        assert!(a
            .errors()
            .iter()
            .any(|d| d.code == codes::UNKNOWN_FIELD && d.node_id == Some(1)));
        // With no schema the scan is open and the reference is tolerated.
        let open = analyze(&plan, &[]);
        assert!(!open.has_errors(), "{}", open.render());
    }

    #[test]
    fn type_mismatch_is_caught() {
        let plan = Plan {
            nodes: vec![
                scan(0),
                node(
                    1,
                    PlanOp::BasicFilter {
                        path: "year".into(),
                        value: Value::from("two thousand nineteen"),
                    },
                    vec![0],
                ),
            ],
            result: 1,
        };
        plan.validate().unwrap();
        let a = analyze(&plan, &ntsb_schema_fixture());
        assert!(a.errors().iter().any(|d| d.code == codes::TYPE_MISMATCH));
    }

    #[test]
    fn aggregate_over_non_numeric_is_caught() {
        let plan = Plan {
            nodes: vec![
                scan(0),
                node(
                    1,
                    PlanOp::Aggregate {
                        key: String::new(),
                        func: "sum".into(),
                        path: "cause_detail".into(),
                    },
                    vec![0],
                ),
            ],
            result: 1,
        };
        plan.validate().unwrap();
        let a = analyze(&plan, &ntsb_schema_fixture());
        assert!(a
            .errors()
            .iter()
            .any(|d| d.code == codes::AGGREGATE_NON_NUMERIC));
    }

    #[test]
    fn llm_extract_extends_the_schema() {
        let plan = Plan {
            nodes: vec![
                scan(0),
                node(
                    1,
                    PlanOp::LlmExtract {
                        field: "phase".into(),
                        ftype: "string".into(),
                        model: String::new(),
                    },
                    vec![0],
                ),
                node(
                    2,
                    PlanOp::Aggregate {
                        key: "phase".into(),
                        func: "count".into(),
                        path: String::new(),
                    },
                    vec![1],
                ),
                node(
                    3,
                    PlanOp::TopK {
                        path: "count".into(),
                        descending: true,
                        k: 1,
                    },
                    vec![2],
                ),
            ],
            result: 3,
        };
        let a = analyze(&plan, &ntsb_schema_fixture());
        assert!(!a.has_errors(), "{}", a.render());
        // The aggregate's output shape carries the group key and count.
        match a.shapes.get(&2) {
            Some(Shape::Rows { fields, .. }) => {
                assert!(fields.contains_key("phase"));
                assert!(fields.contains_key("count"));
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn scalar_input_is_caught() {
        let plan = Plan {
            nodes: vec![
                scan(0),
                node(1, PlanOp::Count, vec![0]),
                node(
                    2,
                    PlanOp::BasicFilter {
                        path: "year".into(),
                        value: Value::Int(2019),
                    },
                    vec![1],
                ),
            ],
            result: 2,
        };
        plan.validate().unwrap();
        let a = analyze(&plan, &ntsb_schema_fixture());
        assert!(a.errors().iter().any(|d| d.code == codes::SCALAR_INPUT));
    }

    #[test]
    fn math_rules_catch_bad_refs_and_syntax() {
        let bad_ref = Plan {
            nodes: vec![
                scan(0),
                node(1, PlanOp::Count, vec![0]),
                node(2, PlanOp::Math { expr: "{out_9} + 1".into() }, vec![1]),
            ],
            result: 2,
        };
        let a = analyze(&bad_ref, &ntsb_schema_fixture());
        assert!(a.errors().iter().any(|d| d.code == codes::MATH_UNKNOWN_REF));

        let bad_syntax = Plan {
            nodes: vec![
                scan(0),
                node(1, PlanOp::Count, vec![0]),
                node(2, PlanOp::Math { expr: "{out_1} + ".into() }, vec![1]),
            ],
            result: 2,
        };
        let a = analyze(&bad_syntax, &ntsb_schema_fixture());
        assert!(a.errors().iter().any(|d| d.code == codes::MATH_SYNTAX));

        let not_input = Plan {
            nodes: vec![
                scan(0),
                node(1, PlanOp::Count, vec![0]),
                node(2, PlanOp::Count, vec![0]),
                node(3, PlanOp::Math { expr: "{out_1} + {out_2}".into() }, vec![1]),
            ],
            result: 3,
        };
        let a = analyze(&not_input, &ntsb_schema_fixture());
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == codes::MATH_REF_NOT_INPUT));
    }

    #[test]
    fn hints_fire_for_pushdown_and_reorder() {
        let plan = Plan {
            nodes: vec![
                scan(0),
                node(
                    1,
                    PlanOp::LlmFilter {
                        predicate: "the incident occurred in Alaska (AK)".into(),
                        model: String::new(),
                    },
                    vec![0],
                ),
                node(
                    2,
                    PlanOp::RangeFilter {
                        path: "year".into(),
                        lo: Some(Value::Int(2019)),
                        hi: None,
                    },
                    vec![1],
                ),
                node(3, PlanOp::Count, vec![2]),
            ],
            result: 3,
        };
        let a = analyze(&plan, &ntsb_schema_fixture());
        assert!(!a.has_errors(), "{}", a.render());
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == codes::SEMANTIC_PUSHDOWN));
        assert!(a.diagnostics.iter().any(|d| d.code == codes::FILTER_REORDER));
    }

    #[test]
    fn dead_node_and_redundant_extract_warn() {
        let plan = Plan {
            nodes: vec![
                scan(0),
                node(1, PlanOp::Count, vec![0]),
                node(
                    2,
                    PlanOp::LlmExtract {
                        field: "cause_detail".into(),
                        ftype: "string".into(),
                        model: String::new(),
                    },
                    vec![0],
                ),
            ],
            result: 1,
        };
        let a = analyze(&plan, &ntsb_schema_fixture());
        assert!(a.diagnostics.iter().any(|d| d.code == codes::DEAD_NODE && d.node_id == Some(2)));
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == codes::REDUNDANT_EXTRACT));
        assert!(!a.has_errors());
    }

    #[test]
    fn join_type_skew_warns() {
        let mut left = DocStore::new();
        let mut d = aryn_core::Document::new("l1");
        d.properties = obj! { "company" => "Apex", "year" => 2024i64 };
        left.put(d);
        let mut right = DocStore::new();
        let mut d = aryn_core::Document::new("r1");
        d.properties = obj! { "company" => 7i64 };
        right.put(d);
        let schemas = vec![
            IndexSchema::discover("left", &left),
            IndexSchema::discover("right", &right),
        ];
        let plan = Plan {
            nodes: vec![
                node(
                    0,
                    PlanOp::QueryDatabase { index: "left".into(), prefilter: vec![] },
                    vec![],
                ),
                node(
                    1,
                    PlanOp::QueryDatabase { index: "right".into(), prefilter: vec![] },
                    vec![],
                ),
                node(2, PlanOp::Join { on: "company".into() }, vec![0, 1]),
            ],
            result: 2,
        };
        let a = analyze(&plan, &schemas);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == codes::JOIN_KEY_TYPE_SKEW));
    }

    #[test]
    fn unknown_aggregate_func_is_an_error() {
        let plan = Plan {
            nodes: vec![
                scan(0),
                node(
                    1,
                    PlanOp::Aggregate {
                        key: String::new(),
                        func: "median".into(),
                        path: "fatal".into(),
                    },
                    vec![0],
                ),
            ],
            result: 1,
        };
        let a = analyze(&plan, &ntsb_schema_fixture());
        assert!(a
            .errors()
            .iter()
            .any(|d| d.code == codes::UNKNOWN_AGGREGATE_FUNC));
    }

    #[test]
    fn structural_errors_short_circuit() {
        let plan = Plan { nodes: vec![], result: 0 };
        let a = analyze(&plan, &[]);
        assert!(a.has_errors());
        assert!(a.shapes.is_empty());
    }

    #[test]
    fn custom_rules_extend_the_registry() {
        struct NoJoins;
        impl LintRule for NoJoins {
            fn code(&self) -> &'static str {
                "no-joins"
            }
            fn check(&self, cx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
                for n in &cx.plan.nodes {
                    if matches!(n.op, PlanOp::Join { .. }) {
                        out.push(
                            Diagnostic::warning("no-joins", "joins are banned here").at_node(n.id),
                        );
                    }
                }
            }
        }
        let plan = Plan {
            nodes: vec![
                scan(0),
                scan(1),
                node(2, PlanOp::Join { on: "year".into() }, vec![0, 1]),
            ],
            result: 2,
        };
        let a = Analyzer::empty()
            .with_rule(Box::new(NoJoins))
            .analyze(&plan, &ntsb_schema_fixture());
        assert!(a.diagnostics.iter().any(|d| d.code == "no-joins"));
    }

    #[test]
    fn field_type_lattice() {
        assert_eq!(FieldType::parse("int"), FieldType::Num);
        assert_eq!(FieldType::parse("string"), FieldType::Str);
        assert_eq!(FieldType::Num.join(FieldType::Num), FieldType::Num);
        assert_eq!(FieldType::Num.join(FieldType::Str), FieldType::Any);
        assert!(FieldType::Any.compatible(FieldType::Bool));
        assert!(FieldType::Date.compatible(FieldType::Str));
        assert!(!FieldType::Num.compatible(FieldType::Str));
    }

    #[test]
    fn duplicate_scan_arity_messages_match_validate() {
        // The thin validate() wrapper must surface the same first error.
        let mut p = Plan {
            nodes: vec![scan(0), node(1, PlanOp::Count, vec![0])],
            result: 1,
        };
        p.nodes[1].id = 0;
        let d = structural(&p);
        assert!(d.iter().any(|d| d.code == codes::DUPLICATE_NODE_ID));
        match p.validate() {
            Err(aryn_core::ArynError::InvalidPlan(m)) => assert!(m.contains("duplicate node id")),
            other => panic!("{other:?}"),
        }
    }
}
