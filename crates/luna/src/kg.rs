//! Pay-as-you-go knowledge-graph construction (§7).
//!
//! "We also aim to build and continuously refine a knowledge graph in a
//! pay-as-you-go fashion" — entities and relations are derived from the
//! *extracted properties* of ingested documents, so the graph grows as
//! extraction does, with no separate annotation pass. Re-running the builder
//! after new extractions merges new facts into existing nodes
//! ([`aryn_index::GraphStore::upsert_node`] merges properties).
//!
//! The graph backs Luna's `graphExpand` operator, which serves the paper's
//! §1 data-integration pattern: "list the fastest growing companies in the
//! BNPL market and their competitors, where the competitive information may
//! involve a lookup in a database."

use aryn_core::{obj, Document, Result, Value};
use aryn_index::{DocStore, GraphNode, GraphStore};

/// Merges one earnings document into the graph: company and sector nodes,
/// `in_sector` membership, and `competitor_of` edges against every company
/// already known in the same sector. O(companies-in-sector) per call, with
/// `competitor_of` derived from graph state (not a batch scan), so a
/// streaming feed can call this per arrival. Returns competitor edges added.
pub fn update_earnings_graph(d: &Document, graph: &mut GraphStore) -> Result<usize> {
    let Some(company) = d.prop("company").and_then(Value::as_str) else {
        return Ok(0);
    };
    let company = company.to_string();
    let sector = d
        .prop("sector")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    graph.upsert_node(GraphNode {
        id: company.clone(),
        label: "company".into(),
        properties: obj! {
            "sector" => sector.as_str(),
            "ceo" => d.prop("ceo").cloned().unwrap_or(Value::Null),
            "ticker" => d.prop("ticker").cloned().unwrap_or(Value::Null),
        },
    });
    let sector_node = format!("sector:{sector}");
    graph.upsert_node(GraphNode {
        id: sector_node.clone(),
        label: "sector".into(),
        properties: obj! { "name" => sector.as_str() },
    });
    graph.add_edge(&company, "in_sector", &sector_node)?;
    // Competitors: the sector node's members, read back from the graph.
    let peers: Vec<String> = graph
        .incoming(&sector_node, Some("in_sector"))
        .into_iter()
        .map(|n| n.id.clone())
        .filter(|id| *id != company)
        .collect();
    let mut edges = 0;
    for peer in peers {
        if !graph.has_edge(&company, "competitor_of", &peer)
            && !graph.has_edge(&peer, "competitor_of", &company)
        {
            graph.add_edge(&company, "competitor_of", &peer)?;
            edges += 1;
        }
    }
    Ok(edges)
}

/// Merges one NTSB document into the graph: incident, state, and
/// aircraft-make entities with `occurred_in` and `involved_make` edges.
/// Returns edges added.
pub fn update_ntsb_graph(d: &Document, graph: &mut GraphStore) -> Result<usize> {
    graph.upsert_node(GraphNode {
        id: d.id.0.clone(),
        label: "incident".into(),
        properties: obj! {
            "cause_detail" => d.prop("cause_detail").cloned().unwrap_or(Value::Null),
            "year" => d.prop("year").cloned().unwrap_or(Value::Null),
        },
    });
    let mut edges = 0;
    if let Some(state) = d.prop("us_state_abbrev").and_then(Value::as_str) {
        graph.upsert_node(GraphNode {
            id: format!("state:{state}"),
            label: "state".into(),
            properties: obj! { "abbrev" => state },
        });
        graph.add_edge(&d.id.0, "occurred_in", &format!("state:{state}"))?;
        edges += 1;
    }
    if let Some(model) = d.prop("aircraft_model").and_then(Value::as_str) {
        let make = model.split_whitespace().next().unwrap_or(model);
        graph.upsert_node(GraphNode {
            id: format!("make:{make}"),
            label: "aircraft_make".into(),
            properties: obj! { "name" => make },
        });
        graph.add_edge(&d.id.0, "involved_make", &format!("make:{make}"))?;
        edges += 1;
    }
    Ok(edges)
}

/// Builds/refines the graph from an earnings store: one
/// [`update_earnings_graph`] per document. Returns competitor edges added.
pub fn build_earnings_graph(store: &DocStore, graph: &mut GraphStore) -> Result<usize> {
    let mut edges = 0;
    for d in store.scan() {
        edges += update_earnings_graph(d, graph)?;
    }
    Ok(edges)
}

/// Builds/refines the graph from an NTSB store: one [`update_ntsb_graph`]
/// per document. Returns edges added.
pub fn build_ntsb_graph(store: &DocStore, graph: &mut GraphStore) -> Result<usize> {
    let mut edges = 0;
    for d in store.scan() {
        edges += update_ntsb_graph(d, graph)?;
    }
    Ok(edges)
}

/// Competitors of a company, by name.
pub fn competitors_of<'g>(graph: &'g GraphStore, company: &str) -> Vec<&'g GraphNode> {
    let mut out = graph.neighbors(company, Some("competitor_of"));
    out.extend(graph.incoming(company, Some("competitor_of")));
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out.dedup_by(|a, b| a.id == b.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_core::Document;

    fn earnings_store() -> DocStore {
        let mut s = DocStore::new();
        for (id, company, sector) in [
            ("e0", "Apex Systems", "AI"),
            ("e1", "Northwind Labs", "AI"),
            ("e2", "Granite Energy", "energy"),
            ("e3", "Apex Systems", "AI"), // second quarter, same company
        ] {
            let mut d = Document::new(id);
            d.set_prop("company", company);
            d.set_prop("sector", sector);
            d.set_prop("ceo", "Maria Chen");
            s.put(d);
        }
        s
    }

    #[test]
    fn earnings_graph_builds_companies_sectors_competitors() {
        let mut g = GraphStore::new();
        let edges = build_earnings_graph(&earnings_store(), &mut g).unwrap();
        assert_eq!(g.nodes_with_label("company").len(), 3);
        assert_eq!(g.nodes_with_label("sector").len(), 2);
        assert_eq!(edges, 1, "one same-sector competitor pair");
        let comp = competitors_of(&g, "Apex Systems");
        assert_eq!(comp.len(), 1);
        assert_eq!(comp[0].id, "Northwind Labs");
        // Symmetric view.
        let comp = competitors_of(&g, "Northwind Labs");
        assert_eq!(comp[0].id, "Apex Systems");
        // Unrelated sector has no competitors.
        assert!(competitors_of(&g, "Granite Energy").is_empty());
    }

    #[test]
    fn graph_refines_pay_as_you_go() {
        let mut g = GraphStore::new();
        build_earnings_graph(&earnings_store(), &mut g).unwrap();
        // New extraction round adds a company; rebuilding merges, not dupes.
        let mut store = earnings_store();
        let mut d = Document::new("e4");
        d.set_prop("company", "Vertex Robotics");
        d.set_prop("sector", "AI");
        store.put(d);
        build_earnings_graph(&store, &mut g).unwrap();
        assert_eq!(g.nodes_with_label("company").len(), 4);
        assert_eq!(competitors_of(&g, "Apex Systems").len(), 2);
        // Node properties merged (ceo survived the second pass).
        assert_eq!(
            g.node("Apex Systems").unwrap().properties.get("ceo").unwrap().as_str(),
            Some("Maria Chen")
        );
    }

    #[test]
    fn per_doc_updates_are_idempotent_and_match_batch() {
        let store = earnings_store();
        let mut batch = GraphStore::new();
        build_earnings_graph(&store, &mut batch).unwrap();
        // Streaming the same documents one at a time lands on the same graph.
        let mut inc = GraphStore::new();
        for d in store.scan() {
            update_earnings_graph(d, &mut inc).unwrap();
        }
        assert_eq!(inc.node_count(), batch.node_count());
        assert_eq!(inc.edge_count(), batch.edge_count());
        // Re-processing an arrival adds nothing: competitor wiring is
        // derived from graph state and deduped by `has_edge`.
        let d = store.scan().next().unwrap();
        let added = update_earnings_graph(d, &mut inc).unwrap();
        assert_eq!(added, 0);
        assert_eq!(inc.edge_count(), batch.edge_count());
    }

    #[test]
    fn ntsb_graph_links_incidents_to_states_and_makes() {
        let mut s = DocStore::new();
        let mut d = Document::new("ntsb-1");
        d.set_prop("us_state_abbrev", "AK");
        d.set_prop("aircraft_model", "Cessna 172");
        s.put(d);
        let mut g = GraphStore::new();
        let edges = build_ntsb_graph(&s, &mut g).unwrap();
        assert_eq!(edges, 2);
        assert_eq!(g.neighbors("ntsb-1", Some("occurred_in"))[0].id, "state:AK");
        assert_eq!(g.incoming("make:Cessna", Some("involved_make"))[0].id, "ntsb-1");
    }
}
