//! Plan execution with full traceability.
//!
//! Nodes execute in topological order; each node's output (a row set or a
//! scalar) is kept so that shared inputs (Figure 5's `out_0`) compute once.
//! Every node leaves a [`NodeTrace`]: rows in/out, wall time, LLM calls and
//! cost (meter deltas), and sample rows — "a detailed trace of how the
//! answer was computed" (§2, §6.1).

use crate::ops::{Plan, PlanOp};
use aryn_core::{ArynError, Document, Result, Value};
use aryn_index::{GraphStore, StoreSnapshot};
use aryn_llm::prompt::tasks;
use aryn_llm::{LlmClient, UsageStats};
use aryn_telemetry::Telemetry;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// A node's output.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeOutput {
    Rows(Vec<Document>),
    Scalar(Value),
}

impl NodeOutput {
    pub fn rows(&self) -> Option<&[Document]> {
        match self {
            NodeOutput::Rows(r) => Some(r),
            NodeOutput::Scalar(_) => None,
        }
    }

    pub fn scalar(&self) -> Option<&Value> {
        match self {
            NodeOutput::Scalar(v) => Some(v),
            NodeOutput::Rows(_) => None,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            NodeOutput::Rows(r) => r.len(),
            NodeOutput::Scalar(_) => 1,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-node execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrace {
    pub node_id: usize,
    pub op_kind: String,
    pub description: String,
    pub rows_in: usize,
    pub rows_out: usize,
    pub wall_ms: f64,
    pub llm_calls: u64,
    /// LLM retries (transient failures + JSON re-asks) during this node.
    pub retries: u64,
    /// Prompt tokens consumed by this node's LLM calls.
    pub input_tokens: u64,
    /// Completion tokens produced by this node's LLM calls.
    pub output_tokens: u64,
    pub cost_usd: f64,
    /// Call-cache hits during this node (0 when no cache is attached).
    pub cache_hits: u64,
    /// Simulated dollars those cache hits would have cost.
    pub cost_saved_usd: f64,
    /// Packed micro-batch calls issued during this node (0 when batching is
    /// off).
    pub batched_calls: u64,
    /// LLM calls avoided by micro-batching during this node.
    pub calls_saved: u64,
    /// Circuit-breaker trips (closed → open) during this node (0 when no
    /// reliability policy is installed).
    pub breaker_trips: u64,
    /// Calls answered by a cheaper fallback tier of a degradation ladder
    /// during this node.
    pub fallback_calls: u64,
    /// Documents this node flagged `_degraded` (answered by a fallback
    /// model, string matching, or skipped under a breaker/deadline).
    pub degraded_docs: u64,
    /// Up to three sample row ids (provenance peek).
    pub sample_ids: Vec<String>,
    /// Scalar output, if the node produced one.
    pub scalar: Option<Value>,
}

/// The result of executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LunaResult {
    /// Final output of the result node.
    pub output: NodeOutput,
    /// Natural-language answer (set when the result node generates text,
    /// otherwise a rendering of the output).
    pub answer: String,
    pub traces: Vec<NodeTrace>,
}

impl LunaResult {
    pub fn total_cost(&self) -> f64 {
        self.traces.iter().map(|t| t.cost_usd).sum()
    }

    pub fn total_llm_calls(&self) -> u64 {
        self.traces.iter().map(|t| t.llm_calls).sum()
    }

    pub fn total_tokens(&self) -> u64 {
        self.traces
            .iter()
            .map(|t| t.input_tokens + t.output_tokens)
            .sum()
    }

    pub fn total_retries(&self) -> u64 {
        self.traces.iter().map(|t| t.retries).sum()
    }

    pub fn total_cache_hits(&self) -> u64 {
        self.traces.iter().map(|t| t.cache_hits).sum()
    }

    pub fn total_cost_saved_usd(&self) -> f64 {
        self.traces.iter().map(|t| t.cost_saved_usd).sum()
    }

    pub fn total_batched_calls(&self) -> u64 {
        self.traces.iter().map(|t| t.batched_calls).sum()
    }

    pub fn total_calls_saved(&self) -> u64 {
        self.traces.iter().map(|t| t.calls_saved).sum()
    }

    pub fn total_breaker_trips(&self) -> u64 {
        self.traces.iter().map(|t| t.breaker_trips).sum()
    }

    pub fn total_fallback_calls(&self) -> u64 {
        self.traces.iter().map(|t| t.fallback_calls).sum()
    }

    pub fn total_degraded_docs(&self) -> u64 {
        self.traces.iter().map(|t| t.degraded_docs).sum()
    }

    /// Renders the execution history as a table (the debugging view §6.1).
    pub fn render_trace(&self) -> String {
        let mut out = String::from(
            "node  op              rows_in  rows_out  llm_calls  tokens  retries  cost_usd\n",
        );
        for t in &self.traces {
            out.push_str(&format!(
                "out_{:<2} {:<15} {:>7}  {:>8}  {:>9}  {:>6}  {:>7}  {:>9.4}\n",
                t.node_id,
                t.op_kind,
                t.rows_in,
                t.rows_out,
                t.llm_calls,
                t.input_tokens + t.output_tokens,
                t.retries,
                t.cost_usd
            ));
        }
        out
    }
}

/// Executes plans against a Sycamore context.
pub struct PlanExecutor {
    pub ctx: sycamore::Context,
    /// Default client for semantic operators.
    pub client: LlmClient,
    /// Optional per-model clients (the optimizer pins models by name).
    pub model_clients: BTreeMap<String, LlmClient>,
    /// Knowledge graph for `graphExpand` nodes (None = the operator errors).
    pub graph: Option<std::sync::Arc<GraphStore>>,
    /// Span collector; defaults to the context's, so engine-level stage
    /// spans and Luna operator spans land in one trace.
    pub telemetry: Telemetry,
    /// Explicitly pinned MVCC snapshots by index name. `execute` reads a
    /// plan's stores through these when present; stores the plan scans that
    /// are not pinned here get a fresh snapshot taken at plan start. Either
    /// way a whole question runs against one consistent view per store while
    /// ingestion continues underneath.
    pins: RwLock<BTreeMap<String, Arc<StoreSnapshot>>>,
}

impl PlanExecutor {
    pub fn new(ctx: sycamore::Context, client: LlmClient) -> PlanExecutor {
        let telemetry = ctx.telemetry();
        PlanExecutor {
            ctx,
            client,
            model_clients: BTreeMap::new(),
            graph: None,
            telemetry,
            pins: RwLock::new(BTreeMap::new()),
        }
    }

    /// Pins `index` to its current snapshot: every subsequent `execute`
    /// reads the store through this frozen view until [`Self::unpin_all`].
    pub fn pin_index(&self, index: &str) -> Result<Arc<StoreSnapshot>> {
        let snap = self.ctx.snapshot_store(index)?;
        self.pins
            .write()
            .insert(index.to_string(), Arc::clone(&snap));
        Ok(snap)
    }

    /// The explicitly pinned snapshot for `index`, if any.
    pub fn pinned(&self, index: &str) -> Option<Arc<StoreSnapshot>> {
        self.pins.read().get(index).cloned()
    }

    /// Drops all explicit pins; `execute` goes back to snapshotting each
    /// scanned store at plan start.
    pub fn unpin_all(&self) {
        self.pins.write().clear();
    }

    pub fn with_graph(mut self, graph: std::sync::Arc<GraphStore>) -> PlanExecutor {
        self.graph = Some(graph);
        self
    }

    pub fn with_model(mut self, name: &str, client: LlmClient) -> PlanExecutor {
        self.model_clients.insert(name.to_string(), client);
        self
    }

    fn client_for(&self, model: &str) -> &LlmClient {
        if model.is_empty() {
            &self.client
        } else {
            self.model_clients.get(model).unwrap_or(&self.client)
        }
    }

    /// Runs a validated plan. Beyond structural validation, the semantic
    /// analyzer ([`crate::analyze`]) runs against schemas discovered from
    /// the scanned stores; a plan with Error-severity diagnostics is refused
    /// before any operator executes.
    pub fn execute(&self, plan: &Plan) -> Result<LunaResult> {
        plan.validate()?;
        // Pin every store the plan scans to one MVCC snapshot for the whole
        // run (explicit pins win), so a question sees a single consistent
        // view per store even while an ingest stream mutates it underneath.
        // A store that cannot be snapshotted stays unpinned and the scan
        // operator surfaces its own `Index` error at runtime, as before.
        let mut run_pins: BTreeMap<String, Arc<StoreSnapshot>> = self.pins.read().clone();
        for n in &plan.nodes {
            let PlanOp::QueryDatabase { index, .. } = &n.op else { continue };
            if !run_pins.contains_key(index) {
                if let Ok(snap) = self.ctx.snapshot_store(index) {
                    run_pins.insert(index.clone(), snap);
                }
            }
        }
        self.check_plan(plan, &run_pins)?;
        self.record_ingest_spans(&run_pins);
        // One span per plan run recording the execution mode the engine's
        // per-doc stages will use. Gauges only: the mode shapes scheduling,
        // never results, so it must stay out of the trace fingerprint.
        let exec_cfg = self.ctx.exec_config();
        if self.telemetry.is_enabled() && exec_cfg.threads > 1 {
            let mut span = self.telemetry.span("exec_mode", "executor");
            span.gauge("workers", exec_cfg.threads as f64)
                .gauge("morsel_size", exec_cfg.morsel_size as f64);
            span.finish();
        }
        let order = plan.topo_order()?;
        let mut outputs: BTreeMap<usize, NodeOutput> = BTreeMap::new();
        let mut traces = Vec::with_capacity(order.len());
        for id in order {
            let node = plan
                .node(id)
                .ok_or_else(|| ArynError::InvalidPlan(format!("node out_{id} missing from plan")))?;
            let start = Instant::now();
            let before = self.meter_snapshot();
            let cache_before = self.cache_snapshot();
            let inputs: Vec<&NodeOutput> = node
                .inputs
                .iter()
                .map(|i| {
                    outputs.get(i).ok_or_else(|| {
                        ArynError::InvalidPlan(format!("input out_{i} not executed before out_{id}"))
                    })
                })
                .collect::<Result<_>>()?;
            let rows_in = inputs.iter().map(|o| o.len()).sum();
            let out = self.run_node(&node.op, &inputs, &outputs, &run_pins)?;
            let delta = self.meter_snapshot().since(&before);
            let cache_delta = self.cache_snapshot().since(&cache_before);
            let trace = NodeTrace {
                node_id: id,
                op_kind: node.op.kind().to_string(),
                description: node.description.clone(),
                rows_in,
                rows_out: out.len(),
                wall_ms: start.elapsed().as_secs_f64() * 1000.0,
                llm_calls: delta.calls,
                retries: delta.retries,
                input_tokens: delta.usage.input_tokens as u64,
                output_tokens: delta.usage.output_tokens as u64,
                cost_usd: delta.usage.cost_usd,
                cache_hits: cache_delta.hits,
                cost_saved_usd: cache_delta.cost_saved_usd,
                batched_calls: delta.batched_calls,
                calls_saved: delta.calls_saved,
                breaker_trips: delta.breaker_trips,
                fallback_calls: delta.fallback_calls,
                degraded_docs: delta.degraded_docs,
                sample_ids: out
                    .rows()
                    .map(|r| r.iter().take(3).map(|d| d.id.0.clone()).collect())
                    .unwrap_or_default(),
                scalar: out.scalar().cloned(),
            };
            self.record_node_span(&trace);
            traces.push(trace);
            outputs.insert(id, out);
        }
        let output = outputs.remove(&plan.result).ok_or_else(|| {
            ArynError::InvalidPlan(format!("result node out_{} was never executed", plan.result))
        })?;
        let answer = render_answer(&output);
        Ok(LunaResult {
            output,
            answer,
            traces,
        })
    }

    /// The executor's analyzer gate. Schemas are discovered best-effort from
    /// the stores the plan scans: a store that cannot be opened is skipped
    /// (the scan operator surfaces its own `Index` error at runtime), so the
    /// gate never masks unknown-index failures with a different error kind.
    fn check_plan(&self, plan: &Plan, pins: &BTreeMap<String, Arc<StoreSnapshot>>) -> Result<()> {
        let mut schemas: Vec<crate::schema::IndexSchema> = Vec::new();
        for n in &plan.nodes {
            let PlanOp::QueryDatabase { index, .. } = &n.op else { continue };
            if schemas.iter().any(|s| s.index == *index) {
                continue;
            }
            // Discover from the run's pinned snapshot so the analyzer and
            // the scan operators judge the same frozen view.
            if let Some(snap) = pins.get(index) {
                schemas.push(crate::schema::IndexSchema::discover_snapshot(index, snap));
            } else if let Ok(schema) = self
                .ctx
                .with_store(index, |s| crate::schema::IndexSchema::discover(index, s))
            {
                schemas.push(schema);
            }
        }
        let analysis = crate::analyze::analyze(plan, &schemas);
        if self.telemetry.is_enabled() {
            self.telemetry.count(
                "analyze:execute",
                "analyzer",
                &[
                    ("errors", analysis.errors().len() as u64),
                    (
                        "diagnostics",
                        analysis.diagnostics.len() as u64,
                    ),
                ],
            );
        }
        if analysis.has_errors() {
            return Err(ArynError::InvalidPlan(format!(
                "refusing to execute a plan with analyzer errors:\n{}",
                analysis.render_errors()
            )));
        }
        Ok(())
    }

    /// Combined call-cache snapshot across the default client and all pinned
    /// model clients, deduplicated by cache identity (Luna shares one cache
    /// across all of them).
    fn cache_snapshot(&self) -> aryn_llm::CacheStats {
        let mut seen: Vec<*const aryn_llm::LlmCallCache> = Vec::new();
        let mut total = aryn_llm::CacheStats::default();
        for client in std::iter::once(&self.client).chain(self.model_clients.values()) {
            for tier in client.fallback_chain() {
                if let Some(cache) = tier.cache() {
                    let ptr = std::sync::Arc::as_ptr(&cache);
                    if !seen.contains(&ptr) {
                        seen.push(ptr);
                        total.merge(&cache.stats());
                    }
                }
            }
        }
        total
    }

    /// Combined snapshot across the default client and all pinned model
    /// clients, deduplicated by meter identity.
    fn meter_snapshot(&self) -> UsageStats {
        let mut seen: Vec<*const aryn_llm::UsageMeter> = Vec::new();
        let mut total = UsageStats::default();
        for client in std::iter::once(&self.client).chain(self.model_clients.values()) {
            for tier in client.fallback_chain() {
                let meter = tier.meter();
                let ptr = std::sync::Arc::as_ptr(&meter);
                if !seen.contains(&ptr) {
                    seen.push(ptr);
                    total.merge(&meter.snapshot());
                }
            }
        }
        total
    }

    fn record_node_span(&self, t: &NodeTrace) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let mut span = self
            .telemetry
            .span(format!("out_{}:{}", t.node_id, t.op_kind), "operator");
        span.note(t.description.clone());
        span.set("rows_in", t.rows_in as u64)
            .set("rows_out", t.rows_out as u64)
            .set("llm_calls", t.llm_calls)
            .set("retries", t.retries)
            .set("llm_input_tokens", t.input_tokens)
            .set("llm_output_tokens", t.output_tokens)
            .gauge("wall_ms", t.wall_ms)
            .gauge("llm_cost_usd", t.cost_usd);
        // Only when nonzero, so cache-off traces keep their historical
        // fingerprints (counters feed the fingerprint; gauges do not).
        if t.cache_hits > 0 {
            span.set("llm_cache_hits", t.cache_hits);
        }
        // Likewise for batching-off traces.
        if t.batched_calls > 0 {
            span.set("llm_batched_calls", t.batched_calls);
        }
        if t.calls_saved > 0 {
            span.set("llm_calls_saved", t.calls_saved);
        }
        if t.cost_saved_usd > 0.0 {
            span.gauge("llm_cost_saved_usd", t.cost_saved_usd);
        }
        // Reliability counters, also nonzero-only: traces recorded without a
        // policy keep their historical fingerprints.
        if t.breaker_trips > 0 {
            span.set("breaker_trips", t.breaker_trips);
        }
        if t.fallback_calls > 0 {
            span.set("fallback_calls", t.fallback_calls);
        }
        if t.degraded_docs > 0 {
            span.set("degraded_docs", t.degraded_docs);
        }
        span.finish();
    }

    /// One span per live ingest stream feeding a store this run pinned:
    /// stream progress (docs/seals/compactions) and the current index lag,
    /// so `explain_analyze` can say what was churning under the question.
    /// Quiet stores record nothing — traces without streams keep their
    /// historical fingerprints.
    fn record_ingest_spans(&self, pins: &BTreeMap<String, Arc<StoreSnapshot>>) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for index in pins.keys() {
            let Some(stream) = self.ctx.ingest_stream(index) else { continue };
            if stream.docs() == 0 {
                continue;
            }
            let mut span = self.telemetry.span(format!("ingest@{index}"), "ingest");
            span.note(format!("index={index}"));
            span.set("ingest_docs", stream.docs() as u64)
                .set("ingest_seals", stream.seals() as u64)
                .set("ingest_compactions", stream.compactions() as u64)
                .gauge("index_lag_ms", stream.last_lag_ms())
                .gauge("index_lag_max_ms", stream.max_lag_ms());
            // Durability/recovery counters, nonzero-only: in-memory stores
            // (and pre-durability traces) keep their fingerprints.
            if let Ok(stats) = self.ctx.with_store(index, |s| s.stats()) {
                for (key, n) in [
                    ("wal_appends", stats.wal_appends),
                    ("wal_replayed", stats.wal_replayed),
                    ("torn_tail_truncated", stats.torn_tail_truncated),
                    ("segments_recovered", stats.segments_recovered),
                    ("orphans_removed", stats.orphans_removed),
                    ("storage_io_errors", stats.io_errors),
                ] {
                    if n > 0 {
                        span.set(key, n as u64);
                    }
                }
            }
            span.finish();
        }
    }

    fn run_node(
        &self,
        op: &PlanOp,
        inputs: &[&NodeOutput],
        all: &BTreeMap<usize, NodeOutput>,
        pins: &BTreeMap<String, Arc<StoreSnapshot>>,
    ) -> Result<NodeOutput> {
        let rows_of = |i: usize| -> Result<Vec<Document>> {
            inputs
                .get(i)
                .and_then(|o| o.rows())
                .map(|r| r.to_vec())
                .ok_or_else(|| ArynError::Exec(format!("{} expects a row input", op.kind())))
        };
        match op {
            PlanOp::QueryDatabase { index, prefilter } => {
                let keep = |d: &&Document| {
                    prefilter.iter().all(|(path, val)| prop_matches(d, path, val))
                };
                let docs = match pins.get(index) {
                    // The run's pinned snapshot: consistent reads while
                    // ingestion continues underneath.
                    Some(snap) => snap.scan().filter(keep).cloned().collect::<Vec<_>>(),
                    None => self.ctx.with_store(index, |s| {
                        s.scan().filter(keep).cloned().collect::<Vec<_>>()
                    })?,
                };
                Ok(NodeOutput::Rows(docs))
            }
            PlanOp::BasicFilter { path, value } => {
                let docs = rows_of(0)?;
                Ok(NodeOutput::Rows(
                    docs.into_iter()
                        .filter(|d| prop_matches(d, path, value))
                        .collect(),
                ))
            }
            PlanOp::RangeFilter { path, lo, hi } => {
                let docs = rows_of(0)?;
                Ok(NodeOutput::Rows(
                    docs.into_iter()
                        .filter(|d| {
                            let Some(v) = d.prop(path) else { return false };
                            if v.is_null() {
                                return false;
                            }
                            let ge = lo.as_ref().is_none_or(|l| {
                                v.cmp_total(l) != std::cmp::Ordering::Less
                            });
                            let le = hi.as_ref().is_none_or(|h| {
                                v.cmp_total(h) != std::cmp::Ordering::Greater
                            });
                            ge && le
                        })
                        .collect(),
                ))
            }
            PlanOp::LlmFilter { predicate, model } => {
                let docs = rows_of(0)?;
                let client = self.client_for(model);
                let out = self
                    .ctx
                    .read_docs(docs)
                    .llm_filter(client, predicate)
                    .collect()?;
                Ok(NodeOutput::Rows(out))
            }
            PlanOp::LlmExtract { field, ftype, model } => {
                let docs = rows_of(0)?;
                let client = self.client_for(model);
                let schema = aryn_core::obj! { field.as_str() => ftype.as_str() };
                let out = self
                    .ctx
                    .read_docs(docs)
                    .extract_properties(client, schema)
                    .collect()?;
                Ok(NodeOutput::Rows(out))
            }
            PlanOp::Count => Ok(NodeOutput::Scalar(Value::Int(rows_of(0)?.len() as i64))),
            PlanOp::Aggregate { key, func, path } => {
                let docs = rows_of(0)?;
                if key.is_empty() {
                    // Whole-collection aggregate → scalar.
                    let agg = agg_from_name(func, path)?;
                    let groups =
                        sycamore::transforms::reduce_by_key(docs, "__all__", &[("value".into(), agg)]);
                    let v = groups
                        .first()
                        .and_then(|g| g.prop("value"))
                        .cloned()
                        .unwrap_or(Value::Null);
                    Ok(NodeOutput::Scalar(v))
                } else {
                    let agg = agg_from_name(func, path)?;
                    Ok(NodeOutput::Rows(sycamore::transforms::reduce_by_key(
                        docs,
                        key,
                        &[("value".into(), agg)],
                    )))
                }
            }
            PlanOp::Sort { path, descending } => Ok(NodeOutput::Rows(
                sycamore::transforms::sort_by(rows_of(0)?, path, *descending),
            )),
            PlanOp::TopK { path, descending, k } => {
                let mut docs = sycamore::transforms::sort_by(rows_of(0)?, path, *descending);
                docs.truncate(*k);
                Ok(NodeOutput::Rows(docs))
            }
            PlanOp::Join { on } => {
                let left = rows_of(0)?;
                let right = rows_of(1)?;
                let mut out = Vec::new();
                for l in &left {
                    let Some(lv) = l.prop(on) else { continue };
                    for r in &right {
                        if r.prop(on).is_some_and(|rv| rv.loose_eq(lv)) {
                            let mut merged = l.clone();
                            if let (Some(dst), Some(src)) = (
                                merged.properties.as_object_mut(),
                                r.properties.as_object(),
                            ) {
                                for (k, v) in src {
                                    dst.entry(k.clone()).or_insert_with(|| v.clone());
                                }
                            }
                            merged.lineage.push(
                                aryn_core::LineageRecord::new("join", on.clone())
                                    .with_sources(vec![l.id.0.clone(), r.id.0.clone()]),
                            );
                            out.push(merged);
                        }
                    }
                }
                Ok(NodeOutput::Rows(out))
            }
            PlanOp::Math { expr } => {
                // Substitute {out_N} with scalar values from the whole DAG.
                let resolved = substitute_outputs(expr, all)?;
                let v = eval_math(&resolved)?;
                Ok(NodeOutput::Scalar(Value::Float(v)))
            }
            PlanOp::GraphExpand { relation, output } => {
                let graph = self.graph.as_ref().ok_or_else(|| {
                    ArynError::Exec("graphExpand requires a knowledge graph".into())
                })?;
                let docs = rows_of(0)?;
                let mut out = Vec::with_capacity(docs.len());
                for mut d in docs {
                    // Resolve the row to a graph node: by a name-like
                    // property first, then by document id.
                    let node_id = ["company", "entity", "name"]
                        .iter()
                        .find_map(|k| d.prop(k).and_then(Value::as_str).map(str::to_string))
                        .unwrap_or_else(|| d.id.0.clone());
                    let mut neighbors: Vec<String> = graph
                        .neighbors(&node_id, Some(relation))
                        .into_iter()
                        .map(|n| n.id.clone())
                        .chain(
                            graph
                                .incoming(&node_id, Some(relation))
                                .into_iter()
                                .map(|n| n.id.clone()),
                        )
                        .collect();
                    neighbors.sort();
                    neighbors.dedup();
                    d.properties.set_path(
                        output,
                        Value::Array(neighbors.into_iter().map(Value::from).collect()),
                    );
                    d.lineage.push(
                        aryn_core::LineageRecord::new("graph_expand", relation.clone()),
                    );
                    out.push(d);
                }
                Ok(NodeOutput::Rows(out))
            }
            PlanOp::SummarizeData { instructions } => {
                let docs = rows_of(0)?;
                let doc = sycamore::transforms::summarize_all(&self.client, instructions, &docs)?;
                let text = doc
                    .prop("summary")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                Ok(NodeOutput::Scalar(Value::from(text)))
            }
            PlanOp::LlmGenerate { question } => {
                // Render rows (and any scalar inputs) as context and ask.
                let mut context = String::new();
                for o in inputs {
                    match o {
                        NodeOutput::Scalar(v) => {
                            context.push_str(&format!("value: {v}\n"));
                        }
                        NodeOutput::Rows(rows) => {
                            for d in rows.iter().take(40) {
                                context.push_str(&format!(
                                    "- {}: {}\n",
                                    d.id,
                                    aryn_core::json::to_string(&d.properties)
                                ));
                            }
                        }
                    }
                }
                let prompt = self
                    .client
                    .fit_prompt(&context, 512, |c| tasks::answer(question, c));
                let v = self.client.generate_json(&prompt, 512)?;
                let answer = v
                    .get("answer")
                    .map(|a| a.display_text())
                    .unwrap_or_default();
                Ok(NodeOutput::Scalar(Value::from(answer)))
            }
        }
    }
}

/// Property match with the `_id` pseudo-field (the document key).
fn prop_matches(d: &Document, path: &str, val: &Value) -> bool {
    if path == "_id" {
        return val.as_str().is_some_and(|s| d.id.as_str().eq_ignore_ascii_case(s));
    }
    d.prop(path).is_some_and(|v| v.loose_eq(val))
}

fn agg_from_name(func: &str, path: &str) -> Result<sycamore::Agg> {
    Ok(match func {
        "count" | "" => sycamore::Agg::Count,
        "sum" => sycamore::Agg::Sum(path.to_string()),
        "avg" | "mean" | "average" => sycamore::Agg::Avg(path.to_string()),
        "min" => sycamore::Agg::Min(path.to_string()),
        "max" => sycamore::Agg::Max(path.to_string()),
        other => {
            return Err(ArynError::InvalidPlan(format!(
                "unknown aggregate function {other:?}"
            )))
        }
    })
}

fn render_answer(output: &NodeOutput) -> String {
    match output {
        NodeOutput::Scalar(Value::Str(s)) => s.clone(),
        NodeOutput::Scalar(v) => v.to_string(),
        NodeOutput::Rows(rows) => {
            let mut out = String::new();
            for d in rows.iter().take(10) {
                out.push_str(&format!("{}: {}\n", d.id, aryn_core::json::to_string(&d.properties)));
            }
            if rows.len() > 10 {
                out.push_str(&format!("... ({} rows total)\n", rows.len()));
            }
            out
        }
    }
}

/// Replaces `{out_N}` references with their scalar values.
fn substitute_outputs(expr: &str, all: &BTreeMap<usize, NodeOutput>) -> Result<String> {
    let mut out = String::new();
    let mut rest = expr;
    while let Some(start) = rest.find("{out_") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 5..];
        let end = after
            .find('}')
            .ok_or_else(|| ArynError::Exec("unclosed {out_N} reference".into()))?;
        let id: usize = after[..end]
            .parse()
            .map_err(|_| ArynError::Exec(format!("bad node reference {{out_{}}}", &after[..end])))?;
        let node = all
            .get(&id)
            .ok_or_else(|| ArynError::Exec(format!("math references out_{id} which has not run")))?;
        let v = match node {
            NodeOutput::Scalar(v) => v
                .as_float()
                .ok_or_else(|| ArynError::Exec(format!("out_{id} is not numeric")))?,
            NodeOutput::Rows(r) => r.len() as f64,
        };
        out.push_str(&format!("{v}"));
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Evaluates arithmetic: `+ - * /`, parentheses, unary minus.
pub fn eval_math(expr: &str) -> Result<f64> {
    let tokens = math_tokens(expr)?;
    let mut pos = 0;
    let v = parse_expr(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(ArynError::Exec(format!("trailing tokens in math expr {expr:?}")));
    }
    Ok(v)
}

#[derive(Debug, PartialEq)]
enum Tok {
    Num(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn math_tokens(expr: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'e'
                        || (bytes[i] == b'-' && i > start && bytes[i - 1] == b'e'))
                {
                    i += 1;
                }
                let n: f64 = expr[start..i]
                    .parse()
                    .map_err(|_| ArynError::Exec(format!("bad number in {expr:?}")))?;
                out.push(Tok::Num(n));
            }
            other => {
                return Err(ArynError::Exec(format!(
                    "unexpected character {other:?} in math expr"
                )))
            }
        }
    }
    Ok(out)
}

fn parse_expr(toks: &[Tok], pos: &mut usize) -> Result<f64> {
    let mut v = parse_term(toks, pos)?;
    while *pos < toks.len() {
        match toks[*pos] {
            Tok::Plus => {
                *pos += 1;
                v += parse_term(toks, pos)?;
            }
            Tok::Minus => {
                *pos += 1;
                v -= parse_term(toks, pos)?;
            }
            _ => break,
        }
    }
    Ok(v)
}

fn parse_term(toks: &[Tok], pos: &mut usize) -> Result<f64> {
    let mut v = parse_factor(toks, pos)?;
    while *pos < toks.len() {
        match toks[*pos] {
            Tok::Star => {
                *pos += 1;
                v *= parse_factor(toks, pos)?;
            }
            Tok::Slash => {
                *pos += 1;
                let d = parse_factor(toks, pos)?;
                if d == 0.0 {
                    return Err(ArynError::Exec("division by zero in math expr".into()));
                }
                v /= d;
            }
            _ => break,
        }
    }
    Ok(v)
}

fn parse_factor(toks: &[Tok], pos: &mut usize) -> Result<f64> {
    match toks.get(*pos) {
        Some(Tok::Num(n)) => {
            *pos += 1;
            Ok(*n)
        }
        Some(Tok::Minus) => {
            *pos += 1;
            Ok(-parse_factor(toks, pos)?)
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let v = parse_expr(toks, pos)?;
            match toks.get(*pos) {
                Some(Tok::RParen) => {
                    *pos += 1;
                    Ok(v)
                }
                _ => Err(ArynError::Exec("missing closing paren".into())),
            }
        }
        _ => Err(ArynError::Exec("expected number or '('".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn math_evaluator() {
        assert_eq!(eval_math("1 + 2 * 3").unwrap(), 7.0);
        assert_eq!(eval_math("(1 + 2) * 3").unwrap(), 9.0);
        assert_eq!(eval_math("100 * 4 / 8").unwrap(), 50.0);
        assert_eq!(eval_math("-3 + 5").unwrap(), 2.0);
        assert_eq!(eval_math("2.5 * 2").unwrap(), 5.0);
        assert!(eval_math("1 / 0").is_err());
        assert!(eval_math("1 +").is_err());
        assert!(eval_math("(1").is_err());
        assert!(eval_math("foo").is_err());
        assert!(eval_math("1 2").is_err());
    }

    #[test]
    fn substitution_resolves_scalars_and_rowcounts() {
        let mut all = BTreeMap::new();
        all.insert(2usize, NodeOutput::Scalar(Value::Int(8)));
        all.insert(4usize, NodeOutput::Rows(vec![Document::new("a"), Document::new("b")]));
        let s = substitute_outputs("100 * {out_4} / {out_2}", &all).unwrap();
        assert_eq!(eval_math(&s).unwrap(), 25.0);
        assert!(substitute_outputs("{out_9}", &all).is_err());
        assert!(substitute_outputs("{out_", &all).is_err());
    }

    #[test]
    fn render_answer_shapes() {
        assert_eq!(render_answer(&NodeOutput::Scalar(Value::from("hi"))), "hi");
        assert_eq!(render_answer(&NodeOutput::Scalar(Value::Int(3))), "3");
        let rows = NodeOutput::Rows(vec![Document::new("x")]);
        assert!(render_answer(&rows).contains("x:"));
    }
}
