//! Code generation: plans render as Python-like Sycamore code, exactly the
//! Figure 6 view — "The query execution code is easy for a technically savvy
//! user to understand and modify" (§6.1).

use crate::analyze::Analysis;
use crate::ops::{Plan, PlanOp};
use aryn_core::json;

/// Renders a plan as the Python-like Sycamore script of Figure 6.
pub fn to_python(plan: &Plan) -> String {
    let mut out = String::new();
    let order = plan.topo_order().unwrap_or_default();
    for id in &order {
        let Some(n) = plan.node(*id) else { continue };
        let var = format!("out_{id}");
        let inp = |i: usize| format!("out_{}", n.inputs.get(i).copied().unwrap_or(0));
        let line = match &n.op {
            PlanOp::QueryDatabase { index, prefilter } => {
                if prefilter.is_empty() {
                    format!("{var} = context.read.opensearch(index_name=\"{index}\")")
                } else {
                    let filters: Vec<String> = prefilter
                        .iter()
                        .map(|(k, v)| format!("{k}={}", json::to_string(v)))
                        .collect();
                    format!(
                        "{var} = context.read.opensearch(index_name=\"{index}\", {})",
                        filters.join(", ")
                    )
                }
            }
            PlanOp::BasicFilter { path, value } => format!(
                "{var} = {}.filter_eq(\"{path}\", {})",
                inp(0),
                json::to_string(value)
            ),
            PlanOp::RangeFilter { path, lo, hi } => format!(
                "{var} = {}.filter_range(\"{path}\", lo={}, hi={})",
                inp(0),
                lo.as_ref().map(json::to_string).unwrap_or_else(|| "None".into()),
                hi.as_ref().map(json::to_string).unwrap_or_else(|| "None".into()),
            ),
            PlanOp::LlmFilter { predicate, model } => {
                if model.is_empty() {
                    format!("{var} = {}.filter(\"{predicate}\")", inp(0))
                } else {
                    format!("{var} = {}.filter(\"{predicate}\", model=\"{model}\")", inp(0))
                }
            }
            PlanOp::LlmExtract { field, ftype, model } => {
                if model.is_empty() {
                    format!(
                        "{var} = {}.extract_properties({{\"{field}\": \"{ftype}\"}})",
                        inp(0)
                    )
                } else {
                    format!(
                        "{var} = {}.extract_properties({{\"{field}\": \"{ftype}\"}}, model=\"{model}\")",
                        inp(0)
                    )
                }
            }
            PlanOp::Count => format!("{var} = {}.count()", inp(0)),
            PlanOp::Aggregate { key, func, path } => {
                if key.is_empty() {
                    format!("{var} = {}.aggregate(\"{func}\", \"{path}\")", inp(0))
                } else {
                    format!(
                        "{var} = {}.reduce_by_key(\"{key}\", \"{func}\", \"{path}\")",
                        inp(0)
                    )
                }
            }
            PlanOp::Sort { path, descending } => {
                format!("{var} = {}.sort(\"{path}\", descending={})", inp(0), py_bool(*descending))
            }
            PlanOp::TopK { path, descending, k } => format!(
                "{var} = {}.top_k(\"{path}\", k={k}, descending={})",
                inp(0),
                py_bool(*descending)
            ),
            PlanOp::Join { on } => {
                format!("{var} = {}.join({}, on=\"{on}\")", inp(0), inp(1))
            }
            PlanOp::Math { expr } => format!("{var} = math_operation(expr=\"{expr}\")"),
            PlanOp::GraphExpand { relation, output } => format!(
                "{var} = {}.graph_expand(relation=\"{relation}\", output=\"{output}\")",
                inp(0)
            ),
            PlanOp::SummarizeData { instructions } => {
                format!("{var} = {}.summarize_data(\"{instructions}\")", inp(0))
            }
            PlanOp::LlmGenerate { question } => {
                format!("{var} = llm_generate(\"{question}\", {})", inp(0))
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!("result = out_{}\n", plan.result));
    out
}

/// Renders a plan as Figure 6 code with analyzer findings interleaved as
/// `#` comments above the line they refer to (plan-wide findings lead the
/// script) — the REPL `check` view.
pub fn to_python_annotated(plan: &Plan, analysis: &Analysis) -> String {
    let mut out = String::new();
    for d in &analysis.diagnostics {
        if d.node_id.is_none() {
            out.push_str(&format!("# {d}\n"));
        }
    }
    for line in to_python(plan).lines() {
        let id = line
            .strip_prefix("out_")
            .and_then(|rest| rest.split(' ').next())
            .and_then(|n| n.parse::<usize>().ok());
        if let Some(id) = id {
            for d in &analysis.diagnostics {
                if d.node_id == Some(id) {
                    out.push_str(&format!("# {d}\n"));
                }
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn py_bool(b: bool) -> &'static str {
    if b {
        "True"
    } else {
        "False"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{PlanNode, PlanOp};
    use aryn_core::Value;

    fn figure5_plan() -> Plan {
        Plan {
            nodes: vec![
                PlanNode {
                    id: 0,
                    op: PlanOp::QueryDatabase { index: "ntsb".into(), prefilter: vec![] },
                    inputs: vec![],
                    description: String::new(),
                },
                PlanNode {
                    id: 1,
                    op: PlanOp::LlmFilter { predicate: "caused by environmental factors".into(), model: String::new() },
                    inputs: vec![0],
                    description: String::new(),
                },
                PlanNode { id: 2, op: PlanOp::Count, inputs: vec![1], description: String::new() },
                PlanNode {
                    id: 3,
                    op: PlanOp::LlmFilter { predicate: "caused by wind".into(), model: String::new() },
                    inputs: vec![0],
                    description: String::new(),
                },
                PlanNode { id: 4, op: PlanOp::Count, inputs: vec![3], description: String::new() },
                PlanNode {
                    id: 5,
                    op: PlanOp::Math { expr: "100 * {out_4}/{out_2}".into() },
                    inputs: vec![2, 4],
                    description: String::new(),
                },
            ],
            result: 5,
        }
    }

    #[test]
    fn figure6_rendering_matches_paper_shape() {
        // The paper's Figure 6 code, line for line in structure.
        let code = to_python(&figure5_plan());
        let lines: Vec<&str> = code.lines().collect();
        assert_eq!(lines[0], "out_0 = context.read.opensearch(index_name=\"ntsb\")");
        assert_eq!(lines[1], "out_1 = out_0.filter(\"caused by environmental factors\")");
        assert_eq!(lines[2], "out_2 = out_1.count()");
        assert_eq!(lines[3], "out_3 = out_0.filter(\"caused by wind\")");
        assert_eq!(lines[4], "out_4 = out_3.count()");
        assert_eq!(lines[5], "out_5 = math_operation(expr=\"100 * {out_4}/{out_2}\")");
        assert_eq!(lines[6], "result = out_5");
    }

    #[test]
    fn renders_every_operator() {
        let ops = vec![
            PlanOp::BasicFilter { path: "state".into(), value: Value::from("AK") },
            PlanOp::RangeFilter { path: "year".into(), lo: Some(Value::Int(2019)), hi: None },
            PlanOp::LlmExtract { field: "cause".into(), ftype: "string".into(), model: "llama-7b-sim".into() },
            PlanOp::Aggregate { key: "state".into(), func: "count".into(), path: String::new() },
            PlanOp::Sort { path: "year".into(), descending: true },
            PlanOp::TopK { path: "growth_pct".into(), descending: true, k: 5 },
            PlanOp::SummarizeData { instructions: "overview".into() },
            PlanOp::LlmGenerate { question: "why?".into() },
        ];
        let mut nodes = vec![PlanNode {
            id: 0,
            op: PlanOp::QueryDatabase { index: "x".into(), prefilter: vec![("a".into(), Value::Int(1))] },
            inputs: vec![],
            description: String::new(),
        }];
        for (i, op) in ops.into_iter().enumerate() {
            nodes.push(PlanNode { id: i + 1, op, inputs: vec![i], description: String::new() });
        }
        let result = nodes.len() - 1;
        let code = to_python(&Plan { nodes, result });
        for needle in [
            "a=1", "filter_eq", "filter_range", "extract_properties", "model=\"llama-7b-sim\"",
            "reduce_by_key", "sort(", "top_k(", "summarize_data", "llm_generate", "descending=True",
        ] {
            assert!(code.contains(needle), "missing {needle} in:\n{code}");
        }
    }

    #[test]
    fn annotated_rendering_interleaves_diagnostics() {
        let plan = figure5_plan();
        let mut analysis = crate::analyze::Analysis::default();
        analysis.diagnostics.push(
            aryn_core::Diagnostic::warning("dead-node", "node 3 does not contribute").at_node(3),
        );
        analysis
            .diagnostics
            .push(aryn_core::Diagnostic::hint("plan-wide", "example plan-level finding"));
        let code = to_python_annotated(&plan, &analysis);
        let lines: Vec<&str> = code.lines().collect();
        assert!(lines[0].starts_with("# hint[plan-wide]"));
        let warn_pos = lines.iter().position(|l| l.contains("warning[dead-node]")).unwrap();
        assert!(lines[warn_pos + 1].starts_with("out_3 = "), "{code}");
    }

    #[test]
    fn join_renders_two_inputs() {
        let plan = Plan {
            nodes: vec![
                PlanNode { id: 0, op: PlanOp::QueryDatabase { index: "a".into(), prefilter: vec![] }, inputs: vec![], description: String::new() },
                PlanNode { id: 1, op: PlanOp::QueryDatabase { index: "b".into(), prefilter: vec![] }, inputs: vec![], description: String::new() },
                PlanNode { id: 2, op: PlanOp::Join { on: "company".into() }, inputs: vec![0, 1], description: String::new() },
            ],
            result: 2,
        };
        let code = to_python(&plan);
        assert!(code.contains("out_2 = out_0.join(out_1, on=\"company\")"));
    }
}
