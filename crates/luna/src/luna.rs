//! The Luna front end: natural-language question → plan (via the LLM) →
//! optimize → Sycamore execution, with human-in-the-loop plan editing.

use crate::analyze::Analysis;
use crate::exec::{LunaResult, PlanExecutor};
use crate::ops::{Plan, PlanOp};
use crate::optimize::{optimize, Optimized, OptimizerCfg};
use crate::planner::{PlannerEngine, RulePlanner};
use crate::schema::IndexSchema;
use aryn_core::{ArynError, Result, Severity, Value};
use aryn_llm::prompt::tasks;
use aryn_llm::{
    CacheStats, FairShare, LlmCallCache, LlmClient, MockLlm, ModelSpec, ReliabilitySlot,
    ReliabilityState, SimConfig, TaskEngine, UsageStats,
};
use aryn_telemetry::{Telemetry, Trace};
use std::sync::Arc;

/// Serving-mode wiring for one Luna session (see [`crate::serve`]). The
/// multi-tenant service builds shared infrastructure — call cache, fair-share
/// gate, tenant-scoped reliability forks, discovered schemas, the knowledge
/// graph — exactly once and injects it here, so creating a session is cheap
/// and sessions never mutate the shared context's global knobs.
pub struct SessionWiring {
    /// Tenant the session belongs to (fair-share identity; also the breaker
    /// scope when the reliability state is tenant-scoped).
    pub tenant: String,
    /// Tag stamped on every stage this session executes (conventionally
    /// `tenant/session-N`), reported via `StageStats::tenant` and stage
    /// span notes.
    pub session_tag: String,
    /// Shared call cache. `None` = no cache for this session.
    pub call_cache: Option<Arc<LlmCallCache>>,
    /// Cache-key namespace: `Some` isolates this session's entries from
    /// other namespaces in the shared cache (per-tenant cache policy);
    /// `None` shares the global key space.
    pub cache_namespace: Option<String>,
    /// The session's reliability handle (typically a tenant-scoped fork of
    /// the service's base state). Each `ask` installs a fresh
    /// [`ReliabilityState::fork`] of it, so question budgets are isolated
    /// while breaker boards stay shared.
    pub reliability: Option<Arc<ReliabilityState>>,
    /// Fair-share LLM call-slot gate shared across all sessions.
    pub slots: Option<Arc<FairShare>>,
    /// Pre-discovered index schemas (skips per-session discovery).
    pub schemas: Option<Vec<IndexSchema>>,
    /// Prebuilt knowledge graph (skips the per-session O(docs) build).
    pub graph: Option<Arc<aryn_index::GraphStore>>,
}

/// Luna configuration.
pub struct LunaConfig {
    /// Planner model spec (plan-generation quality comes from its `plan`
    /// accuracy).
    pub planner_model: &'static ModelSpec,
    /// Default execution model.
    pub exec_model: &'static ModelSpec,
    pub sim: SimConfig,
    pub optimizer: OptimizerCfg,
    /// Re-plan attempts when the produced plan fails validation.
    pub max_replan: u32,
    /// Override for the planner brain registered on the simulated LLM
    /// (defaults to [`PlannerEngine`] over the discovered schemas). Tests
    /// inject engines here to exercise the repair loop.
    pub planner_engine: Option<Box<dyn TaskEngine>>,
    /// Enable the content-addressed LLM call cache ([`aryn_llm::cache`]):
    /// one cache shared by the planner, the default execution client, and
    /// every pinned model client, so repeated questions in a session reuse
    /// identical temperature-0 completions. Off by default (call counts stay
    /// exact for tests and benchmarks that pin them).
    pub call_cache: bool,
    /// In-memory entry bound for the call cache (LRU beyond this).
    pub call_cache_capacity: usize,
    /// Optional JSONL disk tier directory (conventionally the lake dir):
    /// entries persist across Luna instances and processes.
    pub call_cache_dir: Option<std::path::PathBuf>,
    /// Cross-document micro-batching width for batchable semantic operators
    /// (`llmFilter`, `llmExtract`): up to this many documents share one
    /// packed LLM call. 1 = off (the default; call counts stay exact for
    /// tests and benchmarks that pin them).
    pub batch_max_items: usize,
    /// Token budget for one packed micro-batch payload.
    pub batch_token_budget: usize,
    /// Reliability policy ([`aryn_llm::reliability`]): per-call timeouts,
    /// a per-question deadline over the simulated clock, circuit breakers,
    /// and model-degradation chains (each execution model falls back to the
    /// next-cheaper catalogue tier, ultimately string matching). `None`
    /// (the default) keeps every call unguarded and call counts exact.
    pub reliability: Option<aryn_llm::ReliabilityPolicy>,
    /// Deterministic fault schedule ([`aryn_llm::chaos`]) injected in front
    /// of every execution model: rate-limit storms, timeout bursts,
    /// malformed-JSON streaks, endpoint blackouts. `None` = calm.
    pub chaos: Option<aryn_llm::ChaosSchedule>,
    /// Worker threads for the engine's morsel-driven per-document stages.
    /// 1 (the default) runs sequentially; higher counts split every fused
    /// per-doc segment into work-stealing morsels. Never changes results —
    /// only wall time and the per-worker telemetry gauges.
    pub exec_workers: usize,
    /// Documents per executor work morsel (upper bound; small inputs split
    /// finer automatically).
    pub exec_morsel_size: usize,
    /// How idle executor workers acquire morsels.
    pub exec_steal: sycamore::StealPolicy,
    /// Run the static cost analyzer ([`crate::costmodel`]) over every plan:
    /// L22–L27 feasibility/liveness diagnostics join the semantic analysis
    /// (warnings only), and each answer carries a [`crate::costmodel::CostReport`]
    /// that `explain_analyze` renders as predicted-vs-actual.
    pub analyze_cost: bool,
    /// Promote hard budget infeasibility (a deadline the optimistic latency
    /// bound already exceeds, a prompt that can never fit its model window)
    /// to Error severity: the planner repair loop re-prompts once and
    /// `Luna::plan` rejects the plan before any execution-model call.
    /// Implies `analyze_cost`.
    pub enforce_budget: bool,
    /// Optimizer rewrite: splice out `llmExtract` nodes whose field the
    /// liveness pass proves is never read downstream (with cost deltas in
    /// the optimizer notes). Answers are unchanged — extraction is 1:1.
    pub prune_dead_fields: bool,
    /// Serving-mode wiring ([`SessionWiring`]): shared infrastructure
    /// injected by the multi-tenant service. When set, Luna never mutates
    /// context-global knobs (`set_reliability`, `set_chaos`) and skips
    /// schema discovery / KG construction where prebuilt artifacts are
    /// provided. `None` (the default) is the classic single-session path.
    pub session: Option<SessionWiring>,
}

impl Default for LunaConfig {
    fn default() -> Self {
        LunaConfig {
            planner_model: &aryn_llm::GPT4_SIM,
            exec_model: &aryn_llm::GPT4_SIM,
            sim: SimConfig::default(),
            optimizer: OptimizerCfg::default(),
            max_replan: 3,
            planner_engine: None,
            call_cache: false,
            call_cache_capacity: 4096,
            call_cache_dir: None,
            batch_max_items: 1,
            batch_token_budget: 2048,
            reliability: None,
            chaos: None,
            exec_workers: 1,
            exec_morsel_size: 32,
            exec_steal: sycamore::StealPolicy::Ring,
            analyze_cost: false,
            enforce_budget: false,
            prune_dead_fields: false,
            session: None,
        }
    }
}

/// The end-to-end natural-language query system.
pub struct Luna {
    schemas: Vec<IndexSchema>,
    planner_client: LlmClient,
    executor: PlanExecutor,
    optimizer: OptimizerCfg,
    max_replan: u32,
    /// The shared call cache, when `LunaConfig::call_cache` is on.
    call_cache: Option<Arc<LlmCallCache>>,
    /// Static cost-analysis knobs, when `analyze_cost`/`enforce_budget` is
    /// on — mirrors the execution wiring so the envelope matches how plans
    /// actually run.
    cost_knobs: Option<crate::costmodel::CostKnobs>,
    enforce_budget: bool,
    /// Session-mode reliability: the session's base state plus the one slot
    /// every ladder tier holds. `ask` installs `base.fork()` into the slot,
    /// giving each question fresh budget clocks without touching the
    /// context-global reliability state other sessions may be using.
    session_reliability: Option<(Arc<ReliabilityState>, Arc<ReliabilitySlot>)>,
}

impl Luna {
    /// Builds Luna over a Sycamore context whose catalog already holds the
    /// ingested stores named in `indexes`.
    pub fn new(ctx: sycamore::Context, indexes: &[&str], cfg: LunaConfig) -> Result<Luna> {
        let mut cfg = cfg;
        let wiring = cfg.session.take();
        // A session executes on its own tagged context handle: the tag is
        // per-handle (never shared), so concurrent sessions stamp their own
        // stage stats without racing.
        let ctx = match &wiring {
            Some(w) if !w.session_tag.is_empty() => ctx.with_session_tag(&w.session_tag),
            _ => ctx,
        };
        // Apply the micro-batching knobs to the live context (a query-time
        // setting: the sinks survive, unlike `with_exec`), and let the
        // optimizer's cost model know so its notes reflect the engine's
        // actual packing width.
        let mut optimizer = cfg.optimizer.clone();
        if cfg.prune_dead_fields {
            optimizer.prune_dead_fields = true;
        }
        if cfg.batch_max_items > 1 {
            ctx.set_batch(cfg.batch_max_items, cfg.batch_token_budget);
            optimizer.batch_max_items = cfg.batch_max_items;
        }
        // Parallelism rides the same channel as batching: a live mutation of
        // the execution config, so the already-ingested sinks survive. Every
        // semantic operator Luna's plan nodes build routes through the
        // context's morsel executor and inherits these knobs.
        if cfg.exec_workers > 1 || cfg.exec_morsel_size != 32 {
            ctx.set_parallelism(cfg.exec_workers, cfg.exec_morsel_size, cfg.exec_steal);
        }
        // Reliability. Classic mode: one shared state (clock, budget,
        // per-model breakers) installed on the context, so every
        // docset-level semantic operator — including the ones Luna's plan
        // nodes build — runs under it; the chaos schedule rides the same
        // channel. Session mode: the service injects the session's state
        // and Luna NEVER touches the context-global slot (concurrent
        // sessions would trample each other); instead every client tier
        // shares one `ReliabilitySlot` that `ask` repoints at a fresh fork.
        let (reliability_state, reliability_slot) = match &wiring {
            Some(w) => {
                let state = w.reliability.clone().filter(|s| s.policy().enabled());
                let slot = state.as_ref().map(|s| ReliabilitySlot::new(Arc::clone(s)));
                (state, slot)
            }
            None => {
                let state = cfg
                    .reliability
                    .filter(|p| p.enabled())
                    .map(|p| ctx.set_reliability(p));
                (state, None)
            }
        };
        if wiring.is_none() {
            if let Some(schedule) = &cfg.chaos {
                ctx.set_chaos(schedule.clone());
            }
        }
        optimizer.degradation_chain = reliability_state.is_some();
        let schemas = match wiring.as_ref().and_then(|w| w.schemas.clone()) {
            Some(prebuilt) => prebuilt,
            None => {
                let mut schemas = Vec::new();
                for name in indexes {
                    let schema = ctx.with_store(name, |s| IndexSchema::discover(name, s))?;
                    schemas.push(schema);
                }
                schemas
            }
        };
        // The planner LLM: the rule planner registered as its `plan` brain
        // (or an injected engine, used by repair-loop tests).
        let engine = cfg.planner_engine.unwrap_or_else(|| {
            Box::new(PlannerEngine::new(RulePlanner::new(schemas.clone())))
        });
        // One call cache shared by every client Luna owns, so any operator
        // (or the planner) repeating an identical temperature-0 call hits it.
        // In session mode the service's shared cache is injected instead;
        // the session's namespace (per-tenant cache policy) and fair-share
        // slot gate ride the same attach path so every tier honors them.
        let call_cache: Option<Arc<LlmCallCache>> = match &wiring {
            Some(w) => w.call_cache.clone(),
            None if cfg.call_cache => {
                let cache = LlmCallCache::with_capacity(cfg.call_cache_capacity);
                let cache = match &cfg.call_cache_dir {
                    Some(dir) => cache.with_disk(dir)?,
                    None => cache,
                };
                Some(Arc::new(cache))
            }
            None => None,
        };
        let cache_namespace = wiring.as_ref().and_then(|w| w.cache_namespace.clone());
        let fair_slots = wiring
            .as_ref()
            .and_then(|w| w.slots.clone().map(|gate| (gate, w.tenant.clone())));
        let attach = |client: LlmClient| {
            let mut c = client;
            if let Some(cache) = &call_cache {
                c = c.with_cache(Arc::clone(cache));
            }
            if let Some(ns) = &cache_namespace {
                c = c.with_cache_namespace(ns);
            }
            if let Some((gate, tenant)) = &fair_slots {
                c = c.with_slots(Arc::clone(gate), tenant);
            }
            c
        };
        let planner_llm = MockLlm::new(cfg.planner_model, cfg.sim.clone()).with_engine(engine);
        let mut planner_client = attach(LlmClient::new(Arc::new(planner_llm)).with_policy(
            aryn_llm::RetryPolicy {
                max_reask: 4,
                ..aryn_llm::RetryPolicy::default()
            },
        ));
        // Session mode meters planning against the tenant's budget too —
        // a pushed-down question's only LLM work is its plan call, and the
        // serving layer accounts every simulated millisecond. Classic mode
        // keeps the planner unguarded (historical call counts and
        // fingerprints stay exact).
        if let Some(slot) = &reliability_slot {
            planner_client = planner_client.with_reliability_slot(Arc::clone(slot));
        }
        // Execution clients: default plus one per catalogue model, so the
        // optimizer's routing decisions have real endpoints. Under a
        // reliability policy each client is the head of a degradation
        // ladder: its fallback chain walks the cheaper catalogue tiers in
        // quality order (gpt-4-sim → gpt-3.5-sim → llama-7b-sim), every
        // tier sharing the one reliability state and call cache. Built
        // cheapest-first so each tier owns the next.
        let ladder = |primary: &'static ModelSpec| -> LlmClient {
            let start = aryn_llm::ALL_MODELS
                .iter()
                .position(|s| s.name == primary.name)
                .unwrap_or(0);
            let mut chain: Option<LlmClient> = None;
            for spec in aryn_llm::ALL_MODELS[start..].iter().rev() {
                let mut c = attach(LlmClient::new(Arc::new(MockLlm::new(spec, cfg.sim.clone()))));
                if let Some(slot) = &reliability_slot {
                    // Session mode: every tier holds the SAME slot, so one
                    // `install` per question repoints the whole ladder.
                    c = c.with_reliability_slot(Arc::clone(slot));
                } else if let Some(state) = &reliability_state {
                    c = c.with_reliability(Arc::clone(state));
                }
                if let Some(cheaper) = chain.take() {
                    c = c.with_fallback(cheaper);
                }
                chain = Some(c);
            }
            chain.unwrap_or_else(|| {
                // Unreachable while ALL_MODELS is non-empty; a bare primary
                // keeps construction total without panicking.
                attach(LlmClient::new(Arc::new(MockLlm::new(
                    primary,
                    cfg.sim.clone(),
                ))))
            })
        };
        let exec_client = if reliability_state.is_some() {
            ladder(cfg.exec_model)
        } else {
            attach(LlmClient::new(Arc::new(MockLlm::new(cfg.exec_model, cfg.sim.clone()))))
        };
        // Pay-as-you-go knowledge graph over the ingested stores (§7): built
        // from extracted properties, merged across indexes. O(docs), so
        // serving injects one prebuilt graph rather than paying per session.
        let graph: Arc<aryn_index::GraphStore> = match wiring.as_ref().and_then(|w| w.graph.clone())
        {
            Some(prebuilt) => prebuilt,
            None => {
                let mut graph = aryn_index::GraphStore::new();
                for name in indexes {
                    ctx.with_store(name, |s| {
                        let _ = crate::kg::build_earnings_graph(s, &mut graph);
                        let _ = crate::kg::build_ntsb_graph(s, &mut graph);
                    })?;
                }
                Arc::new(graph)
            }
        };
        let mut executor = PlanExecutor::new(ctx, exec_client).with_graph(graph);
        for spec in aryn_llm::ALL_MODELS {
            let client = if reliability_state.is_some() {
                ladder(spec)
            } else {
                attach(LlmClient::new(Arc::new(MockLlm::new(spec, cfg.sim.clone()))))
            };
            executor = executor.with_model(spec.name, client);
        }
        // The static cost analyzer sees the same knobs execution runs under,
        // so its intervals are a checked contract on the real traces.
        let cost_knobs = (cfg.analyze_cost || cfg.enforce_budget).then(|| {
            let retry = aryn_llm::RetryPolicy::default();
            crate::costmodel::CostKnobs {
                default_model: cfg.exec_model,
                batch_max_items: cfg.batch_max_items.max(1),
                batch_token_budget: cfg.batch_token_budget,
                max_transient: retry.max_transient,
                max_reask: retry.max_reask,
                backoff_base_ms: retry.backoff_base_ms,
                reliability: reliability_state
                    .as_ref()
                    .map(|s| s.policy())
                    .filter(|p| p.enabled()),
                chaos: cfg.chaos.is_some(),
                call_cache: call_cache.is_some(),
                workers: cfg.exec_workers.max(1),
            }
        });
        let session_reliability = match (&reliability_state, reliability_slot) {
            (Some(state), Some(slot)) => Some((Arc::clone(state), slot)),
            _ => None,
        };
        Ok(Luna {
            schemas,
            planner_client,
            executor,
            optimizer,
            max_replan: cfg.max_replan,
            call_cache,
            cost_knobs,
            enforce_budget: cfg.enforce_budget,
            session_reliability,
        })
    }

    pub fn schemas(&self) -> &[IndexSchema] {
        &self.schemas
    }

    /// The span collector shared with the executor and the Sycamore engine.
    pub fn telemetry(&self) -> Telemetry {
        self.executor.telemetry.clone()
    }

    pub fn context(&self) -> &sycamore::Context {
        &self.executor.ctx
    }

    /// The knowledge graph built from the ingested stores.
    pub fn graph(&self) -> Option<&aryn_index::GraphStore> {
        self.executor.graph.as_deref()
    }

    /// Pins every index Luna plans against to its current MVCC snapshot:
    /// until [`Luna::unpin_indexes`], each question reads those stores
    /// through the frozen views, bit-stable while an ingest stream mutates
    /// the live stores underneath. Without explicit pins, each question
    /// still pins its scanned stores to one snapshot at plan start —
    /// explicit pinning just fixes *which* snapshot across questions.
    pub fn pin_indexes(&self) -> Result<()> {
        for s in &self.schemas {
            self.executor.pin_index(&s.index)?;
        }
        Ok(())
    }

    /// Drops explicit snapshot pins; questions go back to snapshotting
    /// their stores at plan start.
    pub fn unpin_indexes(&self) {
        self.executor.unpin_all();
    }

    /// Session mode only: the reliability state the most recent `ask` ran
    /// under. Its budget clocks are that question's spend (each `ask`
    /// installs a fresh fork), so the serving layer reads per-question
    /// deadline/token/$ accounting here. `None` in classic mode.
    pub fn question_reliability(&self) -> Option<Arc<ReliabilityState>> {
        self.session_reliability
            .as_ref()
            .map(|(_, slot)| slot.current())
    }

    /// Plans a question via the LLM, validating and re-asking on failure —
    /// the paper's planning loop — then gates the result on the semantic
    /// analyzer ([`crate::analyze`]). On Error-severity diagnostics the
    /// planner is re-prompted once with the rendered diagnostics (the repair
    /// loop) before the question fails.
    pub fn plan(&self, question: &str) -> Result<Plan> {
        let (plan, analysis) = self.plan_with_analysis(question)?;
        if analysis.has_errors() {
            return Err(ArynError::InvalidPlan(format!(
                "plan failed semantic analysis:\n{}",
                analysis.render_errors()
            )));
        }
        Ok(plan)
    }

    /// Plans a question and returns the full analyzer report without gating
    /// on it — the REPL's `check` command. The repair loop still runs, so a
    /// clean result means "clean after at most one repair".
    pub fn check(&self, question: &str) -> Result<(Plan, Analysis)> {
        self.plan_with_analysis(question)
    }

    /// Analyzes an already-built plan against the discovered schemas. With
    /// `analyze_cost`/`enforce_budget` on, the static cost analyzer's
    /// L22–L27 feasibility and liveness diagnostics join the report.
    pub fn analyze(&self, plan: &Plan) -> Analysis {
        match &self.cost_knobs {
            Some(knobs) => crate::analyze::Analyzer::new()
                .with_rule(Box::new(crate::costmodel::CostRules {
                    knobs: knobs.clone(),
                    enforce: self.enforce_budget,
                }))
                .analyze(plan, &self.schemas),
            None => crate::analyze::analyze(plan, &self.schemas),
        }
    }

    /// The static cost report for a plan, when cost analysis is enabled.
    pub fn estimate_cost(&self, plan: &Plan) -> Option<crate::costmodel::CostReport> {
        self.cost_knobs
            .as_ref()
            .map(|k| crate::costmodel::estimate(plan, &self.schemas, k))
    }

    fn plan_with_analysis(&self, question: &str) -> Result<(Plan, Analysis)> {
        let schema_render = if self.schemas.is_empty() {
            Value::object()
        } else {
            self.schemas[0].render()
        };
        let base_prompt = tasks::plan(question, &schema_render, &PlanOp::KINDS);
        let mut prompt = base_prompt.clone();
        let mut last_err = None;
        let tel = self.executor.telemetry.clone();
        let meter_before = self.planner_client.stats();
        let started = std::time::Instant::now();
        // Records the planning session as one span: LLM spend, re-plan
        // attempts, and whether a valid plan came out.
        let record = |replans: u32, outcome: &str, plan_nodes: usize| {
            if !tel.is_enabled() {
                return;
            }
            let delta = self.planner_client.stats().since(&meter_before);
            let mut span = tel.span("plan", "planner");
            span.note(format!("question={question}"));
            span.note(format!("outcome={outcome}"));
            span.set("llm_calls", delta.calls)
                .set("retries", delta.retries)
                .set("replans", replans as u64)
                .set("plan_nodes", plan_nodes as u64)
                .set("llm_input_tokens", delta.usage.input_tokens as u64)
                .set("llm_output_tokens", delta.usage.output_tokens as u64)
                .gauge("wall_ms", started.elapsed().as_secs_f64() * 1e3)
                .gauge("llm_cost_usd", delta.usage.cost_usd);
            span.finish();
        };
        // One semantic repair re-prompt per question: structural re-asks are
        // cheap resamples, but a semantic failure feeds the rendered
        // diagnostics back as a prompt param (DocETL's agentic-rewrite
        // pattern applied to our validation stage).
        let mut repaired = false;
        for attempt in 0..=self.max_replan {
            let v = match self.planner_client.generate_json(&prompt, 2048) {
                Ok(v) => v,
                Err(e) => {
                    // Unparseable output counts as a failed attempt too.
                    prompt = format!(
                        "{base_prompt}\nAttempt {attempt}: no valid JSON was produced ({e}). Produce a corrected plan."
                    );
                    last_err = Some(e);
                    continue;
                }
            };
            match Plan::from_value(&v).and_then(|p| {
                p.validate()?;
                Ok(p)
            }) {
                Ok(plan) => {
                    let analysis = self.analyze(&plan);
                    self.record_analysis("analyze:plan", &analysis);
                    if analysis.has_errors() && !repaired {
                        repaired = true;
                        let rendered = analysis.render_errors();
                        prompt = tasks::plan_repair(
                            question,
                            &schema_render,
                            &PlanOp::KINDS,
                            &rendered,
                        );
                        last_err = Some(ArynError::InvalidPlan(rendered));
                        continue;
                    }
                    let nodes = plan.topo_order().map(|o| o.len()).unwrap_or(0);
                    let outcome = if analysis.has_errors() {
                        "semantic-errors"
                    } else {
                        "ok"
                    };
                    record(attempt, outcome, nodes);
                    return Ok((plan, analysis));
                }
                Err(e) => {
                    // Re-prompt with feedback: a fresh prompt also resamples
                    // the model's output, as re-asking a real LLM would.
                    prompt = format!(
                        "{base_prompt}\nAttempt {attempt}: the previous plan was invalid ({e}). Produce a corrected plan."
                    );
                    last_err = Some(e);
                }
            }
        }
        record(self.max_replan, "failed", 0);
        Err(last_err.unwrap_or_else(|| ArynError::Plan("planning failed".into())))
    }

    /// Records an analyzer verdict as telemetry counters: per-severity
    /// tallies plus one counter per lint code that fired.
    fn record_analysis(&self, site: &str, analysis: &Analysis) {
        let tel = &self.executor.telemetry;
        if !tel.is_enabled() {
            return;
        }
        let mut counters: Vec<(&str, u64)> = vec![
            ("errors", analysis.count(Severity::Error) as u64),
            ("warnings", analysis.count(Severity::Warning) as u64),
            ("hints", analysis.count(Severity::Hint) as u64),
        ];
        let mut by_code: std::collections::BTreeMap<&str, u64> = Default::default();
        for d in &analysis.diagnostics {
            *by_code.entry(d.code).or_insert(0) += 1;
        }
        counters.extend(by_code);
        tel.count(site, "analyzer", &counters);
    }

    /// Optimizes a plan, returning the rewritten plan and notes. Each
    /// optimizer decision (e.g. rewriting a semantic LLM filter into a
    /// structured string match) is recorded as a span note. Every pass
    /// output is re-checked by the analyzer; a pass that breaks the plan is
    /// an error in all build profiles.
    pub fn optimize(&self, plan: &Plan) -> Result<Optimized> {
        let optimized = optimize(plan, &self.schemas, &self.optimizer)?;
        self.record_analysis("analyze:optimize", &self.analyze(&optimized.plan));
        let tel = &self.executor.telemetry;
        if tel.is_enabled() {
            let mut span = tel.span("optimize", "optimizer");
            span.set("rewrites", optimized.notes.len() as u64).set(
                "plan_nodes",
                optimized.plan.topo_order().map(|o| o.len()).unwrap_or(0) as u64,
            );
            for note in &optimized.notes {
                span.note(note.clone());
            }
            span.finish();
        }
        Ok(optimized)
    }

    /// Executes a (validated) plan with tracing.
    pub fn execute(&self, plan: &Plan) -> Result<LunaResult> {
        self.executor.execute(plan)
    }

    /// The full path: plan → optimize → execute. The answer carries the
    /// telemetry spans recorded while serving this question (planner,
    /// optimizer, per-operator, and any engine stage spans).
    pub fn ask(&self, question: &str) -> Result<LunaAnswer> {
        // Each question gets a fresh deadline/retry budget; circuit-breaker
        // state persists across questions (an open endpoint stays open until
        // its cooldown elapses on the shared clock). Session mode repoints
        // the ladder's shared slot at a fresh fork — budget clocks are
        // question-scoped and never shared with concurrent sessions, while
        // the breaker board behind the fork stays shared. Classic mode keeps
        // the legacy in-place reset, safe because the context-installed
        // state has exactly one caller.
        if let Some((base, slot)) = &self.session_reliability {
            slot.install(base.fork());
        } else if let Some(state) = self.executor.ctx.reliability() {
            state.reset_budget();
        }
        let tel = self.executor.telemetry.clone();
        let mark = tel.span_count();
        let plan = self.plan(question)?;
        let optimized = self.optimize(&plan)?;
        // The envelope is computed over the executed (optimized) plan so the
        // per-node intervals line up with the execution traces.
        let cost = self.estimate_cost(&optimized.plan);
        let result = self.execute(&optimized.plan)?;
        let snapshot = tel.snapshot();
        let trace = Trace {
            label: snapshot.label.clone(),
            spans: snapshot.spans.into_iter().skip(mark).collect(),
        };
        Ok(LunaAnswer {
            question: question.to_string(),
            plan,
            optimized_plan: optimized.plan,
            optimizer_notes: optimized.notes,
            result,
            trace,
            cost,
        })
    }

    /// `EXPLAIN ANALYZE` for a question, including plans the analyzer gate
    /// rejects: instead of a bare error, the rendered diagnostics (code,
    /// offending node path, suggestion) and the offending plan are emitted,
    /// so a rejected plan is as explainable as an executed one.
    pub fn explain_question(&self, question: &str) -> String {
        let first_err = match self.ask(question) {
            Ok(answer) => return answer.explain_analyze(),
            Err(e) => e,
        };
        match self.check(question) {
            Ok((plan, analysis)) if analysis.has_errors() => {
                let mut out = format!(
                    "EXPLAIN ANALYZE {question:?}\nplan rejected by analyzer ({} errors, {} warnings):\n",
                    analysis.count(Severity::Error),
                    analysis.count(Severity::Warning),
                );
                for d in &analysis.diagnostics {
                    out.push_str(&format!("  {d}\n"));
                }
                out.push_str("\nRejected plan:\n");
                out.push_str(&plan.describe());
                out
            }
            _ => format!("EXPLAIN ANALYZE {question:?}\nfailed: {first_err}"),
        }
    }

    /// Executes an edited plan (the human-in-the-loop path): the plan is
    /// re-validated and re-analyzed before running.
    pub fn execute_edited(&self, plan: &Plan) -> Result<LunaResult> {
        plan.validate()?;
        let optimized = self.optimize(plan)?;
        self.execute(&optimized.plan)
    }

    /// Total planning + execution spend so far (simulated dollars),
    /// including spend by fallback tiers behind degradation ladders.
    pub fn total_cost(&self) -> f64 {
        self.usage_stats().usage.cost_usd
    }

    /// Aggregate usage across the planner and every execution client —
    /// walking each client's degradation ladder so calls a cheaper fallback
    /// tier answered are counted — deduplicated by meter identity. `calls`
    /// counts real model calls only (cache hits never meter), so call-count
    /// deltas between runs measure what the cache saved.
    pub fn usage_stats(&self) -> UsageStats {
        let mut seen: Vec<*const aryn_llm::UsageMeter> = Vec::new();
        let mut total = UsageStats::default();
        let clients = std::iter::once(&self.planner_client)
            .chain(std::iter::once(&self.executor.client))
            .chain(self.executor.model_clients.values());
        for client in clients {
            for tier in client.fallback_chain() {
                let meter = tier.meter();
                let ptr = Arc::as_ptr(&meter);
                if !seen.contains(&ptr) {
                    seen.push(ptr);
                    total.merge(&meter.snapshot());
                }
            }
        }
        total
    }

    /// Counters of the shared call cache (zeros when the cache is off).
    pub fn cache_stats(&self) -> CacheStats {
        self.call_cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// The shared call cache, when enabled.
    pub fn call_cache(&self) -> Option<Arc<LlmCallCache>> {
        self.call_cache.clone()
    }
}

/// Everything Luna can tell you about one question.
#[derive(Debug, Clone)]
pub struct LunaAnswer {
    pub question: String,
    /// The plan as the LLM produced it.
    pub plan: Plan,
    /// The plan as executed, after optimization.
    pub optimized_plan: Plan,
    pub optimizer_notes: Vec<String>,
    pub result: LunaResult,
    /// Telemetry spans recorded while serving this question.
    pub trace: Trace,
    /// Static cost envelope of the executed plan (when `analyze_cost` /
    /// `enforce_budget` is on): the actual traces must land inside it.
    pub cost: Option<crate::costmodel::CostReport>,
}

impl LunaAnswer {
    pub fn answer(&self) -> &str {
        &self.result.answer
    }

    /// The full explainability bundle: NL plan, code, notes, trace.
    pub fn explain(&self) -> String {
        format!(
            "Question: {}\n\nPlan:\n{}\nGenerated code:\n{}\nOptimizer notes:\n{}\n\nExecution trace:\n{}",
            self.question,
            self.optimized_plan.describe(),
            crate::codegen::to_python(&self.optimized_plan),
            if self.optimizer_notes.is_empty() {
                "  (none)".to_string()
            } else {
                self.optimizer_notes
                    .iter()
                    .map(|n| format!("  - {n}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            },
            self.result.render_trace()
        )
    }

    /// An `EXPLAIN ANALYZE`-style rendering: per-operator row counts, wall
    /// times, LLM calls/tokens/retries and cost, followed by the planner and
    /// optimizer spans and the trace fingerprint — the paper's §6
    /// traceability surface for one answered question.
    pub fn explain_analyze(&self) -> String {
        let mut out = format!("EXPLAIN ANALYZE {:?}\n", self.question);
        for t in &self.result.traces {
            out.push_str(&format!(
                "out_{} [{}] {}\n  rows: {} -> {}  wall: {:.2} ms\n",
                t.node_id, t.op_kind, t.description, t.rows_in, t.rows_out, t.wall_ms
            ));
            if t.llm_calls > 0 {
                out.push_str(&format!(
                    "  llm: {} calls  {} in / {} out tokens  {} retries  ${:.4}\n",
                    t.llm_calls, t.input_tokens, t.output_tokens, t.retries, t.cost_usd
                ));
            }
            if t.cache_hits > 0 {
                out.push_str(&format!(
                    "  cache: {} hits  ${:.4} saved\n",
                    t.cache_hits, t.cost_saved_usd
                ));
            }
            if t.batched_calls > 0 {
                out.push_str(&format!(
                    "  batch: {} packed calls  {} calls saved\n",
                    t.batched_calls, t.calls_saved
                ));
            }
            if t.fallback_calls + t.degraded_docs + t.breaker_trips > 0 {
                out.push_str(&format!(
                    "  degraded: {} fallback calls  {} degraded docs  {} breaker trips\n",
                    t.fallback_calls, t.degraded_docs, t.breaker_trips
                ));
            }
        }
        if let Some(p) = self.trace.spans_of_kind("planner").first() {
            out.push_str(&format!(
                "planner: {} llm calls  {} replans  {} retries\n",
                p.counter("llm_calls"),
                p.counter("replans"),
                p.counter("retries")
            ));
        }
        if let Some(o) = self.trace.spans_of_kind("optimizer").first() {
            out.push_str(&format!("optimizer: {} rewrites\n", o.counter("rewrites")));
            for note in &o.notes {
                out.push_str(&format!("  - {note}\n"));
            }
        }
        let stages = self.trace.spans_of_kind("stage");
        if !stages.is_empty() {
            // Morsel-execution summary from the engine's stage spans: these
            // are gauges (exact per-worker shard merges, but legally shaped
            // by worker count and morsel size, so they stay out of the
            // fingerprint).
            let workers = stages.iter().map(|s| s.gauge("workers") as usize).max().unwrap_or(0);
            let morsels: usize = stages.iter().map(|s| s.gauge("morsels") as usize).sum();
            let steals: usize = stages.iter().map(|s| s.gauge("steals") as usize).sum();
            if morsels > 0 {
                out.push_str(&format!(
                    "engine stages: {}  ({} workers, {} morsels, {} stolen)\n",
                    stages.len(),
                    workers,
                    morsels,
                    steals
                ));
            } else {
                out.push_str(&format!("engine stages: {}\n", stages.len()));
            }
        }
        // Live ingest streams observed under this question (recorded only
        // when a scanned store had a non-empty stream registered).
        for sp in self
            .trace
            .spans_of_kind("ingest")
            .iter()
            .filter(|s| s.name.starts_with("ingest@"))
        {
            out.push_str(&format!(
                "ingest stream [{}]: {} docs  {} seals  {} compactions  index lag {:.1} ms (max {:.1} ms)\n",
                sp.name.trim_start_matches("ingest@"),
                sp.counter("ingest_docs"),
                sp.counter("ingest_seals"),
                sp.counter("ingest_compactions"),
                sp.gauge("index_lag_ms"),
                sp.gauge("index_lag_max_ms"),
            ));
            // Durable stores add a recovery line when anything happened:
            // WAL traffic, replay at open, torn-tail truncation, or faults.
            let recovery = [
                ("wal appends", sp.counter("wal_appends")),
                ("wal replayed", sp.counter("wal_replayed")),
                ("torn tails truncated", sp.counter("torn_tail_truncated")),
                ("segments recovered", sp.counter("segments_recovered")),
                ("orphans removed", sp.counter("orphans_removed")),
                ("io errors", sp.counter("storage_io_errors")),
            ];
            if recovery.iter().any(|(_, n)| *n > 0) {
                let parts: Vec<String> = recovery
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(k, n)| format!("{n} {k}"))
                    .collect();
                out.push_str(&format!("  durability: {}\n", parts.join("  ")));
            }
        }
        out.push_str(&format!(
            "totals: {} llm calls  {} tokens  {} retries  ${:.4}  fingerprint {:016x}\n",
            self.result.total_llm_calls(),
            self.result.total_tokens(),
            self.result.total_retries(),
            self.result.total_cost(),
            self.trace.fingerprint()
        ));
        if self.result.total_cache_hits() > 0 {
            out.push_str(&format!(
                "cache: {} hits  ${:.4} saved\n",
                self.result.total_cache_hits(),
                self.result.total_cost_saved_usd()
            ));
        }
        if self.result.total_batched_calls() > 0 {
            out.push_str(&format!(
                "batch: {} packed calls  {} calls saved\n",
                self.result.total_batched_calls(),
                self.result.total_calls_saved()
            ));
        }
        let degraded = self.result.total_fallback_calls()
            + self.result.total_degraded_docs()
            + self.result.total_breaker_trips();
        if degraded > 0 {
            out.push_str(&format!(
                "degraded: {} fallback calls  {} degraded docs  {} breaker trips\n",
                self.result.total_fallback_calls(),
                self.result.total_degraded_docs(),
                self.result.total_breaker_trips()
            ));
        }
        if let Some(cost) = &self.cost {
            out.push_str(&cost.render());
            out.push_str(&format!(
                "predicted vs actual: calls {} actual {}  tokens {} actual {}  cost {} actual ${:.4}\n",
                cost.llm_calls.render(),
                self.result.total_llm_calls(),
                cost.total_tokens().render(),
                self.result.total_tokens(),
                cost.cost_usd.render(),
                self.result.total_cost(),
            ));
        }
        out
    }
}

/// Ingest helper: partitions a registered lake, extracts a property schema,
/// and writes the result as a document store — the ETL phase Luna plans
/// against. Returns the number of documents ingested.
pub fn ingest_lake(
    ctx: &sycamore::Context,
    lake: &str,
    store: &str,
    client: &LlmClient,
    schema: Value,
    detector: aryn_partitioner::Detector,
) -> Result<usize> {
    ctx.read_lake(lake)?
        .partition(
            lake,
            sycamore::PartitionCfg {
                detector,
                ..sycamore::PartitionCfg::default()
            },
        )
        .extract_properties(client, schema)
        .write_store(store)
}

/// The standard NTSB extraction schema used by examples and benches.
pub fn ntsb_schema() -> Value {
    aryn_core::obj! {
        "us_state_abbrev" => "string",
        "city" => "string",
        "date" => "string",
        "year" => "int",
        "aircraft_model" => "string",
        "cause_category" => "string",
        "cause_detail" => "string",
        "weather_related" => "bool",
        "fatal" => "int",
    }
}

/// The standard earnings extraction schema.
pub fn earnings_schema() -> Value {
    aryn_core::obj! {
        "company" => "string",
        "ticker" => "string",
        "sector" => "string",
        "quarter" => "string",
        "year" => "int",
        "revenue_musd" => "float",
        "growth_pct" => "float",
        "eps" => "float",
        "guidance" => "string",
        "ceo" => "string",
        "ceo_changed" => "bool",
        "sentiment" => "string",
    }
}
