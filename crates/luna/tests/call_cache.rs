//! The repeated-query workload the call cache exists for: running the same
//! question suite twice in one Context must spend far fewer model calls the
//! second time, while answering byte-for-byte identically — with the cache
//! on or off.

use luna::bench18::{tally, Bench18, Bench18Cfg};

fn small_cfg(call_cache: bool) -> Bench18Cfg {
    Bench18Cfg {
        n_ntsb: 12,
        n_earnings: 10,
        call_cache,
        ..Bench18Cfg::default()
    }
}

#[test]
fn repeated_suite_reuses_cached_calls_and_answers_identically() {
    let bench = Bench18::build(small_cfg(true)).unwrap();
    let baseline = bench.luna.usage_stats();

    let rows1 = bench.run().unwrap();
    let after1 = bench.luna.usage_stats();
    let calls1 = after1.since(&baseline).calls;
    assert!(calls1 > 0, "first pass must issue real model calls");

    let rows2 = bench.run().unwrap();
    let calls2 = bench.luna.usage_stats().since(&after1).calls;

    // Acceptance bar: the warm pass saves at least 30% of the calls.
    assert!(
        (calls2 as f64) < 0.7 * calls1 as f64,
        "warm run must save >=30% of model calls: cold={calls1} warm={calls2}"
    );
    let cs = bench.luna.cache_stats();
    assert!(cs.hits > 0, "cache must report hits: {cs:?}");
    assert!(cs.cost_saved_usd > 0.0);

    // Identical answers across the two passes.
    assert_eq!(rows1.len(), rows2.len());
    for ((q1, a1, g1), (q2, a2, g2)) in rows1.iter().zip(&rows2) {
        assert_eq!(q1.question, q2.question);
        assert_eq!(a1.answer(), a2.answer(), "answer drift on {:?}", q1.question);
        assert_eq!(g1, g2);
    }

    // explain_analyze surfaces the savings on the warm pass.
    let warm = rows2.iter().map(|(_, a, _)| a.explain_analyze()).collect::<Vec<_>>();
    assert!(
        warm.iter().any(|e| e.contains("cache:")),
        "at least one warm plan should report cache savings"
    );

    // And caching never changes what Luna answers: a cache-off fixture built
    // from the identical configuration produces the identical transcript.
    let plain = Bench18::build(small_cfg(false)).unwrap();
    assert!(plain.luna.call_cache().is_none());
    let rows_off = plain.run().unwrap();
    for ((q1, a1, _), (q2, a2, _)) in rows1.iter().zip(&rows_off) {
        assert_eq!(q1.question, q2.question);
        assert_eq!(
            a1.answer(),
            a2.answer(),
            "cache on/off answers must be byte-identical for {:?}",
            q1.question
        );
    }
    assert_eq!(tally(&rows1), tally(&rows_off));
}
