//! Optimizer equivalence (§6.1): every rewrite the optimizer performs —
//! structured pushdown, filter reordering, filter batching, model routing —
//! must preserve the answer. Property-tested over generated linear plans on
//! both domain schemas, executed against real ingested stores under a
//! noise-free simulation so any divergence is the optimizer's fault.

use aryn_core::Value;
use aryn_docgen::Corpus;
use aryn_llm::{LlmClient, MockLlm, SimConfig, GPT4_SIM};
use luna::{
    earnings_schema, ingest_lake, ntsb_schema, Luna, LunaConfig, OptimizerCfg, Plan, PlanNode,
    PlanOp,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use sycamore::Context;

/// One Luna over both corpora, built once: plan generation is cheap, ingest
/// is not.
fn fixture() -> &'static Luna {
    static LUNA: OnceLock<Luna> = OnceLock::new();
    LUNA.get_or_init(|| {
        let ctx = Context::new();
        ctx.register_corpus("ntsb", &Corpus::ntsb(13, 18));
        ctx.register_corpus("earnings", &Corpus::earnings(13, 14));
        let client = LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(13))));
        ingest_lake(&ctx, "ntsb", "ntsb", &client, ntsb_schema(), aryn_partitioner::Detector::DetrSim).unwrap();
        ingest_lake(&ctx, "earnings", "earnings", &client, earnings_schema(), aryn_partitioner::Detector::DetrSim)
            .unwrap();
        Luna::new(
            ctx,
            &["ntsb", "earnings"],
            LunaConfig {
                sim: SimConfig::perfect(13),
                ..LunaConfig::default()
            },
        )
        .unwrap()
    })
}

fn llm_filter(predicate: &str) -> PlanOp {
    PlanOp::LlmFilter {
        predicate: predicate.into(),
        model: String::new(),
    }
}

/// Filters whose semantic and structured forms must agree: each is either a
/// pushdown candidate (state, cause, weather, fatality, sector, guidance,
/// CEO, sentiment) or a plain structured filter the reorder pass can move.
fn filter_pool(index: &str) -> Vec<PlanOp> {
    if index == "ntsb" {
        vec![
            llm_filter("the incident occurred in Alaska (AK)"),
            llm_filter("the incident was caused by environmental factors"),
            llm_filter("the incident was caused by wind"),
            llm_filter("the accident was fatal"),
            PlanOp::BasicFilter {
                path: "weather_related".into(),
                value: Value::Bool(true),
            },
            PlanOp::RangeFilter {
                path: "year".into(),
                lo: Some(Value::Int(1999)),
                hi: Some(Value::Int(2004)),
            },
        ]
    } else {
        vec![
            llm_filter("the company is in the AI sector"),
            llm_filter("the company lowered its guidance"),
            llm_filter("the company changed its CEO"),
            llm_filter("the report had negative sentiment"),
            PlanOp::BasicFilter {
                path: "guidance".into(),
                value: Value::from("lowered"),
            },
            PlanOp::RangeFilter {
                path: "growth_pct".into(),
                lo: Some(Value::Float(0.0)),
                hi: None,
            },
        ]
    }
}

/// Builds a linear plan: scan → chosen filters → optional terminal.
fn build_plan(index: &str, picks: &[usize], terminal: usize) -> Plan {
    let pool = filter_pool(index);
    let sort_path = if index == "ntsb" { "year" } else { "growth_pct" };
    let mut nodes = vec![PlanNode {
        id: 0,
        op: PlanOp::QueryDatabase {
            index: index.into(),
            prefilter: vec![],
        },
        inputs: vec![],
        description: String::new(),
    }];
    for pick in picks {
        let id = nodes.len();
        nodes.push(PlanNode {
            id,
            op: pool[pick % pool.len()].clone(),
            inputs: vec![id - 1],
            description: String::new(),
        });
    }
    let terminal_op = match terminal {
        0 => None,
        1 => Some(PlanOp::Count),
        2 => Some(PlanOp::Sort {
            path: sort_path.into(),
            descending: true,
        }),
        _ => Some(PlanOp::TopK {
            path: sort_path.into(),
            descending: true,
            k: 5,
        }),
    };
    if let Some(op) = terminal_op {
        let id = nodes.len();
        nodes.push(PlanNode {
            id,
            op,
            inputs: vec![id - 1],
            description: String::new(),
        });
    }
    let result = nodes.len() - 1;
    Plan { nodes, result }
}

/// Output signature for comparison: scalar value or ordered row ids.
fn signature(r: &luna::LunaResult) -> (String, Option<Vec<String>>) {
    let rows = r
        .output
        .rows()
        .map(|docs| docs.iter().map(|d| d.id.0.clone()).collect());
    (r.answer.clone(), rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_plans_answer_identically(
        on_ntsb in any::<bool>(),
        picks in prop::collection::vec(0usize..64, 0..=3),
        terminal in 0usize..4,
    ) {
        let luna = fixture();
        let index = if on_ntsb { "ntsb" } else { "earnings" };
        let plan = build_plan(index, &picks, terminal);
        plan.validate().unwrap();

        let optimized = luna.optimize(&plan).unwrap();
        optimized.plan.validate().unwrap();

        let base = luna.execute(&plan).unwrap();
        let opt = luna.execute(&optimized.plan).unwrap();
        prop_assert_eq!(
            signature(&base),
            signature(&opt),
            "optimizer changed the answer; rewrites: {:?}\nplan: {}\noptimized: {}",
            optimized.notes,
            plan.describe(),
            optimized.plan.describe()
        );
    }

    #[test]
    fn each_pass_alone_preserves_answers(
        on_ntsb in any::<bool>(),
        picks in prop::collection::vec(0usize..64, 1..=3),
        pass in 0usize..4,
    ) {
        let luna = fixture();
        let index = if on_ntsb { "ntsb" } else { "earnings" };
        let plan = build_plan(index, &picks, 1);
        let cfg = OptimizerCfg {
            pushdown: pass == 0,
            reorder: pass == 1,
            batch_filters: pass == 2,
            model_selection: pass == 3,
            ..OptimizerCfg::default()
        };
        let optimized = luna::optimize(&plan, luna.schemas(), &cfg).unwrap();
        let base = luna.execute(&plan).unwrap();
        let opt = luna.execute(&optimized.plan).unwrap();
        prop_assert_eq!(
            signature(&base),
            signature(&opt),
            "pass {} changed the answer; rewrites: {:?}",
            pass,
            optimized.notes
        );
    }

    /// §ISSUE acceptance: every optimizer pass output is analyzer-clean.
    /// `optimize()` itself re-analyzes after each enabled pass and errors if
    /// a pass broke the plan (in every build profile), so `Ok` already
    /// certifies the intermediate outputs; the final plan is re-checked here
    /// explicitly, warnings included in the failure message.
    #[test]
    fn analyzer_accepts_every_optimizer_output(
        on_ntsb in any::<bool>(),
        picks in prop::collection::vec(0usize..64, 0..=4),
        terminal in 0usize..4,
        pass in 0usize..5,
    ) {
        let luna = fixture();
        let index = if on_ntsb { "ntsb" } else { "earnings" };
        let plan = build_plan(index, &picks, terminal);
        let input = luna.analyze(&plan);
        prop_assert!(!input.has_errors(), "generated plan not clean:\n{}", input.render());
        let cfg = OptimizerCfg {
            pushdown: pass == 0 || pass == 4,
            reorder: pass == 1 || pass == 4,
            batch_filters: pass == 2 || pass == 4,
            model_selection: pass == 3 || pass == 4,
            ..OptimizerCfg::default()
        };
        let optimized = luna::optimize(&plan, luna.schemas(), &cfg).unwrap();
        let out = luna.analyze(&optimized.plan);
        prop_assert!(
            !out.has_errors(),
            "pass set {} produced analyzer errors:\n{}\nplan: {}",
            pass,
            out.render(),
            optimized.plan.describe()
        );
    }
}

/// §ISSUE acceptance: the analyzer accepts every planner-generated plan over
/// both domain schemas — the question pool covers every plan shape the rule
/// planner produces (percent-of, count, average, top-k, superlative, list,
/// summarize, graph expansion, query-time extraction, joins of cues).
#[test]
fn analyzer_accepts_every_planner_generated_plan() {
    let luna = fixture();
    let questions = [
        // NTSB shapes.
        "What percent of environmentally caused incidents were due to wind?",
        "How many incidents occurred in Alaska?",
        "How many incidents were caused by wind?",
        "How many incidents were caused by engine failure in 2019?",
        "Which state had the most incidents?",
        "What was the average fatal injuries per incident?",
        "How many incidents involved fatalities?",
        "What was the most common phase of incidents?",
        "Summarize the incidents caused by weather",
        // Earnings shapes.
        "What was the average revenue growth of companies in the AI sector?",
        "Which company had the highest revenue?",
        "How many companies lowered guidance?",
        "List the companies whose CEO recently changed",
        "What is the yearly revenue growth and sentiment of companies whose CEO recently changed?",
        "List the fastest growing companies in the AI market and their competitors",
    ];
    for q in questions {
        let (plan, analysis) = luna.check(q).expect(q);
        assert!(
            !analysis.has_errors(),
            "{q}: planner plan failed analysis:\n{}\nplan: {}",
            analysis.render(),
            plan.describe()
        );
        // And the fully optimized form stays clean.
        let optimized = luna.optimize(&plan).expect(q);
        let out = luna.analyze(&optimized.plan);
        assert!(
            !out.has_errors(),
            "{q}: optimized plan failed analysis:\n{}",
            out.render()
        );
    }
}
