//! Operator-level tests of the plan executor: joins, aggregates, top-k,
//! graph expansion, and error paths.

use aryn_core::{obj, ArynError, Document, Value};
use aryn_index::{DocStore, GraphNode, GraphStore};
use aryn_llm::{LlmClient, MockLlm, SimConfig, GPT4_SIM};
use luna::{NodeOutput, Plan, PlanExecutor, PlanNode, PlanOp};
use std::sync::Arc;
use sycamore::Context;

fn store(name: &str, rows: Vec<Value>) -> Context {
    let ctx = Context::new();
    let mut s = DocStore::new();
    for (i, props) in rows.into_iter().enumerate() {
        let mut d = Document::new(format!("{name}{i}"));
        d.properties = props;
        s.put(d);
    }
    ctx.put_store(name, s);
    ctx
}

fn executor(ctx: Context) -> PlanExecutor {
    PlanExecutor::new(
        ctx,
        LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(1)))),
    )
}

fn node(id: usize, op: PlanOp, inputs: Vec<usize>) -> PlanNode {
    PlanNode {
        id,
        op,
        inputs,
        description: String::new(),
    }
}

#[test]
fn join_merges_matching_rows() {
    let ctx = store(
        "left",
        vec![
            obj! { "company" => "Apex", "growth" => 10.0 },
            obj! { "company" => "Lumen", "growth" => -2.0 },
        ],
    );
    let mut right = DocStore::new();
    for (i, props) in [
        obj! { "company" => "Apex", "hq" => "Denver" },
        obj! { "company" => "Vertex", "hq" => "Austin" },
    ]
    .into_iter()
    .enumerate()
    {
        let mut d = Document::new(format!("r{i}"));
        d.properties = props;
        right.put(d);
    }
    ctx.put_store("right", right);
    let plan = Plan {
        nodes: vec![
            node(0, PlanOp::QueryDatabase { index: "left".into(), prefilter: vec![] }, vec![]),
            node(1, PlanOp::QueryDatabase { index: "right".into(), prefilter: vec![] }, vec![]),
            node(2, PlanOp::Join { on: "company".into() }, vec![0, 1]),
        ],
        result: 2,
    };
    let result = executor(ctx).execute(&plan).unwrap();
    let rows = result.output.rows().unwrap();
    assert_eq!(rows.len(), 1, "only Apex matches");
    assert_eq!(rows[0].prop("hq").unwrap().as_str(), Some("Denver"));
    assert_eq!(rows[0].prop("growth").unwrap().as_float(), Some(10.0));
    // Join provenance recorded.
    assert!(rows[0].lineage.iter().any(|l| l.transform == "join"));
}

#[test]
fn aggregate_variants_and_unknown_func() {
    let ctx = store(
        "t",
        vec![
            obj! { "g" => "a", "x" => 1.0 },
            obj! { "g" => "a", "x" => 3.0 },
            obj! { "g" => "b", "x" => 10.0 },
            obj! { "g" => "b" }, // missing x
        ],
    );
    let ex = executor(ctx);
    for (func, want_a) in [("sum", 4.0), ("avg", 2.0), ("min", 1.0), ("max", 3.0)] {
        let plan = Plan {
            nodes: vec![
                node(0, PlanOp::QueryDatabase { index: "t".into(), prefilter: vec![] }, vec![]),
                node(
                    1,
                    PlanOp::Aggregate { key: "g".into(), func: func.into(), path: "x".into() },
                    vec![0],
                ),
                node(2, PlanOp::Sort { path: "g".into(), descending: false }, vec![1]),
            ],
            result: 2,
        };
        let rows = ex.execute(&plan).unwrap().output.rows().unwrap().to_vec();
        assert_eq!(rows.len(), 2, "{func}");
        assert_eq!(rows[0].prop("value").unwrap().as_float(), Some(want_a), "{func}");
    }
    // Unknown aggregate function fails cleanly.
    let bad = Plan {
        nodes: vec![
            node(0, PlanOp::QueryDatabase { index: "t".into(), prefilter: vec![] }, vec![]),
            node(
                1,
                PlanOp::Aggregate { key: String::new(), func: "median".into(), path: "x".into() },
                vec![0],
            ),
        ],
        result: 1,
    };
    assert!(matches!(ex.execute(&bad), Err(ArynError::InvalidPlan(_))));
}

#[test]
fn topk_and_scalar_count() {
    let ctx = store(
        "t",
        (0..7).map(|i| obj! { "x" => i as f64 }).collect(),
    );
    let ex = executor(ctx);
    let plan = Plan {
        nodes: vec![
            node(0, PlanOp::QueryDatabase { index: "t".into(), prefilter: vec![] }, vec![]),
            node(1, PlanOp::TopK { path: "x".into(), descending: true, k: 3 }, vec![0]),
            node(2, PlanOp::Count, vec![1]),
        ],
        result: 2,
    };
    let result = ex.execute(&plan).unwrap();
    assert_eq!(result.output.scalar(), Some(&Value::Int(3)));
    // The intermediate trace shows the top row was x=6.
    let topk = result.traces.iter().find(|t| t.op_kind == "topK").unwrap();
    assert_eq!(topk.rows_out, 3);
}

#[test]
fn graph_expand_without_graph_is_a_clean_error() {
    let ctx = store("t", vec![obj! { "company" => "Apex" }]);
    let ex = executor(ctx); // no graph attached
    let plan = Plan {
        nodes: vec![
            node(0, PlanOp::QueryDatabase { index: "t".into(), prefilter: vec![] }, vec![]),
            node(
                1,
                PlanOp::GraphExpand { relation: "competitor_of".into(), output: "competitors".into() },
                vec![0],
            ),
        ],
        result: 1,
    };
    match ex.execute(&plan) {
        Err(ArynError::Exec(msg)) => assert!(msg.contains("knowledge graph")),
        other => panic!("expected Exec error, got {other:?}"),
    }
}

#[test]
fn graph_expand_resolves_rows_by_name_property() {
    let ctx = store(
        "t",
        vec![obj! { "company" => "Apex" }, obj! { "company" => "Ghost" }],
    );
    let mut g = GraphStore::new();
    for id in ["Apex", "Lumen"] {
        g.upsert_node(GraphNode {
            id: id.into(),
            label: "company".into(),
            properties: Value::object(),
        });
    }
    g.add_edge("Apex", "competitor_of", "Lumen").unwrap();
    let ex = executor(ctx).with_graph(Arc::new(g));
    let plan = Plan {
        nodes: vec![
            node(0, PlanOp::QueryDatabase { index: "t".into(), prefilter: vec![] }, vec![]),
            node(
                1,
                PlanOp::GraphExpand { relation: "competitor_of".into(), output: "competitors".into() },
                vec![0],
            ),
        ],
        result: 1,
    };
    let rows = ex.execute(&plan).unwrap().output.rows().unwrap().to_vec();
    let apex = rows.iter().find(|d| d.prop("company").unwrap().as_str() == Some("Apex")).unwrap();
    assert_eq!(
        apex.prop("competitors").unwrap().as_array().unwrap(),
        &[Value::from("Lumen")]
    );
    // Unknown entity expands to an empty list, not an error.
    let ghost = rows.iter().find(|d| d.prop("company").unwrap().as_str() == Some("Ghost")).unwrap();
    assert!(ghost.prop("competitors").unwrap().as_array().unwrap().is_empty());
}

#[test]
fn math_over_rows_uses_row_counts_and_scans_error_on_missing_store() {
    let ctx = store("t", (0..4).map(|_| Value::object()).collect());
    let ex = executor(ctx);
    let plan = Plan {
        nodes: vec![
            node(0, PlanOp::QueryDatabase { index: "t".into(), prefilter: vec![] }, vec![]),
            node(1, PlanOp::Math { expr: "10 * {out_0}".into() }, vec![0]),
        ],
        result: 1,
    };
    let result = ex.execute(&plan).unwrap();
    assert_eq!(result.output.scalar().and_then(Value::as_float), Some(40.0));
    // Unknown index errors cleanly.
    let missing = Plan {
        nodes: vec![node(
            0,
            PlanOp::QueryDatabase { index: "nope".into(), prefilter: vec![] },
            vec![],
        )],
        result: 0,
    };
    assert!(matches!(ex.execute(&missing), Err(ArynError::Index(_))));
}

#[test]
fn prefilter_and_id_pseudofield() {
    let ctx = store(
        "t",
        vec![obj! { "state" => "AK" }, obj! { "state" => "TX" }],
    );
    let ex = executor(ctx);
    let plan = Plan {
        nodes: vec![node(
            0,
            PlanOp::QueryDatabase {
                index: "t".into(),
                prefilter: vec![("state".into(), Value::from("ak"))],
            },
            vec![],
        )],
        result: 0,
    };
    assert_eq!(ex.execute(&plan).unwrap().output.len(), 1, "loose-eq prefilter");
    let by_id = Plan {
        nodes: vec![
            node(0, PlanOp::QueryDatabase { index: "t".into(), prefilter: vec![] }, vec![]),
            node(
                1,
                PlanOp::BasicFilter { path: "_id".into(), value: Value::from("t1") },
                vec![0],
            ),
        ],
        result: 1,
    };
    let rows = ex.execute(&by_id).unwrap();
    assert_eq!(rows.output.len(), 1);
    assert_eq!(rows.output.rows().unwrap()[0].id.as_str(), "t1");
    let _ = NodeOutput::Scalar(Value::Null); // type is public API
}
