//! Semantic analyzer integration tests: per-code negative cases against a
//! real ingested store, the regressions the analyzer exists for (plans that
//! structural validation accepts but that reference hallucinated fields,
//! mismatch types, or aggregate non-numeric columns), the executor's refusal
//! gate, and the planner repair loop fixing an injected bad plan.

use aryn_core::Value;
use aryn_docgen::Corpus;
use aryn_llm::prompt::ParsedTask;
use aryn_llm::{EngineCtx, LlmClient, MockLlm, SimConfig, TaskEngine, TaskKind};
use luna::analyze::codes;
use luna::{ingest_lake, ntsb_schema, Luna, LunaConfig, Plan, PlanNode, PlanOp};
use std::sync::Arc;
use sycamore::Context;

fn fixture_with(cfg_engine: Option<Box<dyn TaskEngine>>) -> Luna {
    let ctx = Context::new();
    ctx.register_corpus("ntsb", &Corpus::ntsb(7, 20));
    let client = LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, SimConfig::perfect(7))));
    ingest_lake(
        &ctx,
        "ntsb",
        "ntsb",
        &client,
        ntsb_schema(),
        aryn_partitioner::Detector::DetrSim,
    )
    .unwrap();
    Luna::new(
        ctx,
        &["ntsb"],
        LunaConfig {
            sim: SimConfig::perfect(7),
            planner_engine: cfg_engine,
            ..LunaConfig::default()
        },
    )
    .unwrap()
}

fn fixture() -> Luna {
    fixture_with(None)
}

fn scan(id: usize) -> PlanNode {
    node(
        id,
        PlanOp::QueryDatabase {
            index: "ntsb".into(),
            prefilter: vec![],
        },
        vec![],
    )
}

fn node(id: usize, op: PlanOp, inputs: Vec<usize>) -> PlanNode {
    PlanNode {
        id,
        op,
        inputs,
        description: String::new(),
    }
}

fn filter(id: usize, path: &str, value: Value, input: usize) -> PlanNode {
    node(
        id,
        PlanOp::BasicFilter {
            path: path.into(),
            value,
        },
        vec![input],
    )
}

// --- Structural codes (the folded-in validate() checks) ---------------------

#[test]
fn structural_codes_each_fire() {
    use luna::analyze::structural;

    let empty = Plan { nodes: vec![], result: 0 };
    assert!(structural(&empty).iter().any(|d| d.code == codes::EMPTY_PLAN));

    let mut dup = Plan { nodes: vec![scan(0), node(1, PlanOp::Count, vec![0])], result: 1 };
    dup.nodes[1].id = 0;
    assert!(structural(&dup).iter().any(|d| d.code == codes::DUPLICATE_NODE_ID));

    let arity = Plan {
        nodes: vec![scan(0), node(1, PlanOp::Count, vec![])],
        result: 1,
    };
    assert!(structural(&arity).iter().any(|d| d.code == codes::BAD_ARITY));

    let empty_param = Plan {
        nodes: vec![
            scan(0),
            node(
                1,
                PlanOp::LlmFilter { predicate: "  ".into(), model: String::new() },
                vec![0],
            ),
        ],
        result: 1,
    };
    assert!(structural(&empty_param).iter().any(|d| d.code == codes::EMPTY_PARAM));

    let unknown_input = Plan {
        nodes: vec![scan(0), node(1, PlanOp::Count, vec![9])],
        result: 1,
    };
    assert!(structural(&unknown_input).iter().any(|d| d.code == codes::UNKNOWN_INPUT));

    let cycle = Plan {
        nodes: vec![
            scan(0),
            node(1, PlanOp::Sort { path: "year".into(), descending: true }, vec![2]),
            node(2, PlanOp::Sort { path: "year".into(), descending: false }, vec![1]),
        ],
        result: 2,
    };
    assert!(structural(&cycle).iter().any(|d| d.code == codes::CYCLE));

    let missing_result = Plan { nodes: vec![scan(0)], result: 5 };
    assert!(structural(&missing_result).iter().any(|d| d.code == codes::MISSING_RESULT));

    // Each structural diagnostic is also what validate() reports: the
    // wrapper surfaces the first message verbatim.
    let err = empty.validate().unwrap_err();
    assert!(err.to_string().contains("empty plan"), "{err}");
}

// --- The regressions: validate() accepts, analyzer catches ------------------

#[test]
fn analyzer_catches_hallucinated_field_that_validate_accepts() {
    let luna = fixture();
    let plan = Plan {
        nodes: vec![
            scan(0),
            filter(1, "altitude", Value::Int(3000), 0),
            node(2, PlanOp::Count, vec![1]),
        ],
        result: 2,
    };
    plan.validate().unwrap();
    let a = luna.analyze(&plan);
    assert!(
        a.errors().iter().any(|d| d.code == codes::UNKNOWN_FIELD),
        "{}",
        a.render()
    );
    // The diagnostic points into the plan JSON and suggests a fix.
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNKNOWN_FIELD)
        .unwrap();
    assert_eq!(d.node_id, Some(1));
    assert!(d.path.starts_with("nodes[1]"), "{}", d.path);
}

#[test]
fn analyzer_catches_type_mismatch_that_validate_accepts() {
    let luna = fixture();
    let plan = Plan {
        nodes: vec![
            scan(0),
            filter(1, "year", Value::from("nineteen ninety-nine"), 0),
        ],
        result: 1,
    };
    plan.validate().unwrap();
    let a = luna.analyze(&plan);
    assert!(
        a.errors().iter().any(|d| d.code == codes::TYPE_MISMATCH),
        "{}",
        a.render()
    );
}

#[test]
fn analyzer_catches_non_numeric_aggregate_that_validate_accepts() {
    let luna = fixture();
    let plan = Plan {
        nodes: vec![
            scan(0),
            node(
                1,
                PlanOp::Aggregate {
                    key: String::new(),
                    func: "avg".into(),
                    path: "cause_detail".into(),
                },
                vec![0],
            ),
        ],
        result: 1,
    };
    plan.validate().unwrap();
    let a = luna.analyze(&plan);
    assert!(
        a.errors().iter().any(|d| d.code == codes::AGGREGATE_NON_NUMERIC),
        "{}",
        a.render()
    );
}

#[test]
fn unknown_index_warns_but_does_not_refuse() {
    let luna = fixture();
    let plan = Plan {
        nodes: vec![
            node(
                0,
                PlanOp::QueryDatabase { index: "nope".into(), prefilter: vec![] },
                vec![],
            ),
            node(1, PlanOp::Count, vec![0]),
        ],
        result: 1,
    };
    let a = luna.analyze(&plan);
    assert!(
        a.diagnostics.iter().any(|d| d.code == codes::UNKNOWN_INDEX),
        "{}",
        a.render()
    );
    assert!(!a.has_errors());
    // Execution still reports the runtime index error, not an analyzer
    // refusal (exec_ops relies on this).
    match luna.execute(&plan) {
        Err(aryn_core::ArynError::Index(_)) => {}
        other => panic!("expected index error, got {other:?}"),
    }
}

// --- The executor gate ------------------------------------------------------

#[test]
fn executor_refuses_plans_with_analyzer_errors() {
    let luna = fixture();
    let plan = Plan {
        nodes: vec![
            scan(0),
            filter(1, "altitude", Value::Int(3000), 0),
            node(2, PlanOp::Count, vec![1]),
        ],
        result: 2,
    };
    match luna.execute(&plan) {
        Err(aryn_core::ArynError::InvalidPlan(msg)) => {
            assert!(msg.contains("refusing to execute"), "{msg}");
            assert!(msg.contains(codes::UNKNOWN_FIELD), "{msg}");
        }
        other => panic!("expected refusal, got {other:?}"),
    }
    // Clean plans on the same fixture execute fine.
    let ok = Plan {
        nodes: vec![
            scan(0),
            filter(1, "us_state_abbrev", Value::from("AK"), 0),
            node(2, PlanOp::Count, vec![1]),
        ],
        result: 2,
    };
    luna.execute(&ok).unwrap();
}

// --- The repair loop --------------------------------------------------------

/// A planner brain that hallucinates a field on the first attempt and only
/// produces the corrected plan once the repair prompt carries the analyzer
/// diagnostics back to it — the injected-bad-plan fixture for the repair
/// loop.
struct BadThenGoodPlanner;

fn plan_json(plan: &Plan) -> String {
    aryn_core::json::to_string_pretty(&plan.to_value())
}

impl TaskEngine for BadThenGoodPlanner {
    fn kind(&self) -> TaskKind {
        TaskKind::Plan
    }

    fn run(&self, task: &ParsedTask, _ctx: &EngineCtx<'_>) -> Option<String> {
        let diagnostics = task.params.get("diagnostics").and_then(Value::as_str);
        let path = if diagnostics.is_some() { "us_state_abbrev" } else { "altitude" };
        let value = if diagnostics.is_some() { Value::from("AK") } else { Value::Int(3000) };
        // A repaired plan must actually read the diagnostics: only produce
        // the fix when the prompt names the hallucinated field.
        if let Some(d) = diagnostics {
            assert!(d.contains("altitude"), "repair prompt missing diagnostics: {d}");
        }
        let plan = Plan {
            nodes: vec![
                scan(0),
                filter(1, path, value, 0),
                node(2, PlanOp::Count, vec![1]),
            ],
            result: 2,
        };
        Some(plan_json(&plan))
    }
}

#[test]
fn repair_loop_fixes_injected_bad_plan() {
    let luna = fixture_with(Some(Box::new(BadThenGoodPlanner)));
    let plan = luna.plan("How many incidents occurred in Alaska?").unwrap();
    // The repaired plan filters the real field.
    assert!(
        plan.nodes
            .iter()
            .any(|n| matches!(&n.op, PlanOp::BasicFilter { path, .. } if path == "us_state_abbrev")),
        "{}",
        plan.describe()
    );
    assert!(luna.analyze(&plan).diagnostics.is_empty(), "repaired plan should be clean");
    // The telemetry trail shows the analyzer rejecting the first attempt:
    // one analyzer span with an unknown-field counter, then a clean one.
    let spans = luna.telemetry().snapshot().spans;
    let analyzer: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == "analyzer" && s.name == "analyze:plan")
        .collect();
    assert_eq!(analyzer.len(), 2, "one verdict per attempt");
    assert!(analyzer[0].counter(codes::UNKNOWN_FIELD) >= 1);
    assert!(analyzer[0].counter("errors") >= 1);
    assert_eq!(analyzer[1].counter("errors"), 0);
    // And the repaired plan executes end to end.
    luna.execute(&plan).unwrap();
}

/// A planner brain that never repairs: the gate in `plan()` must fail the
/// question rather than hand a hallucinated plan to the executor.
struct AlwaysBadPlanner;

impl TaskEngine for AlwaysBadPlanner {
    fn kind(&self) -> TaskKind {
        TaskKind::Plan
    }

    fn run(&self, _task: &ParsedTask, _ctx: &EngineCtx<'_>) -> Option<String> {
        let plan = Plan {
            nodes: vec![
                scan(0),
                filter(1, "altitude", Value::Int(3000), 0),
            ],
            result: 1,
        };
        Some(plan_json(&plan))
    }
}

#[test]
fn unrepaired_semantic_errors_fail_the_question() {
    let luna = fixture_with(Some(Box::new(AlwaysBadPlanner)));
    match luna.plan("How many incidents occurred in Alaska?") {
        Err(aryn_core::ArynError::InvalidPlan(msg)) => {
            assert!(msg.contains("semantic analysis"), "{msg}");
            assert!(msg.contains(codes::UNKNOWN_FIELD), "{msg}");
        }
        other => panic!("expected semantic-analysis failure, got {other:?}"),
    }
    // `check` still surfaces the plan and its diagnostics for inspection.
    let (_, analysis) = luna.check("How many incidents occurred in Alaska?").unwrap();
    assert!(analysis.has_errors());
}

// --- Optimizer gate ---------------------------------------------------------

#[test]
fn optimizer_gate_rejects_a_pass_that_breaks_plans() {
    // Simulate a broken pass by feeding optimize() a plan that is already
    // semantically broken: the input check fires before any pass runs, in
    // every build profile.
    let luna = fixture();
    let plan = Plan {
        nodes: vec![
            scan(0),
            filter(1, "altitude", Value::Int(3000), 0),
        ],
        result: 1,
    };
    match luna::optimize(&plan, luna.schemas(), &luna::OptimizerCfg::default()) {
        Err(aryn_core::ArynError::InvalidPlan(msg)) => {
            assert!(msg.contains("optimizer pass"), "{msg}");
            assert!(msg.contains(codes::UNKNOWN_FIELD), "{msg}");
        }
        other => panic!("expected optimizer gate failure, got {other:?}"),
    }
}

// --- REPL `check` surface ---------------------------------------------------

#[test]
fn annotated_codegen_carries_diagnostics_for_check_view() {
    let luna = fixture();
    let plan = Plan {
        nodes: vec![
            scan(0),
            filter(1, "altitude", Value::Int(3000), 0),
            node(2, PlanOp::Count, vec![1]),
        ],
        result: 2,
    };
    let analysis = luna.analyze(&plan);
    let code = luna::codegen::to_python_annotated(&plan, &analysis);
    let lines: Vec<&str> = code.lines().collect();
    let comment = lines
        .iter()
        .position(|l| l.contains(codes::UNKNOWN_FIELD))
        .expect("diagnostic rendered");
    assert!(lines[comment + 1].starts_with("out_1 = "), "{code}");
}
