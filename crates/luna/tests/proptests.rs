//! Property-based tests for plans and the math evaluator.

use aryn_core::{json, Value};
use luna::{eval_math, Plan, PlanNode, PlanOp};
use proptest::prelude::*;

/// Arbitrary single-input operator.
fn op_strategy() -> impl Strategy<Value = PlanOp> {
    prop_oneof![
        ("[a-z_]{1,8}", prop_oneof![
            any::<i64>().prop_map(Value::Int),
            "[a-z]{1,6}".prop_map(Value::from),
        ])
            .prop_map(|(path, value)| PlanOp::BasicFilter { path, value }),
        ("[a-z_]{1,8}", any::<bool>()).prop_map(|(path, descending)| PlanOp::Sort {
            path,
            descending
        }),
        ("[a-z ]{1,16}").prop_map(|predicate| PlanOp::LlmFilter {
            predicate,
            model: String::new()
        }),
        ("[a-z_]{1,8}", 1usize..20).prop_map(|(path, k)| PlanOp::TopK {
            path,
            descending: true,
            k
        }),
        ("[a-z_]{1,8}").prop_map(|field| PlanOp::LlmExtract {
            field,
            ftype: "string".into(),
            model: String::new()
        }),
        Just(PlanOp::Count),
        ("[a-z_]{1,8}", "[a-z_]{1,8}").prop_map(|(relation, output)| PlanOp::GraphExpand {
            relation,
            output
        }),
        ("[a-z ]{1,16}").prop_map(|instructions| PlanOp::SummarizeData { instructions }),
    ]
}

/// A random linear plan: scan followed by a chain of single-input ops.
fn plan_strategy() -> impl Strategy<Value = Plan> {
    prop::collection::vec(op_strategy(), 0..8).prop_map(|ops| {
        let mut nodes = vec![PlanNode {
            id: 0,
            op: PlanOp::QueryDatabase {
                index: "ntsb".into(),
                prefilter: vec![],
            },
            inputs: vec![],
            description: String::new(),
        }];
        for (i, op) in ops.into_iter().enumerate() {
            nodes.push(PlanNode {
                id: i + 1,
                op,
                inputs: vec![i],
                description: String::new(),
            });
        }
        let result = nodes.len() - 1;
        Plan { nodes, result }
    })
}

/// A random arithmetic expression with its reference value.
fn expr_strategy() -> impl Strategy<Value = (String, f64)> {
    let leaf = (1i32..200).prop_map(|n| (n.to_string(), n as f64));
    leaf.prop_recursive(4, 24, 2, |inner| {
        (inner.clone(), prop_oneof![Just('+'), Just('-'), Just('*'), Just('/')], inner).prop_map(
            |((ls, lv), op, (rs, rv))| {
                let s = format!("({ls} {op} {rs})");
                let v = match op {
                    '+' => lv + rv,
                    '-' => lv - rv,
                    '*' => lv * rv,
                    _ => lv / rv, // rv >= 1 by construction at leaves; composites stay nonzero-ish
                };
                (s, v)
            },
        )
    })
    // Guard against division blowups producing subnormal comparisons.
    .prop_filter("finite", |(_, v)| v.is_finite() && v.abs() < 1e12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_plans_validate_and_roundtrip(plan in plan_strategy()) {
        // Some generated ops are semantically odd, but structurally every
        // linear chain must validate and survive JSON.
        if plan.validate().is_ok() {
            let text = json::to_string_pretty(&plan.to_value());
            let back = Plan::parse(&text).unwrap();
            prop_assert_eq!(back, plan);
        }
    }

    #[test]
    fn describe_and_codegen_cover_every_node(plan in plan_strategy()) {
        prop_assume!(plan.validate().is_ok());
        let desc = luna::Plan::describe(&plan);
        let code = luna::codegen::to_python(&plan);
        for n in &plan.nodes {
            let tag = format!("[out_{}]", n.id);
            let var = format!("out_{}", n.id);
            let in_desc = desc.contains(&tag);
            let in_code = code.contains(&var);
            prop_assert!(in_desc, "missing {tag} in description");
            prop_assert!(in_code, "missing {var} in code");
        }
        let tail = format!("result = out_{}\n", plan.result);
        let ends = code.ends_with(&tail);
        prop_assert!(ends, "code should end with {tail:?}");
    }

    #[test]
    fn dangling_input_mutation_always_caught(plan in plan_strategy(), victim in 0usize..8) {
        prop_assume!(plan.nodes.len() > 1);
        let mut broken = plan;
        let idx = 1 + victim % (broken.nodes.len() - 1);
        broken.nodes[idx].inputs = vec![9999];
        prop_assert!(broken.validate().is_err());
    }

    #[test]
    fn duplicate_id_mutation_always_caught(plan in plan_strategy(), victim in 0usize..8) {
        prop_assume!(plan.nodes.len() > 1);
        let mut broken = plan;
        let idx = 1 + victim % (broken.nodes.len() - 1);
        broken.nodes[idx].id = 0;
        prop_assert!(broken.validate().is_err());
    }

    #[test]
    fn math_evaluator_matches_reference((expr, want) in expr_strategy()) {
        match eval_math(&expr) {
            Ok(got) => {
                let tol = want.abs().max(1.0) * 1e-9;
                prop_assert!((got - want).abs() <= tol, "{expr}: got {got}, want {want}");
            }
            Err(e) => {
                // Division by an exactly-zero subexpression is the only
                // legitimate failure.
                prop_assert!(e.to_string().contains("division by zero"), "{expr}: {e}");
            }
        }
    }

    #[test]
    fn math_evaluator_never_panics(junk in ".{0,40}") {
        let _ = eval_math(&junk);
    }

    #[test]
    fn plan_parse_never_panics(junk in ".{0,200}") {
        let _ = Plan::parse(&junk);
    }
}
