//! End-to-end Luna tests: ingest → plan → optimize → execute → explain.

use aryn_core::Value;
use aryn_docgen::Corpus;
use aryn_llm::{LlmClient, MockLlm, SimConfig};
use luna::{ingest_lake, ntsb_schema, Luna, LunaConfig, Plan, PlanOp};
use std::sync::Arc;
use sycamore::Context;

fn fixture(n: usize, sim: SimConfig) -> (Luna, Corpus) {
    let ctx = Context::new();
    let corpus = Corpus::ntsb(7, n);
    ctx.register_corpus("ntsb", &corpus);
    let client = LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, sim.clone())));
    ingest_lake(
        &ctx,
        "ntsb",
        "ntsb",
        &client,
        ntsb_schema(),
        aryn_partitioner::Detector::DetrSim,
    )
    .unwrap();
    let luna = Luna::new(ctx, &["ntsb"], LunaConfig { sim, ..LunaConfig::default() }).unwrap();
    (luna, corpus)
}

#[test]
fn figure5_question_end_to_end() {
    let (luna, corpus) = fixture(30, SimConfig::perfect(3));
    let ans = luna
        .ask("What percent of environmentally caused incidents were due to wind?")
        .unwrap();
    // Ground truth percentage.
    let wind = corpus
        .docs
        .iter()
        .filter(|d| d.record.get("cause_detail").and_then(Value::as_str) == Some("wind"))
        .count() as f64;
    let env = corpus
        .docs
        .iter()
        .filter(|d| d.record.get("weather_related").and_then(Value::as_bool) == Some(true))
        .count() as f64;
    let want = 100.0 * wind / env;
    let got = aryn_llm::semantics::first_number(ans.answer()).expect("numeric answer");
    assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
    // The plan has the Figure 5 shape and the trace covers every node.
    let kinds: Vec<String> = ans.plan.nodes.iter().map(|n| n.op.kind().to_string()).collect();
    assert_eq!(kinds[0], "queryDatabase");
    assert!(kinds.iter().filter(|k| *k == "count").count() == 2);
    assert_eq!(ans.result.traces.len(), ans.optimized_plan.nodes.len());
    // Explain renders all the views.
    let explain = ans.explain();
    assert!(explain.contains("context.read.opensearch"));
    assert!(explain.contains("Execution trace"));
}

#[test]
fn optimizer_pushdown_reduces_llm_calls() {
    let (luna, _) = fixture(25, SimConfig::perfect(5));
    let plan = luna.plan("How many incidents occurred in Alaska?").unwrap();
    // Unoptimized: semantic filter over every document.
    let unopt = luna.execute(&plan).unwrap();
    // Optimized: pushed down to a structured filter; no per-row LLM calls.
    let optimized = luna.optimize(&plan).unwrap();
    assert!(optimized.notes.iter().any(|n| n.contains("pushed down")), "{:?}", optimized.notes);
    let opt = luna.execute(&optimized.plan).unwrap();
    assert!(opt.total_llm_calls() < unopt.total_llm_calls());
    assert!(opt.total_cost() < unopt.total_cost());
    // The structured filter is also *more accurate*: the documents never
    // spell out "Alaska", so the semantic filter under-matches, while the
    // pushed-down filter reads the extracted property.
    let opt_n = aryn_llm::semantics::first_number(&opt.answer).unwrap();
    let unopt_n = aryn_llm::semantics::first_number(&unopt.answer).unwrap();
    assert!(opt_n >= unopt_n, "opt {opt_n} unopt {unopt_n}");
}

#[test]
fn human_in_the_loop_plan_editing() {
    let (luna, corpus) = fixture(25, SimConfig::perfect(9));
    // Plan asks for wind; the analyst edits the predicate to fog.
    let mut plan = luna.plan("How many incidents were caused by wind?").unwrap();
    let edited: Vec<usize> = plan
        .nodes
        .iter()
        .filter(|n| matches!(&n.op, PlanOp::LlmFilter { .. }))
        .map(|n| n.id)
        .collect();
    for id in edited {
        if let Some(n) = plan.node_mut(id) {
            n.op = PlanOp::LlmFilter {
                predicate: "caused by fog".into(),
                model: String::new(),
            };
        }
    }
    let result = luna.execute_edited(&plan).unwrap();
    let fog = corpus
        .docs
        .iter()
        .filter(|d| d.record.get("cause_detail").and_then(Value::as_str) == Some("fog"))
        .count() as i64;
    assert_eq!(
        aryn_llm::semantics::first_number(&result.answer).map(|n| n as i64),
        Some(fog)
    );
    // Invalid edits are rejected before execution.
    let mut broken = luna.plan("How many incidents were caused by wind?").unwrap();
    broken.nodes[1].inputs = vec![99];
    assert!(luna.execute_edited(&broken).is_err());
}

#[test]
fn traces_expose_per_operator_history() {
    let (luna, _) = fixture(20, SimConfig::perfect(11));
    let ans = luna
        .ask("How many incidents were caused by engine failure?")
        .unwrap();
    let trace = &ans.result.traces;
    // The scan reads all docs; the filter narrows; the count is scalar.
    assert_eq!(trace[0].op_kind, "queryDatabase");
    assert_eq!(trace[0].rows_out, 20);
    let count_trace = trace.iter().find(|t| t.op_kind == "count").unwrap();
    assert!(count_trace.scalar.is_some());
    let filter_trace = trace
        .iter()
        .find(|t| t.op_kind.contains("Filter") || t.op_kind.contains("filter"))
        .unwrap();
    assert!(filter_trace.rows_out <= filter_trace.rows_in);
    assert!(!filter_trace.sample_ids.is_empty() || filter_trace.rows_out == 0);
}

#[test]
fn schema_discovery_drives_planner_fields() {
    let (luna, _) = fixture(15, SimConfig::perfect(13));
    let schema = &luna.schemas()[0];
    assert_eq!(schema.index, "ntsb");
    assert!(schema.field("us_state_abbrev").is_some());
    assert!(schema.field("cause_detail").is_some());
    // The discovered schema resolves planner mentions.
    assert_eq!(schema.resolve_field("state").unwrap().path, "us_state_abbrev");
}

#[test]
fn plan_json_round_trips_through_files() {
    let (luna, _) = fixture(10, SimConfig::perfect(17));
    let plan = luna
        .plan("What percent of environmentally caused incidents were due to wind?")
        .unwrap();
    let text = aryn_core::json::to_string_pretty(&plan.to_value());
    let back = Plan::parse(&text).unwrap();
    assert_eq!(back, plan);
}

#[test]
fn noisy_models_still_answer_with_bounded_degradation() {
    // Under the default (noisy) sim, Luna still returns plans and answers;
    // counts are close to truth thanks to pushdown onto extracted fields.
    let (luna, corpus) = fixture(30, SimConfig::with_seed(23));
    let ans = luna.ask("How many incidents involved fatalities?").unwrap();
    let truth = corpus
        .docs
        .iter()
        .filter(|d| d.record.get("fatal").and_then(Value::as_int).unwrap_or(0) > 0)
        .count() as f64;
    let got = aryn_llm::semantics::first_number(ans.answer()).unwrap();
    assert!((got - truth).abs() <= 3.0, "got {got}, truth {truth}");
}

#[test]
fn query_time_extraction_end_to_end() {
    // "phase" is deliberately not in the ingestion schema; Luna extracts it
    // at query time (the Figure 5 dynamic-extraction pattern) and still
    // finds the corpus's most common flight phase.
    let ctx = Context::new();
    let corpus = Corpus::ntsb(19, 25);
    ctx.register_corpus("ntsb", &corpus);
    let client = LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, SimConfig::perfect(19))));
    // Schema without "phase".
    let schema = aryn_core::obj! { "us_state_abbrev" => "string", "cause_detail" => "string" };
    ingest_lake(&ctx, "ntsb", "ntsb", &client, schema, aryn_partitioner::Detector::DetrSim).unwrap();
    let luna = Luna::new(
        ctx,
        &["ntsb"],
        LunaConfig {
            sim: SimConfig::perfect(19),
            ..LunaConfig::default()
        },
    )
    .unwrap();
    let ans = luna.ask("What was the most common phase of incidents?").unwrap();
    // Ground truth: modal phase from the records.
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for d in &corpus.docs {
        let p = d.record.get("phase").and_then(Value::as_str).unwrap().to_string();
        *counts.entry(p).or_default() += 1;
    }
    let top = counts.iter().max_by_key(|(_, c)| **c).map(|(p, _)| p.clone()).unwrap();
    assert!(
        ans.answer().to_lowercase().contains(&top),
        "answer {:?} should name the modal phase {top:?}",
        ans.answer()
    );
    // The trace shows the extraction step doing per-row LLM work.
    let extract_trace = ans
        .result
        .traces
        .iter()
        .find(|t| t.op_kind == "llmExtract")
        .expect("extraction executed");
    assert_eq!(extract_trace.rows_in, 25);
    assert!(extract_trace.llm_calls >= 25);
}

#[test]
fn data_integration_pattern_with_knowledge_graph() {
    // The §1 motivating question: "list the fastest growing companies in
    // the BNPL market and their competitors, where the competitive
    // information may involve a lookup in a database" — here the lookup is
    // the pay-as-you-go knowledge graph built from extracted properties.
    let ctx = Context::new();
    let corpus = Corpus::earnings(42, 40);
    ctx.register_corpus("earnings", &corpus);
    let client = LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, SimConfig::perfect(42))));
    luna::ingest_lake(
        &ctx,
        "earnings",
        "earnings",
        &client,
        luna::earnings_schema(),
        aryn_partitioner::Detector::DetrSim,
    )
    .unwrap();
    let luna = Luna::new(
        ctx,
        &["earnings"],
        LunaConfig {
            sim: SimConfig::perfect(42),
            ..LunaConfig::default()
        },
    )
    .unwrap();
    // The graph exists and has company/sector structure.
    let graph = luna.graph().expect("graph built at construction");
    assert!(graph.nodes_with_label("company").len() >= 10);
    assert!(graph.nodes_with_label("sector").len() >= 3);

    let ans = luna
        .ask("List the fastest growing companies in the AI market and their competitors")
        .unwrap();
    // The plan carries the graph-expansion node and the code renders it.
    assert!(ans
        .optimized_plan
        .nodes
        .iter()
        .any(|n| n.op.kind() == "graphExpand"));
    assert!(luna::codegen::to_python(&ans.optimized_plan).contains("graph_expand"));
    // The expansion's trace rows carry a competitors property drawn from the
    // graph, verified against the extracted sectors.
    let expand_trace = ans
        .result
        .traces
        .iter()
        .find(|t| t.op_kind == "graphExpand")
        .expect("expansion executed");
    assert!(expand_trace.rows_out >= 1);
    // Ground-truth: every top AI company's competitors are the other AI
    // companies in the store.
    let store_sectors: std::collections::BTreeMap<String, String> = luna
        .context()
        .with_store("earnings", |s| {
            s.scan()
                .filter_map(|d| {
                    Some((
                        d.prop("company")?.as_str()?.to_string(),
                        d.prop("sector")?.as_str()?.to_string(),
                    ))
                })
                .collect()
        })
        .unwrap();
    for (company, sector) in store_sectors.iter().filter(|(_, s)| *s == "AI").take(2) {
        let comp = luna::competitors_of(graph, company);
        assert!(
            comp.iter().all(|c| store_sectors.get(&c.id) == Some(sector)),
            "competitors of {company} must share its sector"
        );
    }
}

#[test]
fn unoptimized_plan_renders_figure6_verbatim() {
    // The planner's raw output (before pushdown) renders exactly the
    // paper's Figure 6 code shape, semantic filters and all.
    let (luna, _) = fixture(5, SimConfig::perfect(29));
    let plan = luna
        .plan("What percent of environmentally caused incidents were due to wind?")
        .unwrap();
    let code = luna::codegen::to_python(&plan);
    let expected = "\
out_0 = context.read.opensearch(index_name=\"ntsb\")
out_1 = out_0.filter(\"caused by environmental factors\")
out_2 = out_1.count()
out_3 = out_0.filter(\"caused by wind\")
out_4 = out_3.count()
out_5 = math_operation(expr=\"100 * {out_4} / {out_2}\")
result = out_5
";
    assert_eq!(code, expected);
}

/// Larger-scale end-to-end smoke: 400 documents through the full pipeline
/// and a battery of questions. Ignored by default (several seconds).
#[test]
#[ignore]
fn stress_four_hundred_documents() {
    let ctx = Context::new();
    let corpus = Corpus::ntsb(99, 400);
    ctx.register_corpus("ntsb", &corpus);
    let client = LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, SimConfig::with_seed(99))));
    let n = ingest_lake(
        &ctx,
        "ntsb",
        "ntsb",
        &client,
        ntsb_schema(),
        aryn_partitioner::Detector::DetrSim,
    )
    .unwrap();
    assert_eq!(n, 400);
    let luna = Luna::new(
        ctx,
        &["ntsb"],
        LunaConfig {
            sim: SimConfig::with_seed(99),
            ..LunaConfig::default()
        },
    )
    .unwrap();
    for q in [
        "How many incidents were caused by wind?",
        "Which state had the most incidents?",
        "What percent of environmentally caused incidents were due to wind?",
        "What was the average fatal injuries per incident?",
    ] {
        let ans = luna.ask(q).unwrap();
        assert!(!ans.answer().is_empty(), "{q}");
    }
    // Counts stay near truth even at this scale (extraction error is
    // per-field ~0.5%, so ±4 on 400 docs).
    let truth = corpus
        .docs
        .iter()
        .filter(|d| d.record.get("cause_detail").and_then(Value::as_str) == Some("wind"))
        .count() as f64;
    let got = aryn_llm::semantics::first_number(
        luna.ask("How many incidents were caused by wind?").unwrap().answer(),
    )
    .unwrap();
    assert!((got - truth).abs() <= 5.0, "got {got}, truth {truth}");
}

#[test]
fn section1_motivating_question_verbatim() {
    // "What is yearly revenue growth and outlook of companies whose CEO
    // recently changed?" — the paper's §1 example, end to end.
    let ctx = Context::new();
    let corpus = Corpus::earnings(42, 36);
    ctx.register_corpus("earnings", &corpus);
    let client = LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, SimConfig::perfect(42))));
    luna::ingest_lake(
        &ctx,
        "earnings",
        "earnings",
        &client,
        luna::earnings_schema(),
        aryn_partitioner::Detector::DetrSim,
    )
    .unwrap();
    let luna = Luna::new(
        ctx,
        &["earnings"],
        LunaConfig {
            sim: SimConfig::perfect(42),
            ..LunaConfig::default()
        },
    )
    .unwrap();
    let ans = luna
        .ask("What is the yearly revenue growth and sentiment of companies whose CEO recently changed?")
        .unwrap();
    // The plan filters on the CEO change (pushed down) and the answer names
    // every changed-CEO company with its growth figure and sentiment.
    assert!(ans
        .optimizer_notes
        .iter()
        .any(|n| n.contains("ceo_changed")), "{:?}", ans.optimizer_notes);
    let changed: Vec<String> = corpus
        .docs
        .iter()
        .filter(|d| d.record.get("ceo_changed").and_then(Value::as_bool) == Some(true))
        .filter_map(|d| d.record.get("company").and_then(Value::as_str).map(str::to_string))
        .collect();
    assert!(!changed.is_empty());
    let named = changed
        .iter()
        .filter(|c| ans.answer().contains(c.as_str()))
        .count();
    assert!(
        named * 10 >= changed.len() * 7,
        "answer names {named}/{} changed-CEO companies: {}",
        changed.len(),
        ans.answer()
    );
    assert!(ans.answer().contains("growth_pct"), "{}", ans.answer());
    assert!(ans.answer().contains("sentiment"), "{}", ans.answer());
}

#[test]
fn schema_evolves_with_new_extractions() {
    // §6.1: "The schema can evolve over time, based on new semantic
    // relationships discovered in the data." Ingest with a narrow schema,
    // then enrich the store with a new extracted field; re-discovery picks
    // it up and the planner immediately uses it for structured aggregation.
    let ctx = Context::new();
    let corpus = Corpus::ntsb(3, 15);
    ctx.register_corpus("ntsb", &corpus);
    let client = LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, SimConfig::perfect(3))));
    // Narrow first pass: no "phase".
    ingest_lake(
        &ctx,
        "ntsb",
        "ntsb",
        &client,
        aryn_core::obj! { "us_state_abbrev" => "string" },
        aryn_partitioner::Detector::DetrSim,
    )
    .unwrap();
    let luna1 = Luna::new(
        ctx.clone(),
        &["ntsb"],
        LunaConfig { sim: SimConfig::perfect(3), ..LunaConfig::default() },
    )
    .unwrap();
    assert!(luna1.schemas()[0].field("phase").is_none());
    // The planner compensates with query-time extraction...
    let p1 = luna1.plan("What was the most common phase of incidents?").unwrap();
    assert!(p1.nodes.iter().any(|n| n.op.kind() == "llmExtract"));

    // Second ETL pass enriches the store with the phase field.
    ctx.read_store("ntsb")
        .unwrap()
        .extract_properties(&client, aryn_core::obj! { "phase" => "string" })
        .write_store("ntsb")
        .unwrap();
    let luna2 = Luna::new(
        ctx,
        &["ntsb"],
        LunaConfig { sim: SimConfig::perfect(3), ..LunaConfig::default() },
    )
    .unwrap();
    let phase_field = luna2.schemas()[0].field("phase").expect("schema evolved");
    assert!(phase_field.count >= 13);
    // ...and the evolved schema removes the query-time extraction step.
    let p2 = luna2.plan("What was the most common phase of incidents?").unwrap();
    assert!(
        !p2.nodes.iter().any(|n| n.op.kind() == "llmExtract"),
        "{:?}",
        p2.describe()
    );
}

/// Regression: the planner consults the index schema on every question and
/// every `QueryDatabase` execution; the store maintains its schema
/// incrementally on every put/delete, so no amount of discovery or
/// execution ever triggers a corpus rescan.
#[test]
fn repeated_queries_reuse_cached_index_schema() {
    let ctx = Context::new();
    let corpus = Corpus::ntsb(7, 12);
    ctx.register_corpus("ntsb", &corpus);
    let client = LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, SimConfig::perfect(7))));
    ingest_lake(
        &ctx,
        "ntsb",
        "ntsb",
        &client,
        ntsb_schema(),
        aryn_partitioner::Detector::DetrSim,
    )
    .unwrap();
    let luna = Luna::new(
        ctx.clone(),
        &["ntsb"],
        LunaConfig { sim: SimConfig::perfect(7), ..LunaConfig::default() },
    )
    .unwrap();
    let after_build = ctx.with_store("ntsb", |s| s.schema_scan_count()).unwrap();
    assert_eq!(after_build, 0, "incremental schema maintenance never rescans");
    for _ in 0..3 {
        luna.ask("How many incidents were caused by environmental factors?").unwrap();
        luna.plan("Which incidents were fatal?").unwrap();
    }
    assert_eq!(
        ctx.with_store("ntsb", |s| s.schema_scan_count()).unwrap(),
        after_build,
        "repeated planning and execution must reuse the cached schema"
    );
}

/// Micro-batching is answer-preserving end to end: a Luna with
/// `batch_max_items > 1` returns the same answer as an unbatched one while
/// issuing fewer LLM calls, and the savings surface in `explain_analyze`.
#[test]
fn micro_batched_queries_answer_identically_and_save_calls() {
    // Pushdown is disabled so the planner's llmFilter survives to execution
    // (otherwise it becomes a structured filter and nothing batches).
    let build = |batch: usize| {
        let ctx = Context::new();
        let corpus = Corpus::ntsb(7, 24);
        ctx.register_corpus("ntsb", &corpus);
        let client =
            LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, SimConfig::perfect(7))));
        ingest_lake(
            &ctx,
            "ntsb",
            "ntsb",
            &client,
            ntsb_schema(),
            aryn_partitioner::Detector::DetrSim,
        )
        .unwrap();
        Luna::new(
            ctx,
            &["ntsb"],
            LunaConfig {
                sim: SimConfig::perfect(7),
                batch_max_items: batch,
                batch_token_budget: 1 << 20,
                optimizer: luna::OptimizerCfg { pushdown: false, ..Default::default() },
                ..LunaConfig::default()
            },
        )
        .unwrap()
    };
    let q = "How many incidents were caused by environmental factors?";
    let base = build(1).ask(q).unwrap();
    let ans = build(8).ask(q).unwrap();

    assert_eq!(ans.answer(), base.answer(), "batching changed the answer");
    assert_eq!(base.result.total_batched_calls(), 0);
    assert!(ans.result.total_batched_calls() > 0, "llmFilter must have batched");
    assert!(ans.result.total_calls_saved() > 0);
    assert!(
        ans.result.total_llm_calls() < base.result.total_llm_calls(),
        "batched run must issue fewer calls: {} vs {}",
        ans.result.total_llm_calls(),
        base.result.total_llm_calls()
    );
    let explained = ans.explain_analyze();
    assert!(explained.contains("batch:"), "{explained}");
    assert!(explained.contains("calls saved"), "{explained}");
}

#[test]
fn reliability_chain_degrades_under_blackout_without_changing_the_answer() {
    use aryn_llm::{ChaosSchedule, FaultKind, ReliabilityPolicy};
    let build = |reliability: Option<ReliabilityPolicy>, chaos: Option<ChaosSchedule>| {
        let ctx = Context::new();
        ctx.register_corpus("ntsb", &Corpus::ntsb(7, 16));
        let client =
            LlmClient::new(Arc::new(MockLlm::new(&aryn_llm::GPT4_SIM, SimConfig::perfect(7))));
        ingest_lake(
            &ctx,
            "ntsb",
            "ntsb",
            &client,
            ntsb_schema(),
            aryn_partitioner::Detector::DetrSim,
        )
        .unwrap();
        Luna::new(
            ctx,
            &["ntsb"],
            LunaConfig {
                sim: SimConfig::perfect(7),
                reliability,
                chaos,
                // Keep the semantic filter: pushed down it would become a
                // structured predicate with no LLM calls to degrade.
                optimizer: luna::OptimizerCfg { pushdown: false, ..Default::default() },
                ..LunaConfig::default()
            },
        )
        .unwrap()
    };
    let q = "How many incidents were caused by environmental factors?";
    let calm = build(None, None).ask(q).unwrap();

    // Primary endpoint dark for the whole question; generous deadline so
    // only the breaker + degradation ladder are in play.
    let policy = ReliabilityPolicy {
        deadline_ms: 1e9,
        breaker_window: 4,
        breaker_threshold: 0.5,
        breaker_cooldown_ms: 1e12,
        ..ReliabilityPolicy::default()
    };
    let storm = ChaosSchedule::calm().with_window(FaultKind::Blackout, 0, 100_000);
    let luna = build(Some(policy), Some(storm));
    let ans = luna.ask(q).unwrap();

    assert_eq!(ans.answer(), calm.answer(), "degradation changed the answer");
    assert!(ans.result.total_fallback_calls() > 0, "ladder must have been walked");
    assert!(ans.result.total_degraded_docs() > 0, "degraded docs must be flagged");
    assert!(ans.result.total_breaker_trips() >= 1, "breaker must trip under blackout");
    // Degradation is visible end to end: node traces, explain_analyze, and
    // the optimizer's cost notes.
    let analyzed = ans.explain_analyze();
    assert!(analyzed.contains("degraded:"), "{analyzed}");
    assert!(
        ans.optimizer_notes.iter().any(|n| n.contains("degradation ladder")),
        "{:?}",
        ans.optimizer_notes
    );

    // The calm run with the same reliability policy stays undegraded and
    // bit-identical: the layer is inert without faults.
    let quiet = build(Some(policy), None).ask(q).unwrap();
    assert_eq!(quiet.answer(), calm.answer());
    assert_eq!(quiet.result.total_degraded_docs(), 0);
    assert_eq!(quiet.result.total_fallback_calls(), 0);
}
