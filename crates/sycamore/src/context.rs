//! The Sycamore context: data lake, index sinks, embedder, and execution
//! configuration. Cloning a [`Context`] shares the underlying state, the way
//! paper code passes one `context` around (`context.read.opensearch(...)`).

use crate::docset::{DocSet, Source};
use crate::ingest::IngestShared;
use aryn_core::vfs::{ChaosFs, StdFs, Vfs};
use aryn_core::{ArynError, Document, Result};
use aryn_docgen::layout::RawDocument;
use aryn_docgen::Corpus;
use aryn_index::{
    Catalog, DocStore, HnswIndex, KeywordIndex, StoreConfig, StoreSnapshot, VectorIndex, WalConfig,
};
use aryn_llm::{
    ChaosSchedule, EmbeddingModel, HashedBowEmbedder, ReliabilityPolicy, ReliabilityState,
};
use aryn_telemetry::Telemetry;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How idle morsel workers acquire more work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// Scan the other workers' deques in ring order and steal from the cold
    /// end (the default). Keeps all workers busy under skew.
    #[default]
    Ring,
    /// Never steal: a worker exits once its own deque drains. Useful for
    /// isolating scheduling effects in tests and benchmarks.
    Disabled,
}

/// How pipelines execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Worker threads for per-document stages (1 = sequential).
    pub threads: usize,
    /// Documents per work morsel in the parallel executor: each worker runs
    /// one morsel through the whole fused segment before taking the next.
    /// This is an upper bound — small inputs are split finer so every worker
    /// gets work. Morsel size never affects results, only scheduling.
    pub morsel_size: usize,
    /// Work-stealing policy for idle morsel workers.
    pub steal: StealPolicy,
    /// Injected worker-failure probability per (doc, attempt) — exercises
    /// the Ray-style retry path.
    pub fail_rate: f64,
    /// Retries per document before it is dropped/failed.
    pub max_retries: u32,
    /// Drop failing documents (recorded in stats) instead of failing the
    /// whole pipeline.
    pub skip_failures: bool,
    pub seed: u64,
    /// Maximum documents packed into one LLM micro-batch call for batchable
    /// semantic ops (`llm_filter`, `extract_properties`). 1 = batching off
    /// (the default): every document gets its own call, preserving
    /// historical call counts exactly.
    pub batch_max_items: usize,
    /// Token budget for the packed payload of one micro-batch call.
    pub batch_token_budget: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 1,
            morsel_size: 32,
            steal: StealPolicy::Ring,
            fail_rate: 0.0,
            max_retries: 3,
            skip_failures: false,
            seed: 0x5CA9,
            batch_max_items: 1,
            batch_token_budget: 2048,
        }
    }
}

/// Entries of one lake: `(doc id, raw rendering)` pairs.
pub(crate) type LakeEntries = Vec<(String, Arc<RawDocument>)>;

pub(crate) struct ContextInner {
    /// "Data lake" of raw renderings: lake name -> (doc id, raw document).
    pub lake: RwLock<BTreeMap<String, LakeEntries>>,
    /// Document stores (the OpenSearch-like sink).
    pub catalog: RwLock<Catalog>,
    /// Keyword indexes.
    pub keyword: RwLock<BTreeMap<String, KeywordIndex>>,
    /// Vector indexes.
    pub vector: RwLock<BTreeMap<String, Box<dyn VectorIndex>>>,
    /// Named in-memory materializations, keyed by name and stamped with a
    /// fingerprint of the op-prefix that produced them — so a checkpoint
    /// written by one pipeline shape is never reused by a different one.
    pub materialized: RwLock<BTreeMap<String, (u64, Vec<Document>)>>,
    /// Shared reliability state (per-query deadline budget + per-model
    /// circuit breakers). `None` = reliability off; LLM ops built on this
    /// context attach it when present.
    pub reliability: RwLock<Option<Arc<ReliabilityState>>>,
    /// Chaos fault schedule wrapped around LLM ops built on this context
    /// (one independent schedule clock per op). `None` = calm.
    pub chaos: RwLock<Option<ChaosSchedule>>,
    pub embedder: Arc<dyn EmbeddingModel>,
    /// Execution configuration. Behind a lock so query-time knobs (the
    /// micro-batching pair) can be adjusted on a live context without
    /// rebuilding its sinks; `ExecConfig` is `Copy`, so readers take
    /// snapshots.
    pub exec: RwLock<ExecConfig>,
    /// Span collector shared by the executor, transforms, and the
    /// partitioner; `with_exec` contexts share it so one trace covers a
    /// whole ingest-plus-query session.
    pub telemetry: Telemetry,
    /// Live ingest streams by target store: shared counters registered by
    /// [`crate::ingest::Ingestor`] so query layers can report segment /
    /// compaction activity and index lag alongside a question's trace.
    pub ingest: RwLock<BTreeMap<String, Arc<IngestShared>>>,
    /// The filesystem durable components go through ([`StdFs`] by default).
    /// [`Context::set_chaos`] swaps in a fault-injecting wrapper when the
    /// schedule carries storage faults.
    pub vfs: RwLock<Arc<dyn Vfs>>,
}

/// Shared handle to the Sycamore runtime state.
#[derive(Clone)]
pub struct Context {
    pub(crate) inner: Arc<ContextInner>,
    /// Session/tenant tag carried by this *handle*, not by the shared inner
    /// state: concurrent sessions over one runtime each hold their own
    /// tagged clone (see [`Context::with_session_tag`]), so tagging never
    /// races. Stage stats and spans report it for per-tenant attribution.
    session: Option<Arc<str>>,
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

impl Context {
    /// A context with the default hashed-BoW embedder (256 dims).
    pub fn new() -> Context {
        Context::with_embedder(Arc::new(HashedBowEmbedder::new(256, 0xE3B)))
    }

    pub fn with_embedder(embedder: Arc<dyn EmbeddingModel>) -> Context {
        Context {
            inner: Arc::new(ContextInner {
                lake: RwLock::new(BTreeMap::new()),
                catalog: RwLock::new(Catalog::new()),
                keyword: RwLock::new(BTreeMap::new()),
                vector: RwLock::new(BTreeMap::new()),
                materialized: RwLock::new(BTreeMap::new()),
                reliability: RwLock::new(None),
                chaos: RwLock::new(None),
                embedder,
                exec: RwLock::new(ExecConfig::default()),
                telemetry: Telemetry::new("sycamore"),
                ingest: RwLock::new(BTreeMap::new()),
                vfs: RwLock::new(Arc::new(StdFs)),
            }),
            session: None,
        }
    }

    /// A handle over the same shared runtime that tags everything it
    /// executes with `tag` (conventionally `tenant` or `tenant/session`).
    /// Cheap — no state is copied — and purely additive: stage stats carry
    /// the tag in [`crate::stats::StageStats::tenant`] and stage spans note
    /// it, so a multi-tenant service can attribute counters per tenant.
    pub fn with_session_tag(&self, tag: &str) -> Context {
        Context {
            inner: Arc::clone(&self.inner),
            session: Some(Arc::from(tag)),
        }
    }

    /// The session/tenant tag carried by this handle, if any.
    pub fn session_tag(&self) -> Option<&str> {
        self.session.as_deref()
    }

    /// Returns a context with a different execution configuration, carrying
    /// a snapshot of this context's lake and materializations. Index sinks
    /// (catalog, keyword, vector) start empty: executor settings are chosen
    /// before ingestion, and sharing mutable sinks across configs would make
    /// runs order-dependent.
    pub fn with_exec(&self, exec: ExecConfig) -> Context {
        Context {
            inner: Arc::new(ContextInner {
                lake: RwLock::new(self.inner.lake.read().clone()),
                catalog: RwLock::new(Catalog::new()),
                keyword: RwLock::new(BTreeMap::new()),
                vector: RwLock::new(BTreeMap::new()),
                materialized: RwLock::new(self.inner.materialized.read().clone()),
                reliability: RwLock::new(self.inner.reliability.read().clone()),
                chaos: RwLock::new(self.inner.chaos.read().clone()),
                embedder: Arc::clone(&self.inner.embedder),
                exec: RwLock::new(exec),
                telemetry: self.inner.telemetry.clone(),
                ingest: RwLock::new(BTreeMap::new()),
                vfs: RwLock::new(self.inner.vfs.read().clone()),
            }),
            session: self.session.clone(),
        }
    }

    pub fn exec_config(&self) -> ExecConfig {
        *self.inner.exec.read()
    }

    /// Adjusts the micro-batching knobs in place. Unlike [`Context::with_exec`],
    /// which starts the index sinks empty because executor settings are an
    /// ingest-time choice, batching is a query-time concern: Luna applies its
    /// configured knobs to an existing context without discarding indexes.
    pub fn set_batch(&self, max_items: usize, token_budget: usize) {
        let mut exec = self.inner.exec.write();
        exec.batch_max_items = max_items.max(1);
        exec.batch_token_budget = token_budget.max(1);
    }

    /// Adjusts the parallel-execution knobs in place: worker count, morsel
    /// size, and steal policy. Like [`Context::set_batch`] this mutates the
    /// live context without discarding index sinks — parallelism is a
    /// query-time concern (Luna applies its configured worker count to an
    /// already-ingested context). Results never depend on these knobs, only
    /// wall time does.
    pub fn set_parallelism(&self, threads: usize, morsel_size: usize, steal: StealPolicy) {
        let mut exec = self.inner.exec.write();
        exec.threads = threads.max(1);
        exec.morsel_size = morsel_size.max(1);
        exec.steal = steal;
    }

    /// Installs a reliability policy on this context and returns the shared
    /// state. LLM ops constructed afterwards attach it: their calls draw
    /// down one per-query deadline budget and feed per-model circuit
    /// breakers. Like [`Context::set_batch`] this mutates the live context —
    /// reliability is a query-time concern.
    pub fn set_reliability(&self, policy: ReliabilityPolicy) -> Arc<ReliabilityState> {
        let state = ReliabilityState::new(policy);
        *self.inner.reliability.write() = Some(Arc::clone(&state));
        state
    }

    /// The installed reliability state, if any.
    pub fn reliability(&self) -> Option<Arc<ReliabilityState>> {
        self.inner.reliability.read().clone()
    }

    /// Installs a chaos fault schedule. Each LLM op constructed afterwards
    /// wraps its model in a [`aryn_llm::ChaosModel`] with an independent
    /// copy of this schedule (per-op call clocks), so faults land
    /// deterministically regardless of stage interleaving. When the
    /// schedule carries storage faults, the context VFS is additionally
    /// wrapped in a [`ChaosFs`] (one shared IO-op clock), so WAL appends,
    /// segment seals, cache appends, and materialize checkpoints all sit in
    /// the blast radius.
    pub fn set_chaos(&self, schedule: ChaosSchedule) {
        if !schedule.storage.is_calm() {
            let current = self.inner.vfs.read().clone();
            *self.inner.vfs.write() = Arc::new(ChaosFs::wrap(current, schedule.storage.clone()));
        }
        *self.inner.chaos.write() = Some(schedule);
    }

    /// The installed chaos schedule, if any.
    pub fn chaos(&self) -> Option<ChaosSchedule> {
        self.inner.chaos.read().clone()
    }

    /// The filesystem handle durable components share.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        self.inner.vfs.read().clone()
    }

    /// Replaces the context filesystem (tests inject a `MemFs`; chaos harnesses
    /// inject a pre-wrapped [`ChaosFs`]). Components capture the handle at
    /// construction/open time, so install the VFS before opening stores.
    pub fn set_vfs(&self, fs: Arc<dyn Vfs>) {
        *self.inner.vfs.write() = fs;
    }

    /// The context's span collector. Clone it to record from transforms or
    /// hand it to the partitioner; call `.snapshot()`/`.take()` for export.
    pub fn telemetry(&self) -> Telemetry {
        self.inner.telemetry.clone()
    }

    pub fn embedder(&self) -> Arc<dyn EmbeddingModel> {
        Arc::clone(&self.inner.embedder)
    }

    /// Registers a synthetic corpus's raw renderings as a lake.
    pub fn register_corpus(&self, lake: &str, corpus: &Corpus) {
        let entries = corpus
            .docs
            .iter()
            .map(|d| (d.id.clone(), Arc::new(d.raw.clone())))
            .collect();
        self.inner.lake.write().insert(lake.to_string(), entries);
    }

    /// Looks up one raw rendering in a lake.
    pub fn raw_from_lake(&self, lake: &str, id: &str) -> Option<Arc<RawDocument>> {
        self.inner
            .lake
            .read()
            .get(lake)
            .and_then(|docs| docs.iter().find(|(k, _)| k == id))
            .map(|(_, raw)| Arc::clone(raw))
    }

    /// DocSet over the raw documents of a lake (unpartitioned).
    pub fn read_lake(&self, lake: &str) -> Result<DocSet> {
        if !self.inner.lake.read().contains_key(lake) {
            return Err(ArynError::Index(format!("unknown lake {lake:?}")));
        }
        Ok(DocSet::new(self.clone(), Source::Lake(lake.to_string())))
    }

    /// DocSet over a document store (the `context.read.opensearch(...)` of
    /// the paper's Figure 6).
    pub fn read_store(&self, name: &str) -> Result<DocSet> {
        self.inner.catalog.read().get(name)?;
        Ok(DocSet::new(self.clone(), Source::Store(name.to_string())))
    }

    /// DocSet over in-memory documents.
    pub fn read_docs(&self, docs: Vec<Document>) -> DocSet {
        DocSet::new(self.clone(), Source::Docs(Arc::new(docs)))
    }

    /// DocSet over a previous materialization.
    pub fn read_materialized(&self, name: &str) -> Result<DocSet> {
        if !self.inner.materialized.read().contains_key(name) {
            return Err(ArynError::Index(format!("unknown materialization {name:?}")));
        }
        Ok(DocSet::new(self.clone(), Source::Materialized(name.to_string())))
    }

    /// DocSet over a frozen store snapshot: the pipeline reads the
    /// snapshot's contents no matter what ingestion or compaction does to
    /// the live store in the meantime.
    pub fn read_snapshot(&self, name: &str, snap: Arc<StoreSnapshot>) -> DocSet {
        DocSet::new(
            self.clone(),
            Source::Snapshot {
                name: name.to_string(),
                snap,
            },
        )
    }

    // --- sink accessors -----------------------------------------------------

    /// Runs `f` with a read view of a document store.
    pub fn with_store<T>(&self, name: &str, f: impl FnOnce(&DocStore) -> T) -> Result<T> {
        let catalog = self.inner.catalog.read();
        Ok(f(catalog.get(name)?))
    }

    /// Runs `f` with a mutable view of a document store — the per-document
    /// write path streaming ingestion uses (unlike [`Context::put_store`],
    /// which replaces the store wholesale).
    pub fn with_store_mut<T>(&self, name: &str, f: impl FnOnce(&mut DocStore) -> T) -> Result<T> {
        let mut catalog = self.inner.catalog.write();
        Ok(f(catalog.get_mut(name)?))
    }

    /// Takes an MVCC snapshot of a store: a frozen view that stays
    /// bit-stable while ingestion and compaction continue underneath.
    pub fn snapshot_store(&self, name: &str) -> Result<Arc<StoreSnapshot>> {
        self.with_store(name, |s| Arc::new(s.snapshot()))
    }

    /// Inserts (replacing) a document store.
    pub fn put_store(&self, name: &str, store: DocStore) {
        self.inner.catalog.write().insert(name, store);
    }

    /// Opens (or creates) a durable [`DocStore`] at `dir` through the
    /// context VFS, registers it under `name`, and returns its post-recovery
    /// stats (`wal_replayed`, `torn_tail_truncated`, `segments_recovered`,
    /// ...). Acked writes into this store survive a process crash.
    pub fn open_store(
        &self,
        name: &str,
        dir: impl Into<std::path::PathBuf>,
        config: StoreConfig,
        wal: WalConfig,
    ) -> Result<aryn_index::StoreStats> {
        let store = DocStore::open_with(dir, self.vfs(), config, wal)?;
        let stats = store.stats();
        self.put_store(name, store);
        Ok(stats)
    }

    /// Registers an ingest stream's shared counters under its target store
    /// name (done by [`crate::ingest::Ingestor::new`]).
    pub fn register_ingest(&self, store: &str, shared: Arc<IngestShared>) {
        self.inner
            .ingest
            .write()
            .insert(store.to_string(), shared);
    }

    /// The ingest stream feeding a store, if one is registered.
    pub fn ingest_stream(&self, store: &str) -> Option<Arc<IngestShared>> {
        self.inner.ingest.read().get(store).cloned()
    }

    /// Runs `f` with a read view of a keyword index.
    pub fn with_keyword<T>(&self, name: &str, f: impl FnOnce(&KeywordIndex) -> T) -> Result<T> {
        let kw = self.inner.keyword.read();
        let ix = kw
            .get(name)
            .ok_or_else(|| ArynError::Index(format!("unknown keyword index {name:?}")))?;
        Ok(f(ix))
    }

    /// Runs `f` with a read view of a vector index.
    pub fn with_vector<T>(
        &self,
        name: &str,
        f: impl FnOnce(&dyn VectorIndex) -> T,
    ) -> Result<T> {
        let vx = self.inner.vector.read();
        let ix = vx
            .get(name)
            .ok_or_else(|| ArynError::Index(format!("unknown vector index {name:?}")))?;
        Ok(f(ix.as_ref()))
    }

    /// Creates an empty HNSW vector index with the context embedder's dims.
    pub fn create_vector_index(&self, name: &str) {
        let dims = self.inner.embedder.dims();
        self.inner
            .vector
            .write()
            .insert(name.to_string(), Box::new(HnswIndex::with_dims(dims)));
    }

    /// Names of all materializations currently cached.
    pub fn materialization_names(&self) -> Vec<String> {
        self.inner.materialized.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_read_lake() {
        let ctx = Context::new();
        let corpus = Corpus::ntsb(1, 3);
        ctx.register_corpus("ntsb", &corpus);
        assert!(ctx.read_lake("ntsb").is_ok());
        assert!(ctx.read_lake("none").is_err());
        assert!(ctx.raw_from_lake("ntsb", &corpus.docs[0].id).is_some());
        assert!(ctx.raw_from_lake("ntsb", "ghost").is_none());
    }

    #[test]
    fn stores_and_indexes_roundtrip() {
        let ctx = Context::new();
        assert!(ctx.read_store("s").is_err());
        ctx.put_store("s", DocStore::new());
        assert!(ctx.read_store("s").is_ok());
        assert_eq!(ctx.with_store("s", |s| s.len()).unwrap(), 0);
        ctx.create_vector_index("v");
        assert_eq!(ctx.with_vector("v", |v| v.len()).unwrap(), 0);
        assert!(ctx.with_keyword("k", |k| k.len()).is_err());
    }

    #[test]
    fn set_batch_adjusts_live_context_without_dropping_sinks() {
        let ctx = Context::new();
        assert_eq!(ctx.exec_config().batch_max_items, 1);
        ctx.put_store("s", DocStore::new());
        ctx.set_batch(8, 4096);
        let cfg = ctx.exec_config();
        assert_eq!(cfg.batch_max_items, 8);
        assert_eq!(cfg.batch_token_budget, 4096);
        assert!(ctx.read_store("s").is_ok());
        ctx.set_batch(0, 0);
        assert_eq!(ctx.exec_config().batch_max_items, 1);
        assert_eq!(ctx.exec_config().batch_token_budget, 1);
    }

    #[test]
    fn set_parallelism_adjusts_live_context_and_clamps() {
        let ctx = Context::new();
        let d = ctx.exec_config();
        assert_eq!(d.threads, 1);
        assert_eq!(d.morsel_size, 32);
        assert_eq!(d.steal, StealPolicy::Ring);
        ctx.put_store("s", DocStore::new());
        ctx.set_parallelism(8, 16, StealPolicy::Disabled);
        let cfg = ctx.exec_config();
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.morsel_size, 16);
        assert_eq!(cfg.steal, StealPolicy::Disabled);
        assert!(ctx.read_store("s").is_ok(), "sinks survive the knob change");
        ctx.set_parallelism(0, 0, StealPolicy::Ring);
        assert_eq!(ctx.exec_config().threads, 1);
        assert_eq!(ctx.exec_config().morsel_size, 1);
    }

    #[test]
    fn with_exec_shares_lake_but_not_sinks() {
        let ctx = Context::new();
        ctx.register_corpus("ntsb", &Corpus::ntsb(1, 1));
        let par = ctx.with_exec(ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        });
        assert!(par.read_lake("ntsb").is_ok());
        assert_eq!(par.exec_config().threads, 4);
    }
}
