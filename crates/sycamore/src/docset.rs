//! DocSets: "reliable distributed collections ... the elements are
//! hierarchical documents" (paper §3). A DocSet is a lazy plan over a source;
//! transforms build the plan, actions execute it. Execution is morsel-driven
//! (see [`crate::exec`] and DESIGN.md §5g): per-document transforms fuse into
//! segments run in parallel over small document morsels, while barrier ops
//! (sort, reduce, limit, summarize_all, materialize) synchronize the whole
//! collection. Parallelism never changes results — only wall time.

use crate::context::Context;
use crate::op::{Agg, ElementSelector, Op, PartitionCfg};
use crate::stats::ExecStats;
use aryn_core::{ArynError, Document, Result, Value};
use aryn_index::DocStore;
use aryn_llm::LlmClient;
use std::path::PathBuf;
use std::sync::Arc;

/// Where a DocSet's documents come from.
#[derive(Clone)]
pub enum Source {
    /// Raw documents of a lake (unpartitioned).
    Lake(String),
    /// A document store in the catalog.
    Store(String),
    /// Literal in-memory documents.
    Docs(Arc<Vec<Document>>),
    /// A named materialization.
    Materialized(String),
    /// A frozen MVCC view of a store (`name` is the store it was taken
    /// from): reads stay bit-stable while ingestion continues underneath.
    Snapshot {
        name: String,
        snap: Arc<aryn_index::StoreSnapshot>,
    },
}

/// A lazy, transformable collection of documents.
#[derive(Clone)]
pub struct DocSet {
    ctx: Context,
    source: Source,
    ops: Vec<Op>,
}

impl DocSet {
    pub(crate) fn new(ctx: Context, source: Source) -> DocSet {
        DocSet {
            ctx,
            source,
            ops: Vec::new(),
        }
    }

    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// The logical plan (op names), for inspection and tests.
    pub fn plan(&self) -> Vec<String> {
        self.ops.iter().map(Op::name).collect()
    }

    /// Lints the pipeline's operator ordering (see [`crate::lint`]):
    /// advisory diagnostics for stale embeddings, misplaced materializes,
    /// dead sorts, and ops after a terminal sink.
    pub fn check(&self) -> Vec<aryn_core::Diagnostic> {
        crate::lint::check_ops(&self.ops)
    }

    /// Statically estimates this pipeline's cost envelope ([`crate::cost`])
    /// for `input_docs` entering documents. Batch width, worker count, and
    /// the reliability/chaos flags are read from the live context so the
    /// bounds match how the pipeline would actually execute.
    pub fn estimate_cost(&self, input_docs: usize) -> crate::cost::PipelineCost {
        let exec = self.ctx.exec_config();
        let cfg = crate::cost::CostCfg {
            input_docs,
            workers: exec.threads,
            batch_max_items: exec.batch_max_items,
            batch_token_budget: exec.batch_token_budget,
            reliability: self.ctx.reliability().is_some(),
            chaos: self.ctx.chaos().is_some(),
            cache: self
                .ops
                .iter()
                .any(|op| op.clients().iter().any(|t| t.cache().is_some())),
            ..crate::cost::CostCfg::default()
        };
        crate::cost::estimate(&self.ops, &cfg)
    }

    fn push(mut self, op: Op) -> DocSet {
        self.ops.push(op);
        self
    }

    /// Clones a client into an op, applying the context's reliability state
    /// (when the client carries none of its own) and wrapping the model in
    /// the context's chaos schedule (each op gets a fresh fault clock).
    /// Fallback tiers inside the client keep their own wiring — chaos
    /// targets the endpoint the op talks to first.
    fn attach(&self, client: &LlmClient) -> LlmClient {
        let mut c = client.clone();
        if c.reliability().is_none() {
            if let Some(state) = self.ctx.reliability() {
                c = c.with_reliability(state);
            }
        }
        if let Some(schedule) = self.ctx.chaos() {
            c = c.with_chaos(schedule);
        }
        c
    }

    // --- core transforms ---------------------------------------------------

    /// Arbitrary per-document function.
    pub fn map(
        self,
        name: &str,
        f: impl Fn(Document) -> Document + Send + Sync + 'static,
    ) -> DocSet {
        self.push(Op::Map {
            name: name.to_string(),
            f: Arc::new(f),
        })
    }

    /// Keep documents matching the predicate.
    pub fn filter(
        self,
        name: &str,
        f: impl Fn(&Document) -> bool + Send + Sync + 'static,
    ) -> DocSet {
        self.push(Op::Filter {
            name: name.to_string(),
            f: Arc::new(f),
        })
    }

    /// 1→N per-document function.
    pub fn flat_map(
        self,
        name: &str,
        f: impl Fn(Document) -> Vec<Document> + Send + Sync + 'static,
    ) -> DocSet {
        self.push(Op::FlatMap {
            name: name.to_string(),
            f: Arc::new(f),
        })
    }

    // --- structural transforms ----------------------------------------------

    /// Run the Aryn Partitioner over the raw renderings of `lake`.
    pub fn partition(self, lake: &str, cfg: PartitionCfg) -> DocSet {
        self.push(Op::Partition {
            lake: lake.to_string(),
            cfg,
        })
    }

    /// Emit each element as its own chunk document.
    pub fn explode(self) -> DocSet {
        self.push(Op::Explode)
    }

    // --- analytic transforms --------------------------------------------------

    /// Group by a property and aggregate.
    pub fn reduce_by_key(self, key: &str, aggs: Vec<(String, Agg)>) -> DocSet {
        self.push(Op::ReduceByKey {
            key: key.to_string(),
            aggs,
        })
    }

    /// Sort by a property.
    pub fn sort_by(self, path: &str, descending: bool) -> DocSet {
        self.push(Op::SortBy {
            path: path.to_string(),
            descending,
        })
    }

    /// Keep the first `n` documents.
    pub fn limit(self, n: usize) -> DocSet {
        self.push(Op::Limit(n))
    }

    // --- LLM-powered transforms -----------------------------------------------

    /// Free-prompt per-document query (paper §5.2 `llm_query`).
    pub fn llm_query(self, client: &LlmClient, template: &str, output_path: &str) -> DocSet {
        self.llm_query_selected(client, template, output_path, ElementSelector::All)
    }

    pub fn llm_query_selected(
        self,
        client: &LlmClient,
        template: &str,
        output_path: &str,
        selector: ElementSelector,
    ) -> DocSet {
        let client = self.attach(client);
        self.push(Op::LlmQuery {
            client,
            template: template.to_string(),
            output_path: output_path.to_string(),
            selector,
        })
    }

    /// Schema-driven extraction (paper Figure 3): `schema` maps field name →
    /// type name ("string" | "int" | "float" | "bool").
    pub fn extract_properties(self, client: &LlmClient, schema: Value) -> DocSet {
        self.extract_properties_selected(client, schema, ElementSelector::All)
    }

    pub fn extract_properties_selected(
        self,
        client: &LlmClient,
        schema: Value,
        selector: ElementSelector,
    ) -> DocSet {
        let client = self.attach(client);
        self.push(Op::ExtractProperties {
            client,
            schema,
            selector,
        })
    }

    /// Semantic filter by natural-language predicate (Luna's `llmFilter`).
    pub fn llm_filter(self, client: &LlmClient, predicate: &str) -> DocSet {
        let client = self.attach(client);
        self.push(Op::LlmFilter {
            client,
            predicate: predicate.to_string(),
            selector: ElementSelector::All,
        })
    }

    /// Closed-set classification: picks one of `labels` per document and
    /// stores it under `output_path` (Table 1's LLM-powered class).
    pub fn llm_classify(
        self,
        client: &LlmClient,
        question: &str,
        labels: &[&str],
        output_path: &str,
    ) -> DocSet {
        let client = self.attach(client);
        self.push(Op::LlmClassify {
            client,
            question: question.to_string(),
            labels: labels.iter().map(|s| s.to_string()).collect(),
            output_path: output_path.to_string(),
            selector: ElementSelector::All,
        })
    }

    /// Per-document summary into `output_path`.
    pub fn summarize(self, client: &LlmClient, instructions: &str, output_path: &str) -> DocSet {
        let client = self.attach(client);
        self.push(Op::Summarize {
            client,
            instructions: instructions.to_string(),
            output_path: output_path.to_string(),
            selector: ElementSelector::All,
        })
    }

    /// Per-section summarization over the document's semantic tree: each
    /// titled section gets a one-sentence summary under
    /// `properties.section_summaries.<slug>`.
    pub fn summarize_sections(self, client: &LlmClient) -> DocSet {
        let client = self.attach(client);
        self.push(Op::SummarizeSections { client })
    }

    /// Collection-level hierarchical summarization into one document.
    pub fn summarize_all(self, client: &LlmClient, instructions: &str) -> DocSet {
        let client = self.attach(client);
        self.push(Op::SummarizeAll {
            client,
            instructions: instructions.to_string(),
        })
    }

    /// Attach embeddings using the context's embedding model.
    pub fn embed(self) -> DocSet {
        self.push(Op::Embed)
    }

    /// Cache the stream here under `name` (memory only).
    pub fn materialize(self, name: &str) -> DocSet {
        self.push(Op::Materialize {
            name: name.to_string(),
            dir: None,
        })
    }

    /// Cache the stream here and spill to `{dir}/{name}.jsonl`.
    pub fn materialize_to(self, name: &str, dir: PathBuf) -> DocSet {
        self.push(Op::Materialize {
            name: name.to_string(),
            dir: Some(dir),
        })
    }

    // --- actions -------------------------------------------------------------

    /// Executes the plan and returns the documents.
    pub fn collect(&self) -> Result<Vec<Document>> {
        Ok(self.collect_stats()?.0)
    }

    /// Executes the plan, returning documents and per-stage statistics.
    pub fn collect_stats(&self) -> Result<(Vec<Document>, ExecStats)> {
        crate::exec::execute(&self.ctx, &self.source, &self.ops)
    }

    /// Executes and counts.
    pub fn count(&self) -> Result<usize> {
        Ok(self.collect()?.len())
    }

    /// Executes and returns the first document, if any.
    pub fn first(&self) -> Result<Option<Document>> {
        Ok(self.collect()?.into_iter().next())
    }

    /// Executes and writes the documents into a (new or replaced) document
    /// store in the catalog.
    pub fn write_store(&self, name: &str) -> Result<usize> {
        let docs = self.collect()?;
        let n = docs.len();
        let store: DocStore = docs.into_iter().collect();
        self.ctx.put_store(name, store);
        Ok(n)
    }

    /// Executes and indexes full text into a keyword index.
    pub fn write_keyword(&self, name: &str) -> Result<usize> {
        let docs = self.collect()?;
        let mut kw = self.ctx.inner.keyword.write();
        let ix = kw.entry(name.to_string()).or_default();
        for d in &docs {
            ix.add(d.id.0.clone(), &d.full_text());
        }
        Ok(docs.len())
    }

    /// Executes and writes embeddings into a vector index (created if
    /// missing). Documents without an embedding are embedded on the fly.
    pub fn write_vector(&self, name: &str) -> Result<usize> {
        let docs = self.collect()?;
        {
            let vx = self.ctx.inner.vector.read();
            if !vx.contains_key(name) {
                drop(vx);
                self.ctx.create_vector_index(name);
            }
        }
        let embedder = self.ctx.embedder();
        let mut vx = self.ctx.inner.vector.write();
        let ix = vx
            .get_mut(name)
            .ok_or_else(|| ArynError::Index(format!("vector index {name:?} vanished mid-write")))?;
        for d in &docs {
            let v = match &d.embedding {
                Some(v) => v.clone(),
                None => embedder.embed(&d.full_text()),
            };
            ix.add(d.id.as_str(), v)?;
        }
        Ok(docs.len())
    }
}
