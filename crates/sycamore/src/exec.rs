//! The execution engine: lazy plans run here.
//!
//! Plans execute stage by stage: maximal runs of per-document ops are fused
//! and run document-parallel (the Ray-substitute: a crossbeam-based worker
//! pool with injected-failure retry, §5.3); barrier ops (sort, reduce,
//! limit, collection summarize, materialize) run on the gathered collection.

use crate::context::Context;
use crate::docset::Source;
use crate::op::Op;
use crate::stats::{ExecStats, StageStats};
use crate::transforms;
use aryn_core::{stable_hash, ArynError, Document, Result};
use aryn_llm::{CacheStats, UsageStats};
use aryn_telemetry::Telemetry;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

/// Combined meter snapshot of every LLM client held by `ops`, deduplicated
/// by meter identity (a fused stage may share one meter across several ops).
/// Taken before and after a stage, the difference attributes LLM calls,
/// tokens, retries, and cost to that stage.
fn llm_snapshot(ops: &[Op]) -> UsageStats {
    let mut seen: Vec<*const aryn_llm::UsageMeter> = Vec::new();
    let mut total = UsageStats::default();
    for op in ops {
        for client in op.clients() {
            let meter = client.meter();
            let ptr = Arc::as_ptr(&meter);
            if !seen.contains(&ptr) {
                seen.push(ptr);
                total.merge(&meter.snapshot());
            }
        }
    }
    total
}

/// Combined call-cache snapshot of every client held by `ops`, deduplicated
/// by cache identity (clients typically share one cache per Context/Luna).
/// Taken before and after a stage, the difference attributes cache hits and
/// saved cost to that stage.
fn cache_snapshot(ops: &[Op]) -> CacheStats {
    let mut seen: Vec<*const aryn_llm::LlmCallCache> = Vec::new();
    let mut total = CacheStats::default();
    for op in ops {
        for client in op.clients() {
            if let Some(cache) = client.cache() {
                let ptr = Arc::as_ptr(&cache);
                if !seen.contains(&ptr) {
                    seen.push(ptr);
                    total.merge(&cache.stats());
                }
            }
        }
    }
    total
}

/// Records one executed stage into the context's trace. Deterministic facts
/// (row counts, retries, LLM counters) go into span counters, which feed the
/// trace fingerprint; wall times, costs, and per-worker utilization (racy
/// under work stealing) go into gauges, which the fingerprint excludes.
fn record_stage_span(
    tel: &Telemetry,
    stage: &StageStats,
    delta: &UsageStats,
    worker_docs: Option<&[usize]>,
) {
    if !tel.is_enabled() {
        return;
    }
    let mut span = tel.span(&stage.name, "stage");
    span.set("rows_in", stage.rows_in as u64)
        .set("rows_out", stage.rows_out as u64)
        .set("retries", stage.retries as u64)
        .set("failed_docs", stage.failed_docs as u64)
        .set("llm_calls", stage.llm_calls)
        .set("llm_input_tokens", stage.llm_input_tokens)
        .set("llm_output_tokens", stage.llm_output_tokens)
        .set("llm_parse_repairs", delta.parse_repairs)
        .set("llm_parse_failures", delta.parse_failures);
    if stage.cache_hit {
        span.set("cache_hit", 1);
    }
    // Hit totals are schedule-independent (hits = cacheable lookups − unique
    // computes), so they may feed the fingerprint; only set when nonzero so
    // cache-off traces keep their historical fingerprints.
    if stage.llm_cache_hits > 0 {
        span.set("llm_cache_hits", stage.llm_cache_hits);
    }
    // Micro-batching counters: packing is deterministic (in-order, fixed
    // budgets), so these may feed the fingerprint too. Only set when the
    // stage actually batched, so batching-off traces keep their historical
    // fingerprints.
    if stage.llm_calls_saved > 0 {
        span.set("llm_calls_saved", stage.llm_calls_saved);
    }
    if !stage.batch_sizes.is_empty() {
        span.set("llm_batched_calls", stage.batch_sizes.len() as u64);
        for (size, count) in stage.batch_size_histogram() {
            span.set(&format!("batch_size_{size}"), count as u64);
        }
    }
    // Reliability counters: breaker trips, fallback answers, and degraded
    // documents are deterministic under the virtual clock. Only set when
    // nonzero, so calm runs keep their historical trace fingerprints.
    if stage.breaker_trips > 0 {
        span.set("breaker_trips", stage.breaker_trips);
    }
    if stage.fallback_calls > 0 {
        span.set("fallback_calls", stage.fallback_calls);
    }
    if stage.degraded_docs > 0 {
        span.set("degraded_docs", stage.degraded_docs);
    }
    span.gauge("wall_ms", stage.wall_ms)
        .gauge("llm_cost_usd", stage.llm_cost_usd);
    if stage.llm_cost_saved_usd > 0.0 {
        span.gauge("llm_cost_saved_usd", stage.llm_cost_saved_usd);
    }
    if let Some(workers) = worker_docs {
        span.gauge("workers", workers.len() as f64);
        for (w, n) in workers.iter().enumerate() {
            span.gauge(&format!("worker_{w}_docs"), *n as f64);
        }
    }
    span.finish();
}

/// Executes a plan, returning the output documents and per-stage stats.
///
/// Materialize points act as resumable checkpoints: if a `materialize(name)`
/// op's cache is already populated (a previous run of this plan, or an
/// explicit warm-up), execution resumes from the *last* cached checkpoint
/// instead of recomputing the upstream stages — the paper's "avoid redundant
/// execution" behaviour (§5.3). A checkpoint is only reused when the
/// fingerprint of the op-prefix that would produce it matches the one
/// stamped at write time, so a changed upstream pipeline (or a different
/// source) invalidates the cache instead of silently serving stale rows.
pub fn execute(ctx: &Context, source: &Source, ops: &[Op]) -> Result<(Vec<Document>, ExecStats)> {
    let tel = ctx.telemetry();
    let mut stats = ExecStats::default();
    // Find the last cached materialize checkpoint whose recorded op-prefix
    // fingerprint matches this plan's, if any.
    let mut resume_at: Option<(usize, Vec<Document>)> = None;
    for (idx, op) in ops.iter().enumerate() {
        if let Op::Materialize { name, .. } = op {
            let fp = plan_fingerprint(source, &ops[..=idx]);
            if let Some((stored_fp, cached)) = ctx.inner.materialized.read().get(name) {
                if *stored_fp == fp {
                    resume_at = Some((idx, cached.clone()));
                }
            }
        }
    }
    let (mut docs, mut i) = match resume_at {
        Some((idx, cached)) => {
            let stage = StageStats {
                name: format!("{} [cache hit]", ops[idx].name()),
                rows_in: cached.len(),
                rows_out: cached.len(),
                cache_hit: true,
                ..StageStats::default()
            };
            record_stage_span(&tel, &stage, &UsageStats::default(), None);
            stats.stages.push(stage);
            (cached, idx + 1)
        }
        None => (resolve_source(ctx, source)?, 0),
    };
    while i < ops.len() {
        if ops[i].is_barrier() {
            let op_slice = std::slice::from_ref(&ops[i]);
            let before = llm_snapshot(op_slice);
            let cache_before = cache_snapshot(op_slice);
            let start = Instant::now();
            let rows_in = docs.len();
            let fp = plan_fingerprint(source, &ops[..=i]);
            let (new_docs, barrier_failed) = apply_barrier(ctx, &ops[i], docs, fp)?;
            docs = new_docs;
            let delta = llm_snapshot(op_slice).since(&before);
            let cache_delta = cache_snapshot(op_slice).since(&cache_before);
            let stage = StageStats {
                name: ops[i].name(),
                rows_in,
                rows_out: docs.len(),
                wall_ms: start.elapsed().as_secs_f64() * 1000.0,
                // A barrier has no per-doc worker retries, but its inner LLM
                // work (e.g. summarize_all's hierarchical batches) can retry;
                // the meter delta is the real count.
                retries: delta.retries as usize,
                // Inner per-batch failures (summarize_all with skip_failures)
                // surface here as dropped source documents.
                failed_docs: barrier_failed,
                llm_calls: delta.calls,
                llm_input_tokens: delta.usage.input_tokens as u64,
                llm_output_tokens: delta.usage.output_tokens as u64,
                llm_cost_usd: delta.usage.cost_usd,
                llm_cache_hits: cache_delta.hits,
                llm_cost_saved_usd: cache_delta.cost_saved_usd,
                llm_calls_saved: delta.calls_saved,
                batch_sizes: Vec::new(),
                breaker_trips: delta.breaker_trips,
                fallback_calls: delta.fallback_calls,
                degraded_docs: delta.degraded_docs,
                cache_hit: false,
            };
            record_stage_span(&tel, &stage, &delta, None);
            stats.stages.push(stage);
            i += 1;
        } else {
            // Fuse the maximal per-doc run.
            let mut j = i;
            while j < ops.len() && !ops[j].is_barrier() {
                j += 1;
            }
            let segment = &ops[i..j];
            let before = llm_snapshot(segment);
            let cache_before = cache_snapshot(segment);
            let start = Instant::now();
            let rows_in = docs.len();
            let outcome = run_segment(ctx, segment, docs)?;
            docs = outcome.docs;
            let delta = llm_snapshot(segment).since(&before);
            let cache_delta = cache_snapshot(segment).since(&cache_before);
            let stage = StageStats {
                name: segment
                    .iter()
                    .map(Op::name)
                    .collect::<Vec<_>>()
                    .join(" → "),
                rows_in,
                rows_out: docs.len(),
                wall_ms: start.elapsed().as_secs_f64() * 1000.0,
                retries: outcome.retries,
                failed_docs: outcome.failed,
                llm_calls: delta.calls,
                llm_input_tokens: delta.usage.input_tokens as u64,
                llm_output_tokens: delta.usage.output_tokens as u64,
                llm_cost_usd: delta.usage.cost_usd,
                llm_cache_hits: cache_delta.hits,
                llm_cost_saved_usd: cache_delta.cost_saved_usd,
                llm_calls_saved: delta.calls_saved,
                batch_sizes: outcome.batch_sizes,
                breaker_trips: delta.breaker_trips,
                fallback_calls: delta.fallback_calls,
                degraded_docs: delta.degraded_docs,
                cache_hit: false,
            };
            // Batched segments carry no per-worker attribution (the
            // coordinating thread issues the packed calls).
            let workers = if outcome.worker_docs.is_empty() {
                None
            } else {
                Some(outcome.worker_docs.as_slice())
            };
            record_stage_span(&tel, &stage, &delta, workers);
            stats.stages.push(stage);
            i = j;
        }
    }
    Ok((docs, stats))
}

/// Fingerprint of the op-prefix that produces a materialize checkpoint:
/// a stable hash over the source identity and [`Op::fingerprint`] of every
/// op up to and including the materialize. Stamped on the checkpoint at
/// write time and checked before resume, so a changed predicate or schema,
/// an added stage, or a different source invalidates the cached rows.
/// Closure bodies (map/filter/flat_map) are invisible — only their
/// user-given names participate.
fn plan_fingerprint(source: &Source, prefix: &[Op]) -> u64 {
    let mut parts: Vec<String> = Vec::with_capacity(prefix.len() + 1);
    parts.push(match source {
        Source::Lake(name) => format!("lake:{name}"),
        Source::Store(name) => format!("store:{name}"),
        Source::Materialized(name) => format!("materialized:{name}"),
        Source::Docs(docs) => {
            let ids: Vec<&str> = docs.iter().map(|d| d.id.as_str()).collect();
            format!("docs:{}", ids.join(","))
        }
    });
    parts.extend(prefix.iter().map(Op::fingerprint));
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    stable_hash(0x4D47_F1A5, &refs)
}

fn resolve_source(ctx: &Context, source: &Source) -> Result<Vec<Document>> {
    match source {
        Source::Docs(docs) => Ok(docs.as_ref().clone()),
        Source::Lake(name) => {
            let lake = ctx.inner.lake.read();
            let entries = lake
                .get(name)
                .ok_or_else(|| ArynError::Index(format!("unknown lake {name:?}")))?;
            let mut docs: Vec<Document> = entries
                .iter()
                .map(|(id, raw)| {
                    let mut d = Document::from_text(id.clone(), raw.full_text());
                    d.set_prop("lake", name.as_str());
                    d
                })
                .collect();
            // Scan order must not depend on ingest interleaving: sort by doc
            // id so runs, materialize fingerprints, and the differential
            // harness are reproducible.
            docs.sort_by(|a, b| a.id.as_str().cmp(b.id.as_str()));
            Ok(docs)
        }
        Source::Store(name) => {
            ctx.with_store(name, |s| s.scan().cloned().collect::<Vec<_>>())
        }
        Source::Materialized(name) => ctx
            .inner
            .materialized
            .read()
            .get(name)
            .map(|(_, docs)| docs.clone())
            .ok_or_else(|| ArynError::Index(format!("unknown materialization {name:?}"))),
    }
}

/// What one fused per-doc stage produced.
struct SegmentOutcome {
    docs: Vec<Document>,
    retries: usize,
    failed: usize,
    /// Documents processed per worker (length = pool size; empty for batched
    /// segments, which have no per-worker attribution). *Which* worker got a
    /// given document is scheduling-dependent under work stealing, so the
    /// per-worker split feeds gauges only — but each worker counts its own
    /// documents exactly, so the sum always equals the number of input
    /// documents (the differential harness asserts this invariant).
    worker_docs: Vec<usize>,
    /// Documents per packed micro-batch call, in issue order. Empty unless
    /// this segment ran a batchable op with batching enabled.
    batch_sizes: Vec<usize>,
}

/// True for ops the micro-batch packer (DESIGN.md §5e) can run
/// collection-at-a-time.
fn is_batchable(op: &Op) -> bool {
    matches!(op, Op::LlmFilter { .. } | Op::ExtractProperties { .. })
}

/// Applies a fused run of per-doc ops over all documents, in parallel when
/// configured, with cross-document micro-batching when enabled.
fn run_segment(ctx: &Context, segment: &[Op], docs: Vec<Document>) -> Result<SegmentOutcome> {
    let cfg = ctx.exec_config();
    if cfg.batch_max_items > 1 && segment.iter().any(is_batchable) {
        run_segment_batched(ctx, segment, docs)
    } else if cfg.threads <= 1 {
        run_segment_sequential(ctx, segment, docs)
    } else {
        run_segment_parallel(ctx, segment, docs)
    }
}

/// Runs a fused segment with cross-document micro-batching: maximal
/// non-batchable sub-runs go through the ordinary per-doc machinery (worker
/// pool, injected failures, retries), while each batchable op (`llm_filter`,
/// `extract_properties`) runs collection-at-a-time through
/// [`aryn_llm::run_batched`], which packs documents into shared prompts and
/// bisects on malformed responses. Per-item semantics — output order, values,
/// and `skip_failures` accounting — match the unbatched path exactly.
fn run_segment_batched(
    ctx: &Context,
    segment: &[Op],
    docs: Vec<Document>,
) -> Result<SegmentOutcome> {
    let cfg = ctx.exec_config();
    let bcfg = aryn_llm::BatchConfig {
        max_items: cfg.batch_max_items,
        token_budget: cfg.batch_token_budget,
    };
    let mut acc = SegmentOutcome {
        docs,
        retries: 0,
        failed: 0,
        worker_docs: Vec::new(),
        batch_sizes: Vec::new(),
    };
    let mut i = 0;
    while i < segment.len() {
        if is_batchable(&segment[i]) {
            let (docs, failed, report) =
                transforms::apply_batched(ctx, &segment[i], std::mem::take(&mut acc.docs), bcfg)?;
            acc.docs = docs;
            acc.failed += failed;
            acc.batch_sizes.extend(report.batch_sizes);
            i += 1;
        } else {
            let mut j = i;
            while j < segment.len() && !is_batchable(&segment[j]) {
                j += 1;
            }
            let sub = if cfg.threads <= 1 {
                run_segment_sequential(ctx, &segment[i..j], std::mem::take(&mut acc.docs))?
            } else {
                run_segment_parallel(ctx, &segment[i..j], std::mem::take(&mut acc.docs))?
            };
            acc.docs = sub.docs;
            acc.retries += sub.retries;
            acc.failed += sub.failed;
            i = j;
        }
    }
    Ok(acc)
}

/// Applies the op chain to one document (with injected worker failures and
/// retries), yielding its 0..N outputs or an error after retries exhaust.
fn process_doc(
    ctx: &Context,
    segment: &[Op],
    stage_tag: &str,
    doc: Document,
) -> (Result<Vec<Document>>, usize) {
    let cfg = ctx.exec_config();
    let mut retries = 0usize;
    for attempt in 0..=cfg.max_retries {
        // Injected worker failure (deterministic per doc+attempt): the
        // Ray-style fault the scheduler must absorb.
        if cfg.fail_rate > 0.0 {
            let h = stable_hash(
                cfg.seed,
                &[stage_tag, doc.id.as_str(), &attempt.to_string()],
            );
            let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
            if draw < cfg.fail_rate {
                retries += 1;
                continue;
            }
        }
        let mut current = vec![doc.clone()];
        let mut err = None;
        'seg: for op in segment {
            let mut next = Vec::with_capacity(current.len());
            for d in std::mem::take(&mut current) {
                match transforms::apply_per_doc(ctx, op, d) {
                    Ok(mut out) => next.append(&mut out),
                    Err(e) => {
                        err = Some(e);
                        break 'seg;
                    }
                }
            }
            current = next;
        }
        match err {
            None => return (Ok(current), retries),
            Some(e) => {
                if attempt == cfg.max_retries {
                    return (Err(e), retries);
                }
                retries += 1;
            }
        }
    }
    (
        Err(ArynError::Exec(format!(
            "worker failed {} times on {:?}",
            cfg.max_retries + 1,
            doc.id
        ))),
        retries,
    )
}

fn run_segment_sequential(
    ctx: &Context,
    segment: &[Op],
    docs: Vec<Document>,
) -> Result<SegmentOutcome> {
    let cfg = ctx.exec_config();
    let tag = segment
        .iter()
        .map(Op::name)
        .collect::<Vec<_>>()
        .join(",");
    let n = docs.len();
    let mut out = Vec::with_capacity(docs.len());
    let mut retries = 0;
    let mut failed = 0;
    for doc in docs {
        let id = doc.id.clone();
        let (res, r) = process_doc(ctx, segment, &tag, doc);
        retries += r;
        match res {
            Ok(mut produced) => out.append(&mut produced),
            Err(e) => {
                if cfg.skip_failures {
                    failed += 1;
                } else {
                    return Err(ArynError::Exec(format!("{id:?}: {e}")));
                }
            }
        }
    }
    Ok(SegmentOutcome {
        docs: out,
        retries,
        failed,
        worker_docs: vec![n],
        batch_sizes: Vec::new(),
    })
}

/// Work item in the parallel pool.
struct Task {
    index: usize,
    doc: Document,
}

/// Shared state of the worker pool: the pending queue and the count of
/// completed tasks, guarded by one `std` mutex so idle workers can park on
/// the paired condvar (the vendored `parking_lot` has no `Condvar`).
struct PoolState {
    queue: VecDeque<Task>,
    done: usize,
}

/// `std` mutex lock that shrugs off poisoning: a panicked worker already
/// surfaces as an execution error via the crossbeam scope, so survivors may
/// keep draining what state remains.
fn pool_lock<'a>(m: &'a StdMutex<PoolState>) -> std::sync::MutexGuard<'a, PoolState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run_segment_parallel(
    ctx: &Context,
    segment: &[Op],
    docs: Vec<Document>,
) -> Result<SegmentOutcome> {
    let cfg = ctx.exec_config();
    let tag = segment
        .iter()
        .map(Op::name)
        .collect::<Vec<_>>()
        .join(",");
    let n = docs.len();
    let state: StdMutex<PoolState> = StdMutex::new(PoolState {
        queue: docs
            .into_iter()
            .enumerate()
            .map(|(index, doc)| Task { index, doc })
            .collect(),
        done: 0,
    });
    // Signals idle workers when the pool drains. No tasks are ever added
    // after start, so the only event a parked worker needs is completion —
    // a condvar wait instead of the old `yield_now()` spin, which burned
    // cores exactly when long calls (or single-flight cache waits) kept the
    // queue empty for a while.
    let drained = Condvar::new();
    let retries_total = AtomicUsize::new(0);
    // Per-worker document counts: each worker tallies locally and publishes
    // its exact total once at exit. The old per-task `fetch_add` on shared
    // atomics was attribution by side effect — counts could interleave with
    // reads taken mid-stage and never carried a guarantee that they summed
    // to the documents processed. A single write under the lock makes the
    // invariant `sum(worker_docs) == n` structural.
    let worker_counts: Mutex<Vec<usize>> = Mutex::new(vec![0; cfg.threads]);
    // Slot per input document: output docs or terminal error.
    let results: Mutex<Vec<Option<Result<Vec<Document>>>>> = Mutex::new((0..n).map(|_| None).collect());

    crossbeam::thread::scope(|scope| {
        for w in 0..cfg.threads {
            let state = &state;
            let drained = &drained;
            let results = &results;
            let retries_total = &retries_total;
            let worker_counts = &worker_counts;
            let tag = &tag;
            scope.spawn(move |_| {
                let mut processed = 0usize;
                loop {
                    let task = {
                        let mut g = pool_lock(state);
                        loop {
                            if let Some(t) = g.queue.pop_front() {
                                break Some(t);
                            }
                            if g.done >= n {
                                break None;
                            }
                            g = drained
                                .wait(g)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    };
                    match task {
                        Some(Task { index, doc }) => {
                            let (res, r) = process_doc(ctx, segment, tag, doc);
                            retries_total.fetch_add(r, Ordering::Relaxed);
                            processed += 1;
                            results.lock()[index] = Some(res);
                            let finished = {
                                let mut g = pool_lock(state);
                                g.done += 1;
                                g.done >= n
                            };
                            if finished {
                                drained.notify_all();
                            }
                        }
                        None => break,
                    }
                }
                worker_counts.lock()[w] = processed;
            });
        }
    })
    .map_err(|_| ArynError::Exec("worker thread panicked".into()))?;

    let mut out = Vec::with_capacity(n);
    let mut failed = 0;
    for (i, slot) in results.into_inner().into_iter().enumerate() {
        match slot.expect("every task completed") {
            Ok(mut produced) => out.append(&mut produced),
            Err(e) => {
                if cfg.skip_failures {
                    failed += 1;
                } else {
                    return Err(ArynError::Exec(format!("doc #{i}: {e}")));
                }
            }
        }
    }
    let worker_docs = worker_counts.into_inner();
    debug_assert_eq!(worker_docs.iter().sum::<usize>(), n);
    Ok(SegmentOutcome {
        docs: out,
        retries: retries_total.into_inner(),
        failed,
        worker_docs,
        batch_sizes: Vec::new(),
    })
}

/// Applies one barrier op, returning the new collection plus the number of
/// source documents dropped by inner failures (summarize_all batches).
/// `fingerprint` identifies the op-prefix that produced `docs`; materialize
/// stamps it on the checkpoint so resume can detect stale caches.
fn apply_barrier(
    ctx: &Context,
    op: &Op,
    docs: Vec<Document>,
    fingerprint: u64,
) -> Result<(Vec<Document>, usize)> {
    match op {
        Op::ReduceByKey { key, aggs } => Ok((transforms::reduce_by_key(docs, key, aggs), 0)),
        Op::SortBy { path, descending } => Ok((transforms::sort_by(docs, path, *descending), 0)),
        Op::Limit(n) => {
            let mut d = docs;
            d.truncate(*n);
            Ok((d, 0))
        }
        Op::SummarizeAll {
            client,
            instructions,
        } => {
            let skip = ctx.exec_config().skip_failures;
            let (doc, failed) =
                transforms::summarize_all_stats(client, instructions, &docs, skip)?;
            Ok((vec![doc], failed))
        }
        Op::Materialize { name, dir } => {
            transforms::materialize(ctx, name, fingerprint, dir.as_deref(), &docs)?;
            Ok((docs, 0))
        }
        other => Err(ArynError::Exec(format!(
            "{} is not a barrier op",
            other.name()
        ))),
    }
}
