//! The execution engine: lazy plans run here.
//!
//! Plans execute as morsel-driven pipelines (Leis et al.; DESIGN.md §5g):
//! maximal runs of per-document ops are fused into segments, the input is
//! split into small morsels, and each worker runs a morsel through the
//! *entire* fused segment before touching the next — so operator boundaries
//! inside a segment are never barriers. Idle workers steal morsels from the
//! cold end of their peers' deques. Only semantically-required barriers
//! remain collection-at-a-time: sort, reduce, limit, collection summarize,
//! materialize, and micro-batched segments (which pack documents across one
//! shared LLM call). Each worker owns a private [`WorkerStats`] shard —
//! merged once at finalize, never locked mid-stage — so per-worker
//! utilization gauges are exact, and retries of injected Ray-style failures
//! stay keyed by `(seed, stage, doc, attempt)`, never by scheduling.

use crate::context::{Context, StealPolicy};
use crate::docset::Source;
use crate::op::Op;
use crate::stats::{ExecStats, StageStats, WorkerStats};
use crate::transforms;
use aryn_core::{stable_hash, ArynError, Document, Result};
use aryn_llm::{CacheStats, UsageStats};
use aryn_telemetry::Telemetry;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Reads this thread's busy clock in nanoseconds. On Linux this is the
/// thread CPU clock (`CLOCK_THREAD_CPUTIME_ID`), which only advances while
/// the thread actually runs — so per-worker busy times, and the critical
/// path derived from them, measure true work distribution even when the
/// host has fewer cores than workers and threads timeshare. Elsewhere it
/// falls back to a process-wide monotonic clock (busy times then include
/// preemption).
#[cfg(target_os = "linux")]
fn busy_clock_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: clock_gettime writes one Timespec; the pointer is valid and
    // the clock id is a constant the kernel supports for every thread.
    if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } != 0 {
        return 0;
    }
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

#[cfg(not(target_os = "linux"))]
fn busy_clock_ns() -> u64 {
    use std::sync::OnceLock;
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Combined meter snapshot of every LLM client held by `ops`, deduplicated
/// by meter identity (a fused stage may share one meter across several ops).
/// Taken before and after a stage, the difference attributes LLM calls,
/// tokens, retries, and cost to that stage.
fn llm_snapshot(ops: &[Op]) -> UsageStats {
    let mut seen: Vec<*const aryn_llm::UsageMeter> = Vec::new();
    let mut total = UsageStats::default();
    for op in ops {
        for client in op.clients() {
            let meter = client.meter();
            let ptr = Arc::as_ptr(&meter);
            if !seen.contains(&ptr) {
                seen.push(ptr);
                total.merge(&meter.snapshot());
            }
        }
    }
    total
}

/// Combined call-cache snapshot of every client held by `ops`, deduplicated
/// by cache identity (clients typically share one cache per Context/Luna).
/// Taken before and after a stage, the difference attributes cache hits and
/// saved cost to that stage.
fn cache_snapshot(ops: &[Op]) -> CacheStats {
    let mut seen: Vec<*const aryn_llm::LlmCallCache> = Vec::new();
    let mut total = CacheStats::default();
    for op in ops {
        for client in op.clients() {
            if let Some(cache) = client.cache() {
                let ptr = Arc::as_ptr(&cache);
                if !seen.contains(&ptr) {
                    seen.push(ptr);
                    total.merge(&cache.stats());
                }
            }
        }
    }
    total
}

/// Records one executed stage into the context's trace. Deterministic facts
/// (row counts, retries, LLM counters) go into span counters, which feed the
/// trace fingerprint. Wall times, costs, and the scheduling-shaped values —
/// morsel counts, steal counts, per-worker docs and busy fractions — go into
/// gauges, which the fingerprint excludes: they are *exact* (each worker
/// owns its shard and the shards merge once at finalize) but they legally
/// vary with worker count and morsel size, so they must not leak into the
/// seed-deterministic fingerprint.
fn record_stage_span(tel: &Telemetry, stage: &StageStats, delta: &UsageStats) {
    if !tel.is_enabled() {
        return;
    }
    let mut span = tel.span(&stage.name, "stage");
    // Tenant attribution: only noted when a serving-layer session tag is
    // present, so single-tenant traces keep their historical fingerprints.
    if !stage.tenant.is_empty() {
        span.note(format!("tenant={}", stage.tenant));
    }
    span.set("rows_in", stage.rows_in as u64)
        .set("rows_out", stage.rows_out as u64)
        .set("retries", stage.retries as u64)
        .set("failed_docs", stage.failed_docs as u64)
        .set("llm_calls", stage.llm_calls)
        .set("llm_input_tokens", stage.llm_input_tokens)
        .set("llm_output_tokens", stage.llm_output_tokens)
        .set("llm_parse_repairs", delta.parse_repairs)
        .set("llm_parse_failures", delta.parse_failures);
    if stage.cache_hit {
        span.set("cache_hit", 1);
    }
    // Hit totals are schedule-independent (hits = cacheable lookups − unique
    // computes), so they may feed the fingerprint; only set when nonzero so
    // cache-off traces keep their historical fingerprints.
    if stage.llm_cache_hits > 0 {
        span.set("llm_cache_hits", stage.llm_cache_hits);
    }
    // Micro-batching counters: packing is deterministic (in-order, fixed
    // budgets), so these may feed the fingerprint too. Only set when the
    // stage actually batched, so batching-off traces keep their historical
    // fingerprints.
    if stage.llm_calls_saved > 0 {
        span.set("llm_calls_saved", stage.llm_calls_saved);
    }
    if !stage.batch_sizes.is_empty() {
        span.set("llm_batched_calls", stage.batch_sizes.len() as u64);
        for (size, count) in stage.batch_size_histogram() {
            span.set(&format!("batch_size_{size}"), count as u64);
        }
    }
    // Reliability counters: breaker trips, fallback answers, and degraded
    // documents are deterministic under the virtual clock. Only set when
    // nonzero, so calm runs keep their historical trace fingerprints.
    if stage.breaker_trips > 0 {
        span.set("breaker_trips", stage.breaker_trips);
    }
    if stage.fallback_calls > 0 {
        span.set("fallback_calls", stage.fallback_calls);
    }
    if stage.degraded_docs > 0 {
        span.set("degraded_docs", stage.degraded_docs);
    }
    span.gauge("wall_ms", stage.wall_ms)
        .gauge("llm_cost_usd", stage.llm_cost_usd);
    if stage.llm_cost_saved_usd > 0.0 {
        span.gauge("llm_cost_saved_usd", stage.llm_cost_saved_usd);
    }
    if !stage.workers.is_empty() {
        span.gauge("workers", stage.workers.len() as f64);
        span.gauge("morsels", stage.morsels() as f64);
        span.gauge("steals", stage.steals() as f64);
        span.gauge("critical_path_ms", stage.critical_path_ms);
        let fractions = stage.worker_busy_fractions();
        for (w, shard) in stage.workers.iter().enumerate() {
            span.gauge(&format!("worker_{w}_docs"), shard.docs as f64);
            span.gauge(&format!("worker_{w}_busy_ms"), shard.busy_ms);
            span.gauge(&format!("worker_{w}_busy_frac"), fractions[w]);
        }
    }
    span.finish();
}

/// Executes a plan, returning the output documents and per-stage stats.
///
/// Materialize points act as resumable checkpoints: if a `materialize(name)`
/// op's cache is already populated (a previous run of this plan, or an
/// explicit warm-up), execution resumes from the *last* cached checkpoint
/// instead of recomputing the upstream stages — the paper's "avoid redundant
/// execution" behaviour (§5.3). A checkpoint is only reused when the
/// fingerprint of the op-prefix that would produce it matches the one
/// stamped at write time, so a changed upstream pipeline (or a different
/// source) invalidates the cache instead of silently serving stale rows.
pub fn execute(ctx: &Context, source: &Source, ops: &[Op]) -> Result<(Vec<Document>, ExecStats)> {
    let tel = ctx.telemetry();
    let mut stats = ExecStats::default();
    // Find the last cached materialize checkpoint whose recorded op-prefix
    // fingerprint matches this plan's, if any.
    let mut resume_at: Option<(usize, Vec<Document>)> = None;
    for (idx, op) in ops.iter().enumerate() {
        if let Op::Materialize { name, .. } = op {
            let fp = plan_fingerprint(source, &ops[..=idx]);
            if let Some((stored_fp, cached)) = ctx.inner.materialized.read().get(name) {
                if *stored_fp == fp {
                    resume_at = Some((idx, cached.clone()));
                }
            }
        }
    }
    let (mut docs, mut i) = match resume_at {
        Some((idx, cached)) => {
            let stage = StageStats {
                name: format!("{} [cache hit]", ops[idx].name()),
                tenant: ctx.session_tag().unwrap_or_default().to_string(),
                rows_in: cached.len(),
                rows_out: cached.len(),
                cache_hit: true,
                ..StageStats::default()
            };
            record_stage_span(&tel, &stage, &UsageStats::default());
            stats.stages.push(stage);
            (cached, idx + 1)
        }
        None => (resolve_source(ctx, source)?, 0),
    };
    while i < ops.len() {
        if ops[i].is_barrier() {
            let op_slice = std::slice::from_ref(&ops[i]);
            let before = llm_snapshot(op_slice);
            let cache_before = cache_snapshot(op_slice);
            let start = Instant::now();
            let rows_in = docs.len();
            let fp = plan_fingerprint(source, &ops[..=i]);
            let (new_docs, barrier_failed) = apply_barrier(ctx, &ops[i], docs, fp)?;
            docs = new_docs;
            let delta = llm_snapshot(op_slice).since(&before);
            let cache_delta = cache_snapshot(op_slice).since(&cache_before);
            let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
            let stage = StageStats {
                name: ops[i].name(),
                tenant: ctx.session_tag().unwrap_or_default().to_string(),
                rows_in,
                rows_out: docs.len(),
                wall_ms,
                // A barrier has no per-doc worker retries, but its inner LLM
                // work (e.g. summarize_all's hierarchical batches) can retry;
                // the meter delta is the real count.
                retries: delta.retries as usize,
                // Inner per-batch failures (summarize_all with skip_failures)
                // surface here as dropped source documents.
                failed_docs: barrier_failed,
                llm_calls: delta.calls,
                llm_input_tokens: delta.usage.input_tokens as u64,
                llm_output_tokens: delta.usage.output_tokens as u64,
                llm_cost_usd: delta.usage.cost_usd,
                llm_cache_hits: cache_delta.hits,
                llm_cost_saved_usd: cache_delta.cost_saved_usd,
                llm_calls_saved: delta.calls_saved,
                batch_sizes: Vec::new(),
                breaker_trips: delta.breaker_trips,
                fallback_calls: delta.fallback_calls,
                degraded_docs: delta.degraded_docs,
                cache_hit: false,
                // A barrier runs on the coordinating thread: its critical
                // path is its wall time and it has no worker shards.
                workers: Vec::new(),
                critical_path_ms: wall_ms,
            };
            record_stage_span(&tel, &stage, &delta);
            stats.stages.push(stage);
            i += 1;
        } else {
            // Fuse the maximal per-doc run.
            let mut j = i;
            while j < ops.len() && !ops[j].is_barrier() {
                j += 1;
            }
            let segment = &ops[i..j];
            let before = llm_snapshot(segment);
            let cache_before = cache_snapshot(segment);
            let start = Instant::now();
            let rows_in = docs.len();
            let outcome = run_segment(ctx, segment, docs)?;
            docs = outcome.docs;
            let delta = llm_snapshot(segment).since(&before);
            let cache_delta = cache_snapshot(segment).since(&cache_before);
            let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
            let stage = StageStats {
                name: segment
                    .iter()
                    .map(Op::name)
                    .collect::<Vec<_>>()
                    .join(" → "),
                tenant: ctx.session_tag().unwrap_or_default().to_string(),
                rows_in,
                rows_out: docs.len(),
                wall_ms,
                retries: outcome.retries,
                failed_docs: outcome.failed,
                llm_calls: delta.calls,
                llm_input_tokens: delta.usage.input_tokens as u64,
                llm_output_tokens: delta.usage.output_tokens as u64,
                llm_cost_usd: delta.usage.cost_usd,
                llm_cache_hits: cache_delta.hits,
                llm_cost_saved_usd: cache_delta.cost_saved_usd,
                llm_calls_saved: delta.calls_saved,
                batch_sizes: outcome.batch_sizes,
                breaker_trips: delta.breaker_trips,
                fallback_calls: delta.fallback_calls,
                degraded_docs: delta.degraded_docs,
                cache_hit: false,
                // Batched segments carry no per-worker shards (the
                // coordinating thread issues the packed calls); their
                // critical path is then simply the stage wall time.
                critical_path_ms: if outcome.workers.is_empty() {
                    wall_ms
                } else {
                    outcome
                        .workers
                        .iter()
                        .map(|w| w.busy_ms)
                        .fold(0.0, f64::max)
                },
                workers: outcome.workers,
            };
            record_stage_span(&tel, &stage, &delta);
            stats.stages.push(stage);
            i = j;
        }
    }
    Ok((docs, stats))
}

/// Fingerprint of the op-prefix that produces a materialize checkpoint:
/// a stable hash over the source identity and [`Op::fingerprint`] of every
/// op up to and including the materialize. Stamped on the checkpoint at
/// write time and checked before resume, so a changed predicate or schema,
/// an added stage, or a different source invalidates the cached rows.
/// Closure bodies (map/filter/flat_map) are invisible — only their
/// user-given names participate.
fn plan_fingerprint(source: &Source, prefix: &[Op]) -> u64 {
    let mut parts: Vec<String> = Vec::with_capacity(prefix.len() + 1);
    parts.push(match source {
        Source::Lake(name) => format!("lake:{name}"),
        Source::Store(name) => format!("store:{name}"),
        Source::Materialized(name) => format!("materialized:{name}"),
        Source::Docs(docs) => {
            let ids: Vec<&str> = docs.iter().map(|d| d.id.as_str()).collect();
            format!("docs:{}", ids.join(","))
        }
        // Sequence-stamped: two snapshots of the same store at different
        // points in the stream are different sources.
        Source::Snapshot { name, snap } => format!("snapshot:{name}@{}", snap.seq()),
    });
    parts.extend(prefix.iter().map(Op::fingerprint));
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    stable_hash(0x4D47_F1A5, &refs)
}

fn resolve_source(ctx: &Context, source: &Source) -> Result<Vec<Document>> {
    match source {
        Source::Docs(docs) => Ok(docs.as_ref().clone()),
        Source::Lake(name) => {
            let lake = ctx.inner.lake.read();
            let entries = lake
                .get(name)
                .ok_or_else(|| ArynError::Index(format!("unknown lake {name:?}")))?;
            let mut docs: Vec<Document> = entries
                .iter()
                .map(|(id, raw)| {
                    let mut d = Document::from_text(id.clone(), raw.full_text());
                    d.set_prop("lake", name.as_str());
                    d
                })
                .collect();
            // Scan order must not depend on ingest interleaving: sort by doc
            // id so runs, materialize fingerprints, and the differential
            // harness are reproducible.
            docs.sort_by(|a, b| a.id.as_str().cmp(b.id.as_str()));
            Ok(docs)
        }
        Source::Store(name) => {
            ctx.with_store(name, |s| s.scan().cloned().collect::<Vec<_>>())
        }
        Source::Snapshot { snap, .. } => Ok(snap.scan().cloned().collect()),
        Source::Materialized(name) => ctx
            .inner
            .materialized
            .read()
            .get(name)
            .map(|(_, docs)| docs.clone())
            .ok_or_else(|| ArynError::Index(format!("unknown materialization {name:?}"))),
    }
}

/// What one fused per-doc stage produced.
struct SegmentOutcome {
    docs: Vec<Document>,
    retries: usize,
    failed: usize,
    /// Per-worker stats shards (empty for batched segments, which have no
    /// per-worker attribution). *Which* worker got a given document is
    /// scheduling-dependent under work stealing, so the per-worker split
    /// feeds gauges only — but each worker counts its own work in a shard it
    /// exclusively owns, so the shard sums always equal the stage totals
    /// (the differential and stats-invariant tests pin this).
    workers: Vec<WorkerStats>,
    /// Documents per packed micro-batch call, in issue order. Empty unless
    /// this segment ran a batchable op with batching enabled.
    batch_sizes: Vec<usize>,
}

/// Applies a fused run of per-doc ops over all documents — morsel-parallel
/// when configured, with cross-document micro-batching when enabled.
fn run_segment(ctx: &Context, segment: &[Op], docs: Vec<Document>) -> Result<SegmentOutcome> {
    let cfg = ctx.exec_config();
    if cfg.batch_max_items > 1 && segment.iter().any(Op::is_batchable) {
        run_segment_batched(ctx, segment, docs)
    } else if cfg.threads <= 1 || docs.len() <= 1 {
        run_segment_sequential(ctx, segment, docs)
    } else {
        run_segment_morsels(ctx, segment, docs)
    }
}

/// Runs a fused segment with cross-document micro-batching: maximal
/// non-batchable sub-runs go through the ordinary per-doc machinery (worker
/// pool, injected failures, retries), while each batchable op (`llm_filter`,
/// `extract_properties`) runs collection-at-a-time through
/// [`aryn_llm::run_batched`], which packs documents into shared prompts and
/// bisects on malformed responses. Per-item semantics — output order, values,
/// and `skip_failures` accounting — match the unbatched path exactly.
fn run_segment_batched(
    ctx: &Context,
    segment: &[Op],
    docs: Vec<Document>,
) -> Result<SegmentOutcome> {
    let cfg = ctx.exec_config();
    let bcfg = aryn_llm::BatchConfig {
        max_items: cfg.batch_max_items,
        token_budget: cfg.batch_token_budget,
    };
    let mut acc = SegmentOutcome {
        docs,
        retries: 0,
        failed: 0,
        workers: Vec::new(),
        batch_sizes: Vec::new(),
    };
    let mut i = 0;
    while i < segment.len() {
        if segment[i].is_batchable() {
            let (docs, failed, report) =
                transforms::apply_batched(ctx, &segment[i], std::mem::take(&mut acc.docs), bcfg)?;
            acc.docs = docs;
            acc.failed += failed;
            acc.batch_sizes.extend(report.batch_sizes);
            i += 1;
        } else {
            let mut j = i;
            while j < segment.len() && !segment[j].is_batchable() {
                j += 1;
            }
            let sub_docs = std::mem::take(&mut acc.docs);
            let sub = if cfg.threads <= 1 || sub_docs.len() <= 1 {
                run_segment_sequential(ctx, &segment[i..j], sub_docs)?
            } else {
                run_segment_morsels(ctx, &segment[i..j], sub_docs)?
            };
            acc.docs = sub.docs;
            acc.retries += sub.retries;
            acc.failed += sub.failed;
            i = j;
        }
    }
    Ok(acc)
}

/// Applies the op chain to one document (with injected worker failures and
/// retries), yielding its 0..N outputs or an error after retries exhaust.
fn process_doc(
    ctx: &Context,
    segment: &[Op],
    stage_tag: &str,
    doc: Document,
) -> (Result<Vec<Document>>, usize) {
    let cfg = ctx.exec_config();
    let mut retries = 0usize;
    for attempt in 0..=cfg.max_retries {
        // Injected worker failure (deterministic per doc+attempt): the
        // Ray-style fault the scheduler must absorb.
        if cfg.fail_rate > 0.0 {
            let h = stable_hash(
                cfg.seed,
                &[stage_tag, doc.id.as_str(), &attempt.to_string()],
            );
            let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
            if draw < cfg.fail_rate {
                retries += 1;
                continue;
            }
        }
        let mut current = vec![doc.clone()];
        let mut err = None;
        'seg: for op in segment {
            let mut next = Vec::with_capacity(current.len());
            for d in std::mem::take(&mut current) {
                match transforms::apply_per_doc(ctx, op, d) {
                    Ok(mut out) => next.append(&mut out),
                    Err(e) => {
                        err = Some(e);
                        break 'seg;
                    }
                }
            }
            current = next;
        }
        match err {
            None => return (Ok(current), retries),
            Some(e) => {
                if attempt == cfg.max_retries {
                    return (Err(e), retries);
                }
                retries += 1;
            }
        }
    }
    (
        Err(ArynError::Exec(format!(
            "worker failed {} times on {:?}",
            cfg.max_retries + 1,
            doc.id
        ))),
        retries,
    )
}

fn run_segment_sequential(
    ctx: &Context,
    segment: &[Op],
    docs: Vec<Document>,
) -> Result<SegmentOutcome> {
    let cfg = ctx.exec_config();
    let tag = segment
        .iter()
        .map(Op::name)
        .collect::<Vec<_>>()
        .join(",");
    let mut out = Vec::with_capacity(docs.len());
    let mut shard = WorkerStats::default();
    let t0 = busy_clock_ns();
    for doc in docs {
        let id = doc.id.clone();
        let (res, r) = process_doc(ctx, segment, &tag, doc);
        shard.retries += r;
        shard.docs += 1;
        match res {
            Ok(mut produced) => out.append(&mut produced),
            Err(e) => {
                if cfg.skip_failures {
                    shard.failed += 1;
                } else {
                    return Err(ArynError::Exec(format!("{id:?}: {e}")));
                }
            }
        }
    }
    shard.busy_ms = (busy_clock_ns().saturating_sub(t0)) as f64 / 1e6;
    Ok(SegmentOutcome {
        docs: out,
        retries: shard.retries,
        failed: shard.failed,
        workers: vec![shard],
        batch_sizes: Vec::new(),
    })
}

/// A morsel: a small contiguous run of input documents. `id` is the morsel's
/// position in input order (its result slot); `base` is the input index of
/// its first document (for fail-stop error reporting). Morsels are cut
/// positionally, so the reassembled output is bit-identical to the
/// sequential result regardless of morsel size, worker count, or who stole
/// what.
struct Morsel {
    id: usize,
    base: usize,
    docs: Vec<Document>,
}

/// What one completed morsel contributes: its output documents (in input
/// order) and how many of its documents failed permanently (skip mode).
type MorselResult = (Vec<Document>, usize);

/// The effective morsel size: the configured size, shrunk for small inputs
/// so the work splits into at least ~4 morsels per worker. Load balance
/// only — never semantics.
fn effective_morsel_size(cfg_size: usize, n: usize, workers: usize) -> usize {
    let target = n.div_ceil(workers.max(1) * 4).max(1);
    cfg_size.max(1).min(target)
}

/// Pops the next morsel for worker `w`: its own deque from the hot end,
/// then — under [`StealPolicy::Ring`] — its peers' deques from the cold end
/// in ring order. `None` means no work is left anywhere this worker may
/// look: since no morsel is ever produced mid-stage, that is a terminal
/// condition and the worker exits (no condvar, no spinning).
fn next_morsel(
    w: usize,
    deques: &[Mutex<VecDeque<Morsel>>],
    steal: StealPolicy,
) -> Option<(Morsel, bool)> {
    if let Some(m) = deques[w].lock().pop_front() {
        return Some((m, false));
    }
    if steal == StealPolicy::Disabled {
        return None;
    }
    let k = deques.len();
    for off in 1..k {
        if let Some(m) = deques[(w + off) % k].lock().pop_back() {
            return Some((m, true));
        }
    }
    None
}

/// The morsel-driven parallel path (DESIGN.md §5g). Input documents are cut
/// into positional morsels, dealt round-robin onto per-worker deques, and
/// each worker runs one morsel at a time through the whole fused segment.
/// Results land in a slot per morsel, so reassembly is in input order. All
/// statistics live in per-worker shards owned `&mut` by their worker — the
/// only shared mutable state is the deques, one result-slot write per
/// morsel, and the fail-stop flag.
fn run_segment_morsels(
    ctx: &Context,
    segment: &[Op],
    docs: Vec<Document>,
) -> Result<SegmentOutcome> {
    let cfg = ctx.exec_config();
    let tag = segment
        .iter()
        .map(Op::name)
        .collect::<Vec<_>>()
        .join(",");
    let n = docs.len();
    let msize = effective_morsel_size(cfg.morsel_size, n, cfg.threads);
    let num_morsels = n.div_ceil(msize);
    let workers = cfg.threads.min(num_morsels).max(1);

    // Cut the input into positional morsels and deal them round-robin.
    let deques: Vec<Mutex<VecDeque<Morsel>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let mut docs = docs.into_iter();
    let mut base = 0usize;
    for id in 0..num_morsels {
        let chunk: Vec<Document> = docs.by_ref().take(msize).collect();
        let len = chunk.len();
        deques[id % workers].lock().push_back(Morsel { id, base, docs: chunk });
        base += len;
    }

    // One result slot per morsel; one shard per worker; a fail-stop flag
    // plus the first error seen (lowest input index wins, matching the
    // sequential path as closely as scheduling allows).
    let slots: Mutex<Vec<Option<MorselResult>>> = Mutex::new((0..num_morsels).map(|_| None).collect());
    let first_error: Mutex<Option<(usize, ArynError)>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let mut shards: Vec<WorkerStats> = (0..workers).map(|_| WorkerStats::default()).collect();

    let worker_loop = |w: usize, shard: &mut WorkerStats| {
        while !abort.load(Ordering::Relaxed) {
            let Some((morsel, stolen)) = next_morsel(w, &deques, cfg.steal) else {
                break;
            };
            shard.morsels += 1;
            if stolen {
                shard.steals += 1;
            }
            let t0 = busy_clock_ns();
            let mut out = Vec::with_capacity(morsel.docs.len());
            let mut failed = 0usize;
            let mut fatal = false;
            for (k, doc) in morsel.docs.into_iter().enumerate() {
                if abort.load(Ordering::Relaxed) {
                    fatal = true;
                    break;
                }
                let id = doc.id.clone();
                let (res, r) = process_doc(ctx, segment, &tag, doc);
                shard.retries += r;
                shard.docs += 1;
                match res {
                    Ok(mut produced) => out.append(&mut produced),
                    Err(e) => {
                        if cfg.skip_failures {
                            failed += 1;
                            shard.failed += 1;
                        } else {
                            let index = morsel.base + k;
                            let mut g = first_error.lock();
                            if g.as_ref().is_none_or(|(i, _)| index < *i) {
                                *g = Some((index, ArynError::Exec(format!("doc #{index} ({id:?}): {e}"))));
                            }
                            abort.store(true, Ordering::Relaxed);
                            fatal = true;
                            break;
                        }
                    }
                }
            }
            shard.busy_ms += (busy_clock_ns().saturating_sub(t0)) as f64 / 1e6;
            if fatal {
                break;
            }
            slots.lock()[morsel.id] = Some((out, failed));
        }
    };

    if let Some((caller_shard, spawned)) = shards.split_first_mut() {
        crossbeam::thread::scope(|scope| {
            for (i, shard) in spawned.iter_mut().enumerate() {
                let worker_loop = &worker_loop;
                scope.spawn(move |_| worker_loop(i + 1, shard));
            }
            // The coordinating thread participates as worker 0, so
            // `threads: k` spawns only k-1 OS threads and small segments do
            // not pay a full fleet of spawns.
            worker_loop(0, caller_shard);
        })
        .map_err(|_| ArynError::Exec("worker thread panicked".into()))?;
    }

    if let Some((_, e)) = first_error.into_inner() {
        return Err(e);
    }
    let mut out = Vec::with_capacity(n);
    let mut failed = 0usize;
    // Every slot is Some here: a missing slot implies an aborted morsel,
    // and every abort records a first_error, which returned above.
    for (mut produced, f) in slots.into_inner().into_iter().flatten() {
        out.append(&mut produced);
        failed += f;
    }
    let retries = shards.iter().map(|s| s.retries).sum();
    debug_assert_eq!(shards.iter().map(|s| s.docs).sum::<usize>(), n);
    Ok(SegmentOutcome {
        docs: out,
        retries,
        failed,
        workers: shards,
        batch_sizes: Vec::new(),
    })
}

/// Applies one barrier op, returning the new collection plus the number of
/// source documents dropped by inner failures (summarize_all batches).
/// `fingerprint` identifies the op-prefix that produced `docs`; materialize
/// stamps it on the checkpoint so resume can detect stale caches.
fn apply_barrier(
    ctx: &Context,
    op: &Op,
    docs: Vec<Document>,
    fingerprint: u64,
) -> Result<(Vec<Document>, usize)> {
    match op {
        Op::ReduceByKey { key, aggs } => Ok((transforms::reduce_by_key(docs, key, aggs), 0)),
        Op::SortBy { path, descending } => Ok((transforms::sort_by(docs, path, *descending), 0)),
        Op::Limit(n) => {
            let mut d = docs;
            d.truncate(*n);
            Ok((d, 0))
        }
        Op::SummarizeAll {
            client,
            instructions,
        } => {
            let skip = ctx.exec_config().skip_failures;
            let (doc, failed) =
                transforms::summarize_all_stats(client, instructions, &docs, skip)?;
            Ok((vec![doc], failed))
        }
        Op::Materialize { name, dir } => {
            transforms::materialize(ctx, name, fingerprint, dir.as_deref(), &docs)?;
            Ok((docs, 0))
        }
        other => Err(ArynError::Exec(format!(
            "{} is not a barrier op",
            other.name()
        ))),
    }
}
