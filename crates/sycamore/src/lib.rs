//! # sycamore
//!
//! The DocSet document-processing engine (paper §5): a Spark-like lazy
//! dataflow over hierarchical documents with core, structural, analytic, and
//! LLM-powered transforms (Table 1), a morsel-driven document-parallel
//! executor with work stealing and Ray-style failure retry (§5.3), named
//! materializations (memory or disk),
//! per-document lineage, and writers into keyword/vector/document stores.
//!
//! ```
//! use sycamore::{Context, PartitionCfg};
//! use aryn_docgen::Corpus;
//!
//! let ctx = Context::new();
//! ctx.register_corpus("ntsb", &Corpus::ntsb(1, 3));
//! let n = ctx.read_lake("ntsb").unwrap()
//!     .partition("ntsb", PartitionCfg::default())
//!     .explode()
//!     .count().unwrap();
//! assert!(n > 3);
//! ```

pub mod context;
pub mod cost;
pub mod docset;
pub mod exec;
pub mod ingest;
pub mod lint;
pub mod op;
pub mod stats;
pub mod transforms;

pub use context::{Context, ExecConfig, StealPolicy};
pub use cost::{CostCfg, Interval, OpCost, PipelineCost};
pub use docset::{DocSet, Source};
pub use ingest::{IngestConfig, IngestReport, IngestShared, Ingestor};
pub use op::{Agg, ElementSelector, Op, PartitionCfg};
pub use stats::{ExecStats, StageStats, WorkerStats};
pub use transforms::{load_materialized, load_materialized_on};
