//! Logical operators — the transform vocabulary of Table 1.
//!
//! A DocSet is a lazy plan: a source plus a list of [`Op`]s. Per-document
//! ops (map/filter/partition/LLM transforms/embed) can run document-parallel;
//! barrier ops (reduce_by_key, sort, limit, collection summarize,
//! materialize) need the whole collection.

use aryn_core::Value;
use aryn_llm::LlmClient;
use aryn_partitioner::Detector;
use std::path::PathBuf;
use std::sync::Arc;

/// User-provided per-document function.
pub type MapFn = Arc<dyn Fn(aryn_core::Document) -> aryn_core::Document + Send + Sync>;
/// User-provided predicate.
pub type FilterFn = Arc<dyn Fn(&aryn_core::Document) -> bool + Send + Sync>;
/// User-provided 1→N function.
pub type FlatMapFn = Arc<dyn Fn(aryn_core::Document) -> Vec<aryn_core::Document> + Send + Sync>;

/// Which elements an LLM transform sees (paper §5.2: a prompt "can be
/// configured to process a subset of elements").
#[derive(Debug, Clone, PartialEq)]
pub enum ElementSelector {
    /// The whole document text.
    All,
    /// Only the first `n` elements (e.g. the first page's prefix).
    First(usize),
    /// Only elements of the given types.
    Types(Vec<aryn_core::ElementType>),
    /// Only elements on pages `0..n`.
    Pages(usize),
}

impl ElementSelector {
    /// Renders the selected portion of a document as prompt context.
    pub fn select_text(&self, doc: &aryn_core::Document) -> String {
        if doc.elements.is_empty() {
            return doc.full_text();
        }
        let mut out = String::new();
        let push = |e: &aryn_core::Element, out: &mut String| {
            let t = e.content_text();
            if !t.is_empty() {
                out.push_str(&t);
                out.push('\n');
            }
        };
        match self {
            ElementSelector::All => doc.elements.iter().for_each(|e| push(e, &mut out)),
            ElementSelector::First(n) => {
                doc.elements.iter().take(*n).for_each(|e| push(e, &mut out))
            }
            ElementSelector::Types(ts) => doc
                .elements
                .iter()
                .filter(|e| ts.contains(&e.etype))
                .for_each(|e| push(e, &mut out)),
            ElementSelector::Pages(n) => doc
                .elements
                .iter()
                .filter(|e| e.page < *n)
                .for_each(|e| push(e, &mut out)),
        }
        out
    }
}

/// Aggregation functions for `reduce_by_key`. All of them "handle missing
/// values" (§5.2): documents without the aggregated property are skipped
/// (except `Count`, which counts group membership).
#[derive(Debug, Clone, PartialEq)]
pub enum Agg {
    /// Number of documents in the group.
    Count,
    /// Sum of a numeric property.
    Sum(String),
    /// Mean of a numeric property.
    Avg(String),
    /// Minimum by total order.
    Min(String),
    /// Maximum by total order.
    Max(String),
    /// Distinct values collected into an array.
    CollectDistinct(String),
}

/// Partition-transform configuration.
#[derive(Clone)]
pub struct PartitionCfg {
    pub detector: Detector,
    pub merge_tables: bool,
    pub use_ocr: bool,
    pub summarize_images: Option<LlmClient>,
    pub seed: u64,
}

impl Default for PartitionCfg {
    fn default() -> Self {
        PartitionCfg {
            detector: Detector::DetrSim,
            merge_tables: true,
            use_ocr: true,
            summarize_images: None,
            seed: 0x9A27,
        }
    }
}

/// One logical operator.
#[derive(Clone)]
pub enum Op {
    /// Arbitrary per-document function.
    Map { name: String, f: MapFn },
    /// Keep documents matching the predicate.
    Filter { name: String, f: FilterFn },
    /// 1→N per-document function.
    FlatMap { name: String, f: FlatMapFn },
    /// Run the Aryn Partitioner on the raw rendering from the lake.
    Partition { lake: String, cfg: PartitionCfg },
    /// Emit each element as its own chunk document.
    Explode,
    /// Free-prompt LLM transform: render `template` (with `{prop}` and
    /// `{text}` placeholders) per document, store the `answer` under
    /// `output_path`.
    LlmQuery {
        client: LlmClient,
        template: String,
        output_path: String,
        selector: ElementSelector,
    },
    /// Schema-driven property extraction (paper Figure 3/4).
    ExtractProperties {
        client: LlmClient,
        schema: Value,
        selector: ElementSelector,
    },
    /// Semantic filter by natural-language predicate.
    LlmFilter {
        client: LlmClient,
        predicate: String,
        selector: ElementSelector,
    },
    /// Closed-set classification into a property.
    LlmClassify {
        client: LlmClient,
        question: String,
        labels: Vec<String>,
        output_path: String,
        selector: ElementSelector,
    },
    /// Per-section summarization using the document's semantic tree
    /// (paper §5.1: documents are hierarchical; long documents have
    /// chapters/sections). One LLM call per section; results land under
    /// `properties.section_summaries.<heading>`.
    SummarizeSections { client: LlmClient },
    /// Per-document summarization into a property.
    Summarize {
        client: LlmClient,
        instructions: String,
        output_path: String,
        selector: ElementSelector,
    },
    /// Attach embeddings (context's embedder).
    Embed,
    /// Group by a property and aggregate. Barrier.
    ReduceByKey {
        key: String,
        aggs: Vec<(String, Agg)>,
    },
    /// Sort by a property (missing values first ascending / last descending
    /// by total order, deterministic). Barrier.
    SortBy { path: String, descending: bool },
    /// Keep the first `n`. Barrier.
    Limit(usize),
    /// Summarize the whole collection into one document, hierarchically
    /// (map-reduce over context-window-sized batches). Barrier.
    SummarizeAll {
        client: LlmClient,
        instructions: String,
    },
    /// Cache the stream here (named; optionally spilled to disk). Barrier.
    Materialize {
        name: String,
        dir: Option<PathBuf>,
    },
}

impl Op {
    /// Operator name for stats, traces, and lineage.
    pub fn name(&self) -> String {
        match self {
            Op::Map { name, .. } => format!("map({name})"),
            Op::Filter { name, .. } => format!("filter({name})"),
            Op::FlatMap { name, .. } => format!("flat_map({name})"),
            Op::Partition { .. } => "partition".into(),
            Op::Explode => "explode".into(),
            Op::LlmQuery { .. } => "llm_query".into(),
            Op::ExtractProperties { .. } => "extract_properties".into(),
            Op::LlmFilter { .. } => "llm_filter".into(),
            Op::LlmClassify { .. } => "llm_classify".into(),
            Op::SummarizeSections { .. } => "summarize_sections".into(),
            Op::Summarize { .. } => "summarize".into(),
            Op::Embed => "embed".into(),
            Op::ReduceByKey { key, .. } => format!("reduce_by_key({key})"),
            Op::SortBy { path, .. } => format!("sort({path})"),
            Op::Limit(n) => format!("limit({n})"),
            Op::SummarizeAll { .. } => "summarize_all".into(),
            Op::Materialize { name, .. } => format!("materialize({name})"),
        }
    }

    /// A string identifying this op for materialize-checkpoint
    /// fingerprints: the display name plus every parameter that changes the
    /// op's output (predicates, schemas, templates, model names, selectors).
    /// Closure bodies (map/filter/flat_map) are invisible — only their
    /// user-given names participate.
    pub fn fingerprint(&self) -> String {
        match self {
            Op::LlmQuery { client, template, output_path, selector } => format!(
                "llm_query|{}|{template}|{output_path}|{selector:?}",
                client.model_name()
            ),
            Op::ExtractProperties { client, schema, selector } => format!(
                "extract_properties|{}|{}|{selector:?}",
                client.model_name(),
                aryn_core::json::to_string(schema)
            ),
            Op::LlmFilter { client, predicate, selector } => format!(
                "llm_filter|{}|{predicate}|{selector:?}",
                client.model_name()
            ),
            Op::LlmClassify { client, question, labels, output_path, selector } => format!(
                "llm_classify|{}|{question}|{}|{output_path}|{selector:?}",
                client.model_name(),
                labels.join(",")
            ),
            Op::Summarize { client, instructions, output_path, selector } => format!(
                "summarize|{}|{instructions}|{output_path}|{selector:?}",
                client.model_name()
            ),
            Op::SummarizeSections { client } => {
                format!("summarize_sections|{}", client.model_name())
            }
            Op::SummarizeAll { client, instructions } => format!(
                "summarize_all|{}|{instructions}",
                client.model_name()
            ),
            Op::ReduceByKey { key, aggs } => format!("reduce_by_key|{key}|{aggs:?}"),
            Op::SortBy { path, descending } => format!("sort|{path}|{descending}"),
            Op::Partition { lake, cfg } => format!(
                "partition|{lake}|{:?}|{}|{}|{}",
                cfg.detector, cfg.merge_tables, cfg.use_ocr, cfg.seed
            ),
            other => other.name(),
        }
    }

    /// The LLM clients this op holds, if any — including every fallback
    /// tier behind a degradation chain, so stage accounting sees calls a
    /// cheaper tier answered. Stats collection snapshots their meters
    /// around a stage to attribute calls/tokens/retries to it.
    pub fn clients(&self) -> Vec<&LlmClient> {
        match self {
            Op::LlmQuery { client, .. }
            | Op::ExtractProperties { client, .. }
            | Op::LlmFilter { client, .. }
            | Op::LlmClassify { client, .. }
            | Op::SummarizeSections { client }
            | Op::Summarize { client, .. }
            | Op::SummarizeAll { client, .. } => client.fallback_chain(),
            Op::Partition { cfg, .. } => cfg
                .summarize_images
                .iter()
                .flat_map(LlmClient::fallback_chain)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Barrier ops need the whole collection at once.
    pub fn is_barrier(&self) -> bool {
        matches!(
            self,
            Op::ReduceByKey { .. }
                | Op::SortBy { .. }
                | Op::Limit(_)
                | Op::SummarizeAll { .. }
                | Op::Materialize { .. }
        )
    }

    /// True for ops the micro-batch packer (DESIGN.md §5e) can run
    /// collection-at-a-time, packing documents into shared LLM calls. When
    /// batching is enabled these become soft barriers: the morsel executor
    /// hands the whole collection to the packer instead of streaming
    /// per-document morsels through them.
    pub fn is_batchable(&self) -> bool {
        matches!(self, Op::LlmFilter { .. } | Op::ExtractProperties { .. })
    }
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_core::{Document, Element, ElementType};

    fn doc_with_elements() -> Document {
        let mut d = Document::new("x");
        d.elements = vec![
            Element::text(ElementType::Title, "A Title"),
            Element::text(ElementType::Text, "first paragraph"),
            {
                let mut e = Element::text(ElementType::Text, "second page text");
                e.page = 1;
                e
            },
        ];
        d
    }

    #[test]
    fn selector_all_first_types_pages() {
        let d = doc_with_elements();
        assert!(ElementSelector::All.select_text(&d).contains("second page"));
        let first = ElementSelector::First(1).select_text(&d);
        assert!(first.contains("A Title") && !first.contains("paragraph"));
        let text_only = ElementSelector::Types(vec![ElementType::Text]).select_text(&d);
        assert!(!text_only.contains("A Title"));
        let page0 = ElementSelector::Pages(1).select_text(&d);
        assert!(!page0.contains("second page"));
    }

    #[test]
    fn selector_falls_back_to_full_text_when_unpartitioned() {
        let d = Document::from_text("y", "raw content");
        assert_eq!(ElementSelector::First(1).select_text(&d), "raw content");
    }

    #[test]
    fn barrier_classification() {
        assert!(Op::Limit(3).is_barrier());
        assert!(Op::SortBy { path: "x".into(), descending: false }.is_barrier());
        assert!(!Op::Explode.is_barrier());
        assert!(!Op::Map { name: "f".into(), f: Arc::new(|d| d) }.is_barrier());
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(Op::Explode.name(), "explode");
        assert_eq!(
            Op::ReduceByKey { key: "state".into(), aggs: vec![] }.name(),
            "reduce_by_key(state)"
        );
        assert_eq!(format!("{:?}", Op::Limit(5)), "limit(5)");
    }
}
