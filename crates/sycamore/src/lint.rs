//! Dataflow lints for DocSet pipelines.
//!
//! The sibling of `luna::analyze` for the ETL side of the paper: a static
//! pass over a [`DocSet`](crate::DocSet)'s logical operator list that flags
//! orderings which execute fine but waste LLM/embedding spend or silently
//! drop work. Reuses the shared [`aryn_core::Diagnostic`] type; the findings
//! are advisory (Warnings/Hints) — pipelines are never refused.
//!
//! `node_id` on a pipeline diagnostic is the operator's index and `path` is
//! `ops[i]`, mirroring how plan diagnostics point into the plan JSON.

use crate::op::Op;
use aryn_core::Diagnostic;

/// Diagnostic codes emitted by the pipeline linter; documented in DESIGN.md
/// (enforced by `cargo xtask lint`).
pub mod codes {
    pub const EXPLODE_AFTER_EMBED: &str = "explode-after-embed";
    pub const STALE_EMBEDDINGS: &str = "stale-embeddings";
    pub const MATERIALIZE_HEAD: &str = "materialize-head";
    pub const OP_AFTER_TERMINAL: &str = "op-after-terminal";
    pub const DEAD_SORT: &str = "dead-sort";
    pub const LIMIT_BEFORE_SORT: &str = "limit-before-sort";

    /// All pipeline lint codes, for documentation checks.
    pub const ALL: &[&str] = &[
        EXPLODE_AFTER_EMBED,
        STALE_EMBEDDINGS,
        MATERIALIZE_HEAD,
        OP_AFTER_TERMINAL,
        DEAD_SORT,
        LIMIT_BEFORE_SORT,
    ];
}

/// Does this op change document content or properties (invalidating
/// embeddings computed earlier)?
fn mutates_docs(op: &Op) -> bool {
    matches!(
        op,
        Op::Map { .. }
            | Op::FlatMap { .. }
            | Op::Partition { .. }
            | Op::Explode
            | Op::LlmQuery { .. }
            | Op::ExtractProperties { .. }
            | Op::LlmClassify { .. }
            | Op::Summarize { .. }
            | Op::SummarizeSections { .. }
    )
}

fn at(code: &'static str, i: usize, message: String) -> Diagnostic {
    Diagnostic::warning(code, message)
        .at_node(i)
        .at_path(format!("ops[{i}]"))
}

/// Lints a logical operator sequence.
pub fn check_ops(ops: &[Op]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut embed_at: Option<usize> = None;
    let mut terminal_at: Option<usize> = None;
    for (i, op) in ops.iter().enumerate() {
        if let Some(t) = terminal_at {
            out.push(
                at(
                    codes::OP_AFTER_TERMINAL,
                    i,
                    format!(
                        "{} runs after the terminal summarize_all at ops[{t}]; it only sees the one summary document",
                        op.name()
                    ),
                )
                .with_suggestion("move the op before summarize_all, or drop it"),
            );
        }
        match op {
            Op::Explode => {
                if let Some(e) = embed_at {
                    out.push(
                        at(
                            codes::EXPLODE_AFTER_EMBED,
                            i,
                            format!(
                                "explode runs after embed at ops[{e}]; chunk documents inherit whole-document embeddings"
                            ),
                        )
                        .with_suggestion("explode first, then embed the chunks"),
                    );
                }
            }
            Op::Embed => embed_at = Some(i),
            Op::Materialize { name, .. } => {
                if i == 0 {
                    out.push(
                        at(
                            codes::MATERIALIZE_HEAD,
                            i,
                            format!("materialize({name}) is the first op; there is nothing computed to checkpoint"),
                        )
                        .with_suggestion("materialize after the expensive stages it should cache"),
                    );
                } else if matches!(ops.get(i - 1), Some(Op::Materialize { .. })) {
                    out.push(
                        at(
                            codes::MATERIALIZE_HEAD,
                            i,
                            format!("materialize({name}) immediately follows another materialize; the second checkpoint caches nothing new"),
                        )
                        .with_suggestion("keep one checkpoint per pipeline segment"),
                    );
                }
            }
            Op::SortBy { path, .. } => {
                match ops.get(i + 1) {
                    Some(Op::SortBy { .. }) | Some(Op::ReduceByKey { .. }) => {
                        out.push(
                            at(
                                codes::DEAD_SORT,
                                i,
                                format!(
                                    "sort({path}) is immediately discarded by the next op ({}), which re-orders the collection",
                                    ops[i + 1].name()
                                ),
                            )
                            .with_suggestion("remove the dead sort"),
                        );
                    }
                    _ => {}
                }
            }
            Op::Limit(n) => {
                if let Some(Op::SortBy { path, .. }) = ops.get(i + 1) {
                    out.push(
                        at(
                            codes::LIMIT_BEFORE_SORT,
                            i,
                            format!(
                                "limit({n}) truncates the collection before sort({path}); a top-k usually sorts first and limits after"
                            ),
                        )
                        .with_suggestion("swap the ops: sort, then limit"),
                    );
                }
            }
            Op::SummarizeAll { .. } => terminal_at = Some(i),
            _ => {}
        }
        // Stale-embedding check after the per-op match so explode gets the
        // more specific code above.
        if embed_at.is_some() && !matches!(op, Op::Explode) && mutates_docs(op) {
            let e = embed_at.unwrap_or(0);
            out.push(
                at(
                    codes::STALE_EMBEDDINGS,
                    i,
                    format!(
                        "{} mutates documents after embed at ops[{e}]; the stored embeddings no longer reflect the content",
                        op.name()
                    ),
                )
                .with_suggestion("embed last, after all content-changing transforms"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_llm::{LlmClient, MockLlm, SimConfig, GPT4_SIM};
    use std::sync::Arc;

    fn client() -> LlmClient {
        LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(7))))
    }

    #[test]
    fn clean_pipeline_is_quiet() {
        let ops = vec![
            Op::Explode,
            Op::ExtractProperties {
                client: client(),
                schema: aryn_core::obj! { "state" => "string" },
                selector: crate::ElementSelector::All,
            },
            Op::Embed,
            Op::SortBy { path: "state".into(), descending: false },
            Op::Limit(5),
        ];
        assert!(check_ops(&ops).is_empty(), "{:?}", check_ops(&ops));
    }

    #[test]
    fn explode_after_embed_flags() {
        let diags = check_ops(&[Op::Embed, Op::Explode]);
        assert!(diags.iter().any(|d| d.code == codes::EXPLODE_AFTER_EMBED));
        assert_eq!(diags[0].node_id, Some(1));
        assert_eq!(diags[0].path, "ops[1]");
    }

    #[test]
    fn mutation_after_embed_flags_stale_embeddings() {
        let ops = vec![
            Op::Embed,
            Op::Summarize {
                client: client(),
                instructions: "tl;dr".into(),
                output_path: "summary".into(),
                selector: crate::ElementSelector::All,
            },
        ];
        let diags = check_ops(&ops);
        assert!(diags.iter().any(|d| d.code == codes::STALE_EMBEDDINGS));
        // Filters do not mutate: no warning.
        let ops = vec![Op::Embed, Op::Limit(3)];
        assert!(check_ops(&ops).is_empty());
    }

    #[test]
    fn materialize_placement_checks() {
        let head = check_ops(&[Op::Materialize { name: "m".into(), dir: None }]);
        assert!(head.iter().any(|d| d.code == codes::MATERIALIZE_HEAD));
        let double = check_ops(&[
            Op::Explode,
            Op::Materialize { name: "a".into(), dir: None },
            Op::Materialize { name: "b".into(), dir: None },
        ]);
        assert!(double.iter().any(|d| d.code == codes::MATERIALIZE_HEAD && d.node_id == Some(2)));
    }

    #[test]
    fn ops_after_terminal_sink_flag() {
        let ops = vec![
            Op::SummarizeAll { client: client(), instructions: "overview".into() },
            Op::Limit(10),
        ];
        let diags = check_ops(&ops);
        assert!(diags.iter().any(|d| d.code == codes::OP_AFTER_TERMINAL));
    }

    #[test]
    fn dead_sort_and_limit_before_sort() {
        let ops = vec![
            Op::SortBy { path: "a".into(), descending: false },
            Op::SortBy { path: "b".into(), descending: true },
        ];
        assert!(check_ops(&ops).iter().any(|d| d.code == codes::DEAD_SORT));
        let ops = vec![
            Op::Limit(3),
            Op::SortBy { path: "a".into(), descending: false },
        ];
        assert!(check_ops(&ops)
            .iter()
            .any(|d| d.code == codes::LIMIT_BEFORE_SORT));
    }
}
