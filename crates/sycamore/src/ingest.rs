//! Streaming ingestion (DESIGN.md §5j): a continuous parse→ingest→index
//! feed where every arrival pays O(doc) work — a memtable put against the
//! LSM [`DocStore`], a postings delta against a [`ShardedKeywordIndex`], an
//! insert into the bounded active shard of a [`ShardedHnsw`], and an
//! optional per-document hook (knowledge-graph upserts) — instead of the
//! offline full-rebuild path. Seals and compactions happen inline at
//! deterministic boundaries; their cost is charged to a virtual clock, which
//! is what makes *index lag* (arrival-to-searchable delay, including any
//! seal/compaction work the document queues behind) a measurable,
//! reproducible number rather than a wall-time artifact.

use crate::context::Context;
use aryn_core::{Document, Result};
use aryn_index::{
    DocStore, ShardedHnsw, ShardedKeywordIndex, StoreConfig, StoreSnapshot, StoreStats,
    VectorIndex,
};
use aryn_llm::EmbeddingModel;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Streaming-ingestion knobs. One `seal_threshold`/`compact_fanout` pair
/// drives the store *and* its keyword/vector sidecars so segment lifecycles
/// stay aligned; the `*_cost_ms` knobs price pipeline stages on the virtual
/// clock (deterministic latency accounting, like the serving layer's DES).
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Documents per segment: memtable/active-shard size that seals.
    pub seal_threshold: usize,
    /// Sealed-segment count that triggers compaction.
    pub compact_fanout: usize,
    /// Virtual cost of one document's parse+index work.
    pub doc_cost_ms: f64,
    /// Virtual cost of sealing a segment (freeze + stats refresh).
    pub seal_cost_ms: f64,
    /// Virtual cost of one full-merge compaction.
    pub compact_cost_ms: f64,
    /// Virtual cost of appending one document's WAL record. Charged only
    /// when the target store is durable (DESIGN.md §5k): an in-memory
    /// store's lag profile is unchanged.
    pub wal_cost_ms: f64,
    /// Additional virtual cost of the per-append fsync when the store's
    /// [`aryn_index::WalConfig`] has `fsync` on. Durable-ack streams pay
    /// `wal_cost_ms + fsync_cost_ms` per arrival before the doc counts as
    /// searchable.
    pub fsync_cost_ms: f64,
    /// Maintain the vector sidecar (embedding each arrival if the document
    /// carries none).
    pub embed: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            seal_threshold: 256,
            compact_fanout: 4,
            doc_cost_ms: 2.0,
            seal_cost_ms: 8.0,
            compact_cost_ms: 24.0,
            wal_cost_ms: 0.5,
            fsync_cost_ms: 2.0,
            embed: true,
        }
    }
}

/// Counters an ingest stream shares with query layers (registered on the
/// [`Context`] under the target store's name). Luna reads these to surface
/// segment/compaction activity and index lag in `explain_analyze` when a
/// question ran against a live stream.
#[derive(Debug, Default)]
pub struct IngestShared {
    docs: AtomicUsize,
    seals: AtomicUsize,
    compactions: AtomicUsize,
    /// f64 bits of the most recent arrival's index lag.
    last_lag_ms: AtomicU64,
    /// f64 bits of the worst lag seen.
    max_lag_ms: AtomicU64,
}

impl IngestShared {
    pub fn docs(&self) -> usize {
        self.docs.load(Ordering::Relaxed)
    }

    pub fn seals(&self) -> usize {
        self.seals.load(Ordering::Relaxed)
    }

    pub fn compactions(&self) -> usize {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Index lag of the most recent arrival (virtual ms).
    pub fn last_lag_ms(&self) -> f64 {
        f64::from_bits(self.last_lag_ms.load(Ordering::Relaxed))
    }

    /// Worst index lag seen so far (virtual ms).
    pub fn max_lag_ms(&self) -> f64 {
        f64::from_bits(self.max_lag_ms.load(Ordering::Relaxed))
    }
}

/// Summary of a finished (or in-flight) stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReport {
    pub docs: usize,
    pub seals: usize,
    pub compactions: usize,
    pub p50_lag_ms: f64,
    pub p99_lag_ms: f64,
    pub max_lag_ms: f64,
    /// Virtual-clock time when the last arrival became searchable.
    pub clock_ms: f64,
}

/// Per-document callback invoked on every arrival (e.g. incremental
/// knowledge-graph upserts).
type DocHook = Box<dyn FnMut(&Document) + Send>;

/// A streaming-ingestion pipeline bound to one store on a [`Context`].
/// Feed it documents with [`Ingestor::ingest_at`]; take consistent
/// [`StoreSnapshot`]s at any point with [`Ingestor::snapshot`].
pub struct Ingestor {
    ctx: Context,
    store: String,
    cfg: IngestConfig,
    keyword: ShardedKeywordIndex,
    vector: ShardedHnsw,
    embedder: Arc<dyn EmbeddingModel>,
    /// Per-document hook (e.g. incremental knowledge-graph upserts).
    doc_hook: Option<DocHook>,
    clock_ms: f64,
    lags: Vec<f64>,
    shared: Arc<IngestShared>,
    last_stats: StoreStats,
}

impl Ingestor {
    /// Binds a stream to `store` (created with the configured segment
    /// lifecycle if absent) and registers its shared counters on the
    /// context.
    pub fn new(ctx: &Context, store: &str, cfg: IngestConfig) -> Ingestor {
        let store_cfg = StoreConfig {
            seal_threshold: cfg.seal_threshold,
            compact_fanout: cfg.compact_fanout,
        };
        let existing = ctx.with_store_mut(store, |s| {
            s.set_config(store_cfg);
            s.stats()
        });
        let last_stats = match existing {
            Ok(stats) => stats,
            Err(_) => {
                ctx.put_store(store, DocStore::with_config(store_cfg));
                StoreStats::default()
            }
        };
        let shared = Arc::new(IngestShared::default());
        ctx.register_ingest(store, Arc::clone(&shared));
        let embedder = ctx.embedder();
        let dims = embedder.dims();
        Ingestor {
            ctx: ctx.clone(),
            store: store.to_string(),
            cfg,
            keyword: ShardedKeywordIndex::new(cfg.seal_threshold),
            vector: ShardedHnsw::new(dims, cfg.seal_threshold),
            embedder,
            doc_hook: None,
            clock_ms: 0.0,
            lags: Vec::new(),
            shared: Arc::new(IngestShared::default()),
            last_stats,
        }
        .with_shared(shared)
    }

    fn with_shared(mut self, shared: Arc<IngestShared>) -> Ingestor {
        self.shared = shared;
        self
    }

    /// Installs a per-document hook, run before the store put (e.g.
    /// incremental knowledge-graph node/edge upserts).
    pub fn set_doc_hook(&mut self, hook: impl FnMut(&Document) + Send + 'static) {
        self.doc_hook = Some(Box::new(hook));
    }

    /// Ingests one document arriving at `arrival_ms` on the virtual clock.
    /// Returns the arrival's index lag: how long (virtual ms) after arrival
    /// the document was searchable in every sidecar, including any seal or
    /// compaction work it queued behind. O(doc) index work per call.
    ///
    /// Against a durable store the ack is *durable*: `Ok` means the
    /// document's WAL record reached the store's filesystem, and the WAL
    /// (plus fsync, when configured) cost is charged to the virtual clock
    /// before the arrival counts as searchable. `Err` means the arrival was
    /// not acknowledged — it is absent from the store and the sidecars, and
    /// will not survive a crash.
    pub fn ingest_at(&mut self, doc: Document, arrival_ms: f64) -> Result<f64> {
        // The pipeline is busy until `clock_ms`; a doc arriving earlier
        // waits, one arriving later finds the pipeline idle.
        self.clock_ms = self.clock_ms.max(arrival_ms) + self.cfg.doc_cost_ms;
        let text = doc.full_text();
        if let Some(hook) = &mut self.doc_hook {
            hook(&doc);
        }
        let doc_id = doc.id.0.clone();
        let embedding = if self.cfg.embed {
            Some(match &doc.embedding {
                Some(v) => v.clone(),
                None => self.embedder.embed(&text),
            })
        } else {
            None
        };
        let (put, stats, durable, fsync) = self.ctx.with_store_mut(&self.store, |s| {
            let put = s.try_put(doc);
            (put, s.stats(), s.is_durable(), s.wal_fsync())
        })?;
        if durable {
            self.clock_ms += self.cfg.wal_cost_ms;
            if fsync {
                self.clock_ms += self.cfg.fsync_cost_ms;
            }
        }
        // A failed WAL append is a refused ack: the store did not take the
        // document, so the sidecars must not serve it either.
        put?;
        self.keyword.add(doc_id.clone(), &text);
        if let Some(v) = embedding {
            self.vector.add(&doc_id, v)?;
        }
        // The store seals/compacts inline at its thresholds; mirror those
        // boundaries onto the sidecars and charge their virtual cost.
        let seals = stats.seals - self.last_stats.seals;
        let compactions = stats.compactions - self.last_stats.compactions;
        self.last_stats = stats;
        if seals > 0 {
            self.clock_ms += seals as f64 * self.cfg.seal_cost_ms;
        }
        if compactions > 0 {
            self.keyword.compact();
            self.vector.compact();
            self.clock_ms += compactions as f64 * self.cfg.compact_cost_ms;
        }
        let lag = self.clock_ms - arrival_ms;
        self.lags.push(lag);
        self.shared.docs.fetch_add(1, Ordering::Relaxed);
        self.shared.seals.fetch_add(seals, Ordering::Relaxed);
        self.shared
            .compactions
            .fetch_add(compactions, Ordering::Relaxed);
        self.shared
            .last_lag_ms
            .store(lag.to_bits(), Ordering::Relaxed);
        if lag > self.shared.max_lag_ms() {
            self.shared
                .max_lag_ms
                .store(lag.to_bits(), Ordering::Relaxed);
        }
        if seals > 0 || compactions > 0 {
            let tel = self.ctx.telemetry();
            let mut sp = tel.span(format!("ingest:{}", self.store), "ingest");
            sp.add("ingest_seals", seals as u64);
            sp.add("ingest_compactions", compactions as u64);
            sp.gauge("index_lag_ms", lag);
            sp.finish();
        }
        Ok(lag)
    }

    /// A consistent MVCC snapshot of the target store as of now.
    pub fn snapshot(&self) -> Result<Arc<StoreSnapshot>> {
        self.ctx.snapshot_store(&self.store)
    }

    /// The keyword sidecar (searchable at any stream position).
    pub fn keyword(&self) -> &ShardedKeywordIndex {
        &self.keyword
    }

    /// The vector sidecar (searchable at any stream position).
    pub fn vector(&self) -> &ShardedHnsw {
        &self.vector
    }

    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    pub fn shared(&self) -> Arc<IngestShared> {
        Arc::clone(&self.shared)
    }

    /// Summarizes the stream so far and emits a telemetry span with the
    /// cumulative counters and lag percentiles.
    pub fn report(&self) -> IngestReport {
        let mut sorted = self.lags.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let report = IngestReport {
            docs: self.shared.docs(),
            seals: self.shared.seals(),
            compactions: self.shared.compactions(),
            p50_lag_ms: percentile(&sorted, 50.0),
            p99_lag_ms: percentile(&sorted, 99.0),
            max_lag_ms: sorted.last().copied().unwrap_or(0.0),
            clock_ms: self.clock_ms,
        };
        let tel = self.ctx.telemetry();
        let mut sp = tel.span(format!("ingest:{}:stream", self.store), "ingest");
        sp.set("ingest_docs", report.docs as u64);
        sp.set("ingest_seals", report.seals as u64);
        sp.set("ingest_compactions", report.compactions as u64);
        sp.gauge("index_lag_p50_ms", report.p50_lag_ms);
        sp.gauge("index_lag_p99_ms", report.p99_lag_ms);
        sp.gauge("index_lag_ms", report.max_lag_ms);
        // Durability counters ride along nonzero-only so in-memory streams
        // keep their span fingerprints.
        if let Ok(stats) = self.ctx.with_store(&self.store, |s| s.stats()) {
            for (key, n) in [
                ("wal_appends", stats.wal_appends),
                ("wal_replayed", stats.wal_replayed),
                ("torn_tail_truncated", stats.torn_tail_truncated),
                ("segments_recovered", stats.segments_recovered),
                ("orphans_removed", stats.orphans_removed),
                ("storage_io_errors", stats.io_errors),
            ] {
                if n > 0 {
                    sp.set(key, n as u64);
                }
            }
        }
        sp.finish();
        report
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_core::obj;
    use aryn_index::VectorIndex;

    fn doc(i: usize, text: &str) -> Document {
        let mut d = Document::from_text(format!("d{i:04}"), text);
        d.properties = obj! { "n" => i as i64 };
        d
    }

    fn feed(ing: &mut Ingestor, n: usize, rate_ms: f64) {
        let texts = [
            "wind gusts during the landing approach",
            "engine failure after takeoff",
            "fog near the coastal runway",
        ];
        for i in 0..n {
            ing.ingest_at(doc(i, texts[i % texts.len()]), i as f64 * rate_ms)
                .unwrap();
        }
    }

    #[test]
    fn stream_keeps_store_and_sidecars_consistent() {
        let ctx = Context::new();
        let mut ing = Ingestor::new(
            &ctx,
            "stream",
            IngestConfig {
                seal_threshold: 8,
                compact_fanout: 3,
                ..IngestConfig::default()
            },
        );
        feed(&mut ing, 50, 5.0);
        assert_eq!(ctx.with_store("stream", |s| s.len()).unwrap(), 50);
        assert_eq!(ing.keyword().len(), 50);
        assert_eq!(ing.vector().len(), 50);
        let rep = ing.report();
        assert_eq!(rep.docs, 50);
        assert!(rep.seals >= 5, "threshold 8 over 50 docs: {rep:?}");
        assert!(rep.compactions >= 1, "{rep:?}");
        assert!(rep.p50_lag_ms > 0.0 && rep.p99_lag_ms >= rep.p50_lag_ms);
        assert!(rep.max_lag_ms >= rep.p99_lag_ms);
        // Freshly-ingested docs are searchable immediately.
        let hits = ing.keyword().search("engine failure", 5);
        assert!(!hits.is_empty());
        // Shared counters registered on the context for query layers.
        let shared = ctx.ingest_stream("stream").unwrap();
        assert_eq!(shared.docs(), 50);
        assert!(shared.max_lag_ms() > 0.0);
    }

    #[test]
    fn virtual_clock_lag_is_deterministic() {
        let run = || {
            let ctx = Context::new();
            let mut ing = Ingestor::new(
                &ctx,
                "s",
                IngestConfig {
                    seal_threshold: 4,
                    compact_fanout: 2,
                    ..IngestConfig::default()
                },
            );
            feed(&mut ing, 30, 1.0);
            ing.report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_mid_stream_is_frozen() {
        let ctx = Context::new();
        let mut ing = Ingestor::new(
            &ctx,
            "s",
            IngestConfig {
                seal_threshold: 4,
                compact_fanout: 2,
                ..IngestConfig::default()
            },
        );
        feed(&mut ing, 10, 1.0);
        let snap = ing.snapshot().unwrap();
        assert_eq!(snap.len(), 10);
        feed(&mut ing, 40, 1.0); // overwrites d0000..d0009 then grows
        assert_eq!(snap.len(), 10, "snapshot unaffected by later stream");
        assert_eq!(snap.scan().count(), 10);
        // Read through the DocSet layer against the frozen view.
        let n = ctx
            .read_snapshot("s", Arc::clone(&snap))
            .count()
            .unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn doc_hook_sees_every_arrival() {
        let ctx = Context::new();
        let mut ing = Ingestor::new(&ctx, "s", IngestConfig::default());
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        ing.set_doc_hook(move |_| {
            seen2.fetch_add(1, Ordering::Relaxed);
        });
        feed(&mut ing, 7, 1.0);
        assert_eq!(seen.load(Ordering::Relaxed), 7);
    }
}
