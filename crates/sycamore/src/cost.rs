//! Static cost analysis over Sycamore pipelines — the engine-side half of
//! the abstract interpreter (the plan-side half lives in `luna::costmodel`
//! and reuses this module's [`Interval`] lattice).
//!
//! Every operator gets a *transfer function* over interval abstractions:
//! document cardinality `[lo, hi]`, LLM calls, prompt/completion tokens,
//! simulated dollars, and virtual-clock latency. The bounds are **sound**,
//! not tight: an executed pipeline's real [`crate::stats::ExecStats`] must
//! land inside them under any worker count, batch width, cache state, or
//! chaos schedule (enforced by the `cost_envelope` proptests). Upper bounds
//! therefore carry retry headroom (every transient retry and JSON re-ask
//! meters as a real call), degradation-ladder headroom (each fallback tier
//! runs its own attempt ladder), and micro-batch bisection headroom (a
//! malformed pack splits toward singletons); lower bounds drop to zero
//! whenever a cache hit, circuit breaker, or proactive deadline skip could
//! legally answer without a metered call.

use crate::op::Op;
use aryn_core::text::count_tokens;
use aryn_llm::prompt::tasks;
use aryn_llm::registry::{ModelSpec, GPT4_SIM};
use aryn_llm::LlmClient;

/// A closed interval `[lo, hi]` over a non-negative cost dimension.
/// `hi = +∞` means the dimension is statically unbounded (e.g. cardinality
/// through `flat_map` or `explode`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

/// Interval sum.
impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, other: Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }
}

/// Interval product (both operands non-negative, so endpoints multiply).
impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, other: Interval) -> Interval {
        Interval::new(self.lo * other.lo, self.hi * other.hi)
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::ZERO
    }
}

impl Interval {
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    pub fn new(lo: f64, hi: f64) -> Interval {
        Interval {
            lo: lo.max(0.0),
            hi: hi.max(lo.max(0.0)),
        }
    }

    /// The degenerate interval `[v, v]`.
    pub fn exact(v: f64) -> Interval {
        Interval::new(v, v)
    }

    /// `[lo, +∞)` — cardinality the analysis cannot bound above.
    pub fn at_least(lo: f64) -> Interval {
        Interval::new(lo, f64::INFINITY)
    }

    pub fn is_unbounded(&self) -> bool {
        self.hi.is_infinite()
    }

    /// Scales both endpoints by a non-negative constant.
    pub fn scale(self, k: f64) -> Interval {
        Interval::new(self.lo * k, self.hi * k)
    }

    /// Least upper bound: the hull of both intervals.
    pub fn join(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Caps the interval at `n` (for `limit`/`topK`).
    pub fn cap(self, n: f64) -> Interval {
        Interval::new(self.lo.min(n), self.hi.min(n))
    }

    /// Membership with a small relative tolerance for float accumulation
    /// (cost dollars are sums of many per-call products).
    pub fn contains(&self, v: f64) -> bool {
        let eps = 1e-6 + if self.hi.is_finite() { 1e-9 * self.hi } else { 0.0 };
        v >= self.lo - eps && (self.hi.is_infinite() || v <= self.hi + eps)
    }

    pub fn render(&self) -> String {
        let fmt = |v: f64| {
            if v.is_infinite() {
                "inf".to_string()
            } else if v.fract() == 0.0 && v < 1e15 {
                format!("{}", v as u64)
            } else {
                format!("{v:.4}")
            }
        };
        format!("[{}..{}]", fmt(self.lo), fmt(self.hi))
    }
}

/// Knobs the engine-side estimator needs beyond the ops themselves. The
/// retry fields mirror [`aryn_llm::RetryPolicy`]; the flags widen the bounds
/// for execution modes where calls can legally vanish (cache, reliability
/// skips) or multiply (chaos-driven retries walking a fallback ladder).
#[derive(Debug, Clone)]
pub struct CostCfg {
    /// Documents entering the pipeline.
    pub input_docs: usize,
    /// Pricing/window fallback for ops whose client cannot be inspected.
    pub default_model: &'static ModelSpec,
    pub workers: usize,
    /// Micro-batch width (1 = off) and token budget, as in `ExecConfig`.
    pub batch_max_items: usize,
    pub batch_token_budget: usize,
    pub max_transient: u32,
    pub max_reask: u32,
    pub backoff_base_ms: f64,
    /// A reliability policy is installed: breakers/deadline skips can answer
    /// with zero calls, and degradation ladders multiply the call ceiling.
    pub reliability: bool,
    /// A chaos schedule is installed (faults consume retry budget).
    pub chaos: bool,
    /// A call cache is attached somewhere (warm calls never meter).
    pub cache: bool,
}

impl Default for CostCfg {
    fn default() -> Self {
        CostCfg {
            input_docs: 0,
            default_model: &GPT4_SIM,
            workers: 1,
            batch_max_items: 1,
            batch_token_budget: 2048,
            max_transient: 4,
            max_reask: 2,
            backoff_base_ms: 100.0,
            reliability: false,
            chaos: false,
            cache: false,
        }
    }
}

impl CostCfg {
    /// Worst-case metered calls per logical item: the primary tier's full
    /// attempt ladder, repeated by every degradation tier below it, doubled
    /// when micro-batch bisection can re-submit items in shrinking packs.
    fn call_ceiling(&self, ladder_tiers: usize, batchable: bool) -> f64 {
        let attempts = 1.0 + self.max_transient as f64 + self.max_reask as f64;
        let tiers = ladder_tiers.max(1) as f64;
        let bisect = if batchable && self.batch_max_items > 1 { 2.0 } else { 1.0 };
        attempts * tiers * bisect
    }

    /// Whether at least one metered call per item is guaranteed: nothing is
    /// installed that can answer from a cache, a breaker, or a skip.
    fn calls_guaranteed(&self) -> bool {
        !self.cache && !self.reliability && !self.chaos
    }

    /// Physical calls needed for `n` guaranteed items: packs hold at most
    /// `batch_max_items` (token budgets only shrink packs further).
    fn min_calls(&self, items: f64, batchable: bool) -> f64 {
        if !self.calls_guaranteed() || items <= 0.0 {
            return 0.0;
        }
        let pack = if batchable { self.batch_max_items.max(1) as f64 } else { 1.0 };
        (items / pack).ceil()
    }

    /// Worst-case retry backoff charged per item (exponential, ×1.5 jitter
    /// headroom), summed over the attempt ladder.
    fn backoff_ceiling(&self) -> f64 {
        let attempts = self.max_transient + self.max_reask;
        self.backoff_base_ms * 1.5 * ((1u64 << attempts.min(30)) as f64 - 1.0)
    }
}

/// Per-operator cost abstraction.
#[derive(Debug, Clone)]
pub struct OpCost {
    pub name: String,
    /// Documents flowing *out* of this operator.
    pub docs: Interval,
    pub llm_calls: Interval,
    pub input_tokens: Interval,
    pub output_tokens: Interval,
    pub cost_usd: Interval,
    /// Total virtual-clock latency of this operator's calls (the quantity a
    /// per-query deadline budget observes — workers share one budget).
    pub latency_ms: Interval,
}

impl OpCost {
    fn pure(name: String, docs: Interval) -> OpCost {
        OpCost {
            name,
            docs,
            llm_calls: Interval::ZERO,
            input_tokens: Interval::ZERO,
            output_tokens: Interval::ZERO,
            cost_usd: Interval::ZERO,
            latency_ms: Interval::ZERO,
        }
    }
}

/// The pipeline-level report: per-op rows plus totals and the workers-aware
/// critical-path (makespan) interval.
#[derive(Debug, Clone)]
pub struct PipelineCost {
    pub ops: Vec<OpCost>,
    pub docs_out: Interval,
    pub llm_calls: Interval,
    pub input_tokens: Interval,
    pub output_tokens: Interval,
    pub cost_usd: Interval,
    pub latency_ms: Interval,
    /// Makespan bound: per-doc work divides across workers at best, runs
    /// sequentially at worst.
    pub critical_path_ms: Interval,
}

impl PipelineCost {
    pub fn render(&self) -> String {
        let mut out = String::from("op                docs            llm_calls       cost_usd\n");
        for o in &self.ops {
            out.push_str(&format!(
                "{:<17} {:<15} {:<15} {}\n",
                o.name,
                o.docs.render(),
                o.llm_calls.render(),
                o.cost_usd.render()
            ));
        }
        out.push_str(&format!(
            "totals: calls {}  tokens {}  cost {}  latency_ms {}\n",
            self.llm_calls.render(),
            (self.input_tokens + self.output_tokens).render(),
            self.cost_usd.render(),
            self.latency_ms.render()
        ));
        out
    }
}

/// Pricing/latency facts for one op's client, walking its degradation
/// ladder: the worst (priciest/slowest) and best tier bound each dimension.
struct ClientFacts {
    tiers: usize,
    window: f64,
    usd_in_max: f64,
    usd_out_max: f64,
    base_ms_min: f64,
    base_ms_max: f64,
    tps_min: f64,
}

fn client_facts(client: &LlmClient, cfg: &CostCfg) -> ClientFacts {
    let specs: Vec<&'static ModelSpec> = client
        .fallback_chain()
        .iter()
        .filter_map(|c| aryn_llm::registry::spec_by_name(c.model_name()))
        .collect();
    let specs: Vec<&'static ModelSpec> =
        if specs.is_empty() { vec![cfg.default_model] } else { specs };
    ClientFacts {
        tiers: specs.len(),
        window: specs.iter().map(|s| s.context_window as f64).fold(0.0, f64::max),
        usd_in_max: specs.iter().map(|s| s.usd_per_1k_input).fold(0.0, f64::max),
        usd_out_max: specs.iter().map(|s| s.usd_per_1k_output).fold(0.0, f64::max),
        base_ms_min: specs.iter().map(|s| s.base_latency_ms).fold(f64::INFINITY, f64::min),
        base_ms_max: specs.iter().map(|s| s.base_latency_ms).fold(0.0, f64::max),
        tps_min: specs.iter().map(|s| s.tokens_per_sec).fold(f64::INFINITY, f64::min),
    }
}

/// Cost abstraction for one per-item LLM transform: `items` logical prompts,
/// each answered with at most `max_output` completion tokens and at least
/// `envelope` prompt tokens (the rendered prompt with an empty context).
#[allow(clippy::too_many_arguments)]
fn llm_cost(
    name: String,
    docs_out: Interval,
    items: Interval,
    envelope: f64,
    max_output: f64,
    batchable: bool,
    facts: &ClientFacts,
    cfg: &CostCfg,
) -> OpCost {
    let calls = Interval::new(
        cfg.min_calls(items.lo, batchable),
        items.hi * cfg.call_ceiling(facts.tiers, batchable),
    );
    // Minimum prompt: the envelope itself. Packed prompts use a different
    // template, so only the pack count survives as a lower bound there.
    let env_lo = if batchable && cfg.batch_max_items > 1 { 1.0 } else { envelope };
    let input_tokens = Interval::new(calls.lo * env_lo, calls.hi * facts.window);
    // Per item: `max_output` (+8 packed headroom); per call: +16 pack
    // overhead. `calls.hi` dominates both counts, so it bounds the sum.
    let output_tokens = Interval::new(0.0, calls.hi * (max_output + 24.0));
    let cost_usd = Interval::new(
        input_tokens.lo / 1000.0 * cfg.default_model.usd_per_1k_input.min(facts.usd_in_max),
        input_tokens.hi / 1000.0 * facts.usd_in_max
            + output_tokens.hi / 1000.0 * facts.usd_out_max,
    );
    // Mock latency: base + (0.2·in + out)/tps · 1000, plus retry backoff
    // (charged to the deadline budget, never slept).
    let latency_ms = Interval::new(
        calls.lo * facts.base_ms_min,
        calls.hi * facts.base_ms_max
            + (input_tokens.hi * 0.2 + output_tokens.hi) / facts.tps_min * 1000.0
            + items.hi * cfg.backoff_ceiling(),
    );
    OpCost {
        name,
        docs: docs_out,
        llm_calls: calls,
        input_tokens,
        output_tokens,
        cost_usd,
        latency_ms,
    }
}

/// Abstractly interprets a pipeline: one [`OpCost`] per operator, document
/// cardinality threaded through the transfer functions.
pub fn estimate(ops: &[Op], cfg: &CostCfg) -> PipelineCost {
    let mut docs = Interval::exact(cfg.input_docs as f64);
    let mut rows = Vec::with_capacity(ops.len());
    for op in ops {
        let name = op.name();
        let oc = match op {
            Op::Map { .. } | Op::Embed | Op::SortBy { .. } | Op::Materialize { .. } => {
                OpCost::pure(name, docs)
            }
            Op::Partition { cfg: pcfg, .. } => {
                if pcfg.summarize_images.is_some() {
                    // Image summarization calls are element-count-shaped;
                    // statically unbounded.
                    let mut oc = OpCost::pure(name, docs);
                    oc.llm_calls = Interval::at_least(0.0);
                    oc.input_tokens = Interval::at_least(0.0);
                    oc.output_tokens = Interval::at_least(0.0);
                    oc.cost_usd = Interval::at_least(0.0);
                    oc.latency_ms = Interval::at_least(0.0);
                    oc
                } else {
                    OpCost::pure(name, docs)
                }
            }
            Op::Filter { .. } => OpCost::pure(name, Interval::new(0.0, docs.hi)),
            Op::FlatMap { .. } | Op::Explode => {
                OpCost::pure(name, if docs.hi == 0.0 { Interval::ZERO } else { Interval::at_least(0.0) })
            }
            Op::ReduceByKey { .. } => OpCost::pure(
                name,
                Interval::new(if docs.lo > 0.0 { 1.0 } else { 0.0 }, docs.hi),
            ),
            Op::Limit(n) => OpCost::pure(name, docs.cap(*n as f64)),
            Op::LlmQuery { client, .. } => {
                llm_cost(name, docs, docs, 1.0, 256.0, false, &client_facts(client, cfg), cfg)
            }
            Op::ExtractProperties { client, schema, .. } => {
                let env = count_tokens(&tasks::extract(schema, "")) as f64;
                llm_cost(name, docs, docs, env, 512.0, true, &client_facts(client, cfg), cfg)
            }
            Op::LlmFilter { client, predicate, .. } => {
                let env = count_tokens(&tasks::filter(predicate, "")) as f64;
                let out = Interval::new(0.0, docs.hi);
                llm_cost(name, out, docs, env, 64.0, true, &client_facts(client, cfg), cfg)
            }
            Op::LlmClassify { client, question, labels, .. } => {
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                let env = count_tokens(&tasks::classify(question, &refs, "")) as f64;
                llm_cost(name, docs, docs, env, 64.0, false, &client_facts(client, cfg), cfg)
            }
            Op::Summarize { client, instructions, .. } => {
                let env = count_tokens(&tasks::summarize(instructions, "")) as f64;
                llm_cost(name, docs, docs, env, 256.0, false, &client_facts(client, cfg), cfg)
            }
            Op::SummarizeSections { client } => {
                // Calls per document = its section count: unbounded above.
                let items = if docs.hi == 0.0 { Interval::ZERO } else { Interval::at_least(0.0) };
                llm_cost(name, docs, items, 1.0, 128.0, false, &client_facts(client, cfg), cfg)
            }
            Op::SummarizeAll { client, instructions } => {
                // Hierarchical reduce: ≤ 2n+1 calls for n documents (leaf
                // batches plus the reduction tree), at least one when any
                // document flows in.
                let env = count_tokens(&tasks::summarize(instructions, "")) as f64;
                let items = Interval::new(
                    if docs.lo > 0.0 { 1.0 } else { 0.0 },
                    if docs.hi == 0.0 { 0.0 } else { 2.0 * docs.hi + 1.0 },
                );
                llm_cost(
                    name,
                    Interval::exact(1.0),
                    items,
                    env,
                    256.0,
                    false,
                    &client_facts(client, cfg),
                    cfg,
                )
            }
        };
        docs = oc.docs;
        rows.push(oc);
    }
    let fold = |f: fn(&OpCost) -> Interval| {
        rows.iter().map(f).fold(Interval::ZERO, |a, b| a + b)
    };
    let llm_calls = fold(|o| o.llm_calls);
    let input_tokens = fold(|o| o.input_tokens);
    let output_tokens = fold(|o| o.output_tokens);
    let cost_usd = fold(|o| o.cost_usd);
    let latency_ms = fold(|o| o.latency_ms);
    let critical_path_ms =
        Interval::new(latency_ms.lo / cfg.workers.max(1) as f64, latency_ms.hi);
    PipelineCost {
        ops: rows,
        docs_out: docs,
        llm_calls,
        input_tokens,
        output_tokens,
        cost_usd,
        latency_ms,
        critical_path_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aryn_llm::{MockLlm, SimConfig};
    use std::sync::Arc;

    fn client() -> LlmClient {
        LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(1))))
    }

    #[test]
    fn interval_algebra() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(2.0, 5.0);
        assert_eq!(a + b, Interval::new(3.0, 8.0));
        assert_eq!(a * b, Interval::new(2.0, 15.0));
        assert_eq!(a.join(b), Interval::new(1.0, 5.0));
        assert_eq!(a.cap(2.0), Interval::new(1.0, 2.0));
        assert!(a.contains(1.0) && a.contains(3.0) && !a.contains(3.5));
        assert!(Interval::at_least(2.0).contains(1e12));
        assert!(!Interval::at_least(2.0).contains(1.0));
        // Degenerate constructor input is clamped into a valid interval.
        assert_eq!(Interval::new(5.0, 1.0), Interval::new(5.0, 5.0));
    }

    #[test]
    fn pure_pipeline_is_exact_and_free() {
        let ops = vec![
            Op::Map { name: "id".into(), f: Arc::new(|d| d) },
            Op::Limit(3),
        ];
        let cfg = CostCfg { input_docs: 10, ..CostCfg::default() };
        let est = estimate(&ops, &cfg);
        assert_eq!(est.docs_out, Interval::exact(3.0));
        assert_eq!(est.llm_calls, Interval::ZERO);
        assert_eq!(est.cost_usd, Interval::ZERO);
    }

    #[test]
    fn llm_filter_bounds_cover_the_per_doc_path() {
        let ops = vec![Op::LlmFilter {
            client: client(),
            predicate: "mentions fatal injuries".into(),
            selector: crate::ElementSelector::All,
        }];
        let cfg = CostCfg { input_docs: 8, ..CostCfg::default() };
        let est = estimate(&ops, &cfg);
        // Guaranteed path: exactly one call per doc sits inside the bounds.
        assert!(est.llm_calls.contains(8.0), "got {}", est.llm_calls.render());
        assert_eq!(est.llm_calls.lo, 8.0);
        assert!(est.llm_calls.hi >= 8.0);
        assert!(est.docs_out.contains(0.0) && est.docs_out.contains(8.0));
        // Cache on: zero calls becomes legal.
        let cached = estimate(&ops, &CostCfg { input_docs: 8, cache: true, ..CostCfg::default() });
        assert_eq!(cached.llm_calls.lo, 0.0);
    }

    #[test]
    fn batching_lowers_the_call_floor_and_keeps_the_ceiling_sound() {
        let ops = vec![Op::ExtractProperties {
            client: client(),
            schema: aryn_core::obj! { "year" => "int" },
            selector: crate::ElementSelector::All,
        }];
        let base = CostCfg { input_docs: 12, ..CostCfg::default() };
        let batched = CostCfg { batch_max_items: 4, ..base.clone() };
        let e1 = estimate(&ops, &base);
        let e4 = estimate(&ops, &batched);
        assert_eq!(e1.llm_calls.lo, 12.0);
        assert_eq!(e4.llm_calls.lo, 3.0); // ceil(12/4)
        assert!(e4.llm_calls.hi >= e1.llm_calls.hi); // bisection headroom
    }

    #[test]
    fn unbounded_cardinality_propagates() {
        let ops = vec![
            Op::Explode,
            Op::LlmFilter {
                client: client(),
                predicate: "p".into(),
                selector: crate::ElementSelector::All,
            },
        ];
        let est = estimate(&ops, &CostCfg { input_docs: 2, ..CostCfg::default() });
        assert!(est.docs_out.is_unbounded());
        assert!(est.llm_calls.is_unbounded());
        assert!(est.cost_usd.is_unbounded());
    }

    #[test]
    fn critical_path_divides_by_workers() {
        let ops = vec![Op::LlmQuery {
            client: client(),
            template: "what is {text}?".into(),
            output_path: "a".into(),
            selector: crate::ElementSelector::All,
        }];
        let est1 = estimate(&ops, &CostCfg { input_docs: 8, ..CostCfg::default() });
        let est8 = estimate(&ops, &CostCfg { input_docs: 8, workers: 8, ..CostCfg::default() });
        assert!(est8.critical_path_ms.lo < est1.critical_path_ms.lo);
        assert_eq!(est8.critical_path_ms.hi, est1.critical_path_ms.hi);
    }
}
