//! Implementations of the per-document and barrier transforms.
//!
//! [`apply_per_doc`] is the unit of work the morsel executor schedules: it
//! must stay a pure function of `(op, doc)` plus deterministic context state,
//! because the executor calls it from multiple workers in arbitrary order and
//! relies on output assembly by input position — never arrival order — for
//! bit-identical results at any parallelism (DESIGN.md §5g).

use crate::context::Context;
use crate::op::{Agg, ElementSelector, Op, PartitionCfg};
use aryn_core::json;
use aryn_core::vfs::{self, StdFs, Vfs};
use aryn_core::{obj, ArynError, Document, LineageRecord, Result, Value};
use aryn_llm::prompt::tasks;
use aryn_llm::semantics;
use aryn_llm::{run_batched, BatchConfig, BatchReport, LlmClient, TaskKind};
use aryn_partitioner::{Partitioner, PartitionerOptions};
use std::collections::BTreeMap;

/// Applies one per-document op, producing 0..N output documents.
pub fn apply_per_doc(ctx: &Context, op: &Op, doc: Document) -> Result<Vec<Document>> {
    match op {
        Op::Map { name, f } => {
            let mut out = f(doc);
            out.lineage.push(LineageRecord::new("map", name.clone()));
            Ok(vec![out])
        }
        Op::Filter { name, f } => {
            if f(&doc) {
                let mut d = doc;
                d.lineage.push(LineageRecord::new("filter", name.clone()));
                Ok(vec![d])
            } else {
                Ok(vec![])
            }
        }
        Op::FlatMap { name, f } => {
            let src = doc.id.0.clone();
            Ok(f(doc)
                .into_iter()
                .map(|mut d| {
                    d.lineage.push(
                        LineageRecord::new("flat_map", name.clone()).with_sources(vec![src.clone()]),
                    );
                    d
                })
                .collect())
        }
        Op::Partition { lake, cfg } => partition(ctx, lake, cfg, doc).map(|d| vec![d]),
        Op::Explode => Ok(explode(doc)),
        Op::LlmQuery {
            client,
            template,
            output_path,
            selector,
        } => llm_query(client, template, output_path, selector, doc).map(|d| vec![d]),
        Op::ExtractProperties {
            client,
            schema,
            selector,
        } => extract_properties(client, schema, selector, doc).map(|d| vec![d]),
        Op::LlmFilter {
            client,
            predicate,
            selector,
        } => llm_filter(client, predicate, selector, doc),
        Op::LlmClassify {
            client,
            question,
            labels,
            output_path,
            selector,
        } => llm_classify(client, question, labels, output_path, selector, doc).map(|d| vec![d]),
        Op::Summarize {
            client,
            instructions,
            output_path,
            selector,
        } => summarize_doc(client, instructions, output_path, selector, doc).map(|d| vec![d]),
        Op::SummarizeSections { client } => summarize_sections(client, doc).map(|d| vec![d]),
        Op::Embed => {
            let mut d = doc;
            let text = d.full_text();
            d.embedding = Some(ctx.embedder().embed(&text));
            d.lineage
                .push(LineageRecord::new("embed", ctx.embedder().name().to_string()));
            Ok(vec![d])
        }
        barrier => Err(ArynError::Exec(format!(
            "{} is a barrier op, not per-document",
            barrier.name()
        ))),
    }
}

/// Runs the Aryn Partitioner against the raw rendering in the lake.
fn partition(ctx: &Context, lake: &str, cfg: &PartitionCfg, doc: Document) -> Result<Document> {
    let raw = ctx.raw_from_lake(lake, doc.id.as_str()).ok_or_else(|| {
        ArynError::Exec(format!(
            "partition: no raw rendering for {:?} in lake {lake:?}",
            doc.id
        ))
    })?;
    let p = Partitioner::new(PartitionerOptions {
        detector: cfg.detector,
        extract_tables: true,
        merge_tables: cfg.merge_tables,
        use_ocr: cfg.use_ocr,
        summarize_images: cfg.summarize_images.clone(),
        seed: cfg.seed,
        telemetry: ctx.telemetry(),
    });
    let mut out = p.partition(doc.id.as_str(), &raw);
    // Carry over upstream properties and lineage.
    out.properties = doc.properties.clone();
    let mut lineage = doc.lineage.clone();
    lineage.append(&mut out.lineage);
    out.lineage = lineage;
    Ok(out)
}

/// Emits each element as a chunk document (paper §5.2: explode "creates a
/// new DocSet containing the elements of its input documents").
fn explode(doc: Document) -> Vec<Document> {
    let parent_id = doc.id.0.clone();
    doc.elements
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let mut child = Document::new(format!("{parent_id}#{i}"));
            child.properties = doc.properties.clone();
            child.set_prop("parent_id", parent_id.as_str());
            child.set_prop("element_type", e.etype.name());
            child.set_prop("page", e.page as i64);
            child.content = aryn_core::DocContent::Text(e.content_text());
            child.elements = vec![e.clone()];
            child.lineage = doc.lineage.clone();
            child
                .lineage
                .push(LineageRecord::new("explode", "").with_sources(vec![parent_id.clone()]));
            child
        })
        .collect()
}

/// Renders an `llm_query` template: `{text}` is the selected document text,
/// `{prop:path}` interpolates a property, `{id}` the document id.
fn render_template(template: &str, doc: &Document, text: &str) -> String {
    let mut out = String::with_capacity(template.len() + text.len());
    let mut rest = template;
    while let Some(start) = rest.find('{') {
        out.push_str(&rest[..start]);
        let after = &rest[start + 1..];
        match after.find('}') {
            Some(end) => {
                let key = &after[..end];
                if key == "text" {
                    out.push_str(text);
                } else if key == "id" {
                    out.push_str(doc.id.as_str());
                } else if let Some(path) = key.strip_prefix("prop:") {
                    if let Some(v) = doc.prop(path) {
                        out.push_str(&v.display_text());
                    }
                } else {
                    out.push('{');
                    out.push_str(key);
                    out.push('}');
                }
                rest = &after[end + 1..];
            }
            None => {
                out.push('{');
                rest = after;
            }
        }
    }
    out.push_str(rest);
    out
}

fn llm_query(
    client: &LlmClient,
    template: &str,
    output_path: &str,
    selector: &ElementSelector,
    mut doc: Document,
) -> Result<Document> {
    let text = selector.select_text(&doc);
    let question = render_template(template, &doc, "");
    let prompt = client.fit_prompt(&text, 256, |ctx| tasks::answer(&question, ctx));
    let v = client.generate_json(&prompt, 256)?;
    let answer = v
        .get("answer")
        .cloned()
        .unwrap_or(Value::Null);
    doc.properties.set_path(output_path, answer);
    doc.lineage.push(
        LineageRecord::new("llm_query", template.to_string()).with_llm(1, 0.0),
    );
    Ok(doc)
}

fn extract_properties(
    client: &LlmClient,
    schema: &Value,
    selector: &ElementSelector,
    mut doc: Document,
) -> Result<Document> {
    let text = selector.select_text(&doc);
    let (v, degraded_to) =
        match client.generate_json_with_fallback(&text, 512, &|ctx| tasks::extract(schema, ctx)) {
            Ok(out) => (out.value, out.degraded_to),
            // Reliability cut the ladder off: the document passes through
            // unextracted, flagged — an incomplete answer, never a silent
            // wrong one.
            Err(ArynError::CircuitOpen { .. } | ArynError::DeadlineExceeded { .. }) => {
                (Value::Null, Some("skipped".to_string()))
            }
            Err(e) => return Err(e),
        };
    if let Some(fields) = v.as_object() {
        for (k, val) in fields {
            // Only accept fields the schema asked for — models sometimes
            // hallucinate extras.
            if schema.get(k).is_some() {
                doc.properties.set_path(k, val.clone());
            }
        }
    }
    if let Some(tier) = degraded_to {
        doc.set_prop("_degraded", tier.as_str());
        client.note_degraded_docs(1);
    }
    doc.lineage.push(
        LineageRecord::new("extract_properties", json::to_string(schema)).with_llm(1, 0.0),
    );
    Ok(doc)
}

fn llm_filter(
    client: &LlmClient,
    predicate: &str,
    selector: &ElementSelector,
    mut doc: Document,
) -> Result<Vec<Document>> {
    let text = selector.select_text(&doc);
    let (keep, degraded_to) =
        match client.generate_json_with_fallback(&text, 64, &|ctx| tasks::filter(predicate, ctx)) {
            Ok(out) => (
                out.value.get("match").and_then(Value::as_bool).unwrap_or(false),
                out.degraded_to,
            ),
            // Final degradation tier: deterministic string matching against
            // the selected text. Costs no LLM budget; the flag records how
            // the verdict was produced.
            Err(ArynError::CircuitOpen { .. } | ArynError::DeadlineExceeded { .. }) => (
                semantics::eval_predicate(predicate, &text),
                Some("string-match".to_string()),
            ),
            Err(e) => return Err(e),
        };
    if let Some(tier) = degraded_to {
        doc.set_prop("_degraded", tier.as_str());
        client.note_degraded_docs(1);
    }
    if keep {
        doc.lineage
            .push(LineageRecord::new("llm_filter", predicate.to_string()).with_llm(1, 0.0));
        Ok(vec![doc])
    } else {
        Ok(vec![])
    }
}

/// Applies one batchable semantic op collection-at-a-time through the
/// micro-batch packer (DESIGN.md §5e). Returns the surviving documents, the
/// number dropped under `skip_failures`, and the packer's report. Per-item
/// contexts are fitted with [`LlmClient::fit_context`] so each item's
/// singleton prompt — and therefore its cache fingerprint and simulated
/// answer — is byte-identical to the unbatched path's.
pub fn apply_batched(
    ctx: &Context,
    op: &Op,
    docs: Vec<Document>,
    cfg: BatchConfig,
) -> Result<(Vec<Document>, usize, BatchReport)> {
    let skip = ctx.exec_config().skip_failures;
    match op {
        Op::LlmFilter {
            client,
            predicate,
            selector,
        } => llm_filter_batched(client, predicate, selector, docs, cfg, skip),
        Op::ExtractProperties {
            client,
            schema,
            selector,
        } => extract_properties_batched(client, schema, selector, docs, cfg, skip),
        other => Err(ArynError::Exec(format!(
            "{} is not a batchable op",
            other.name()
        ))),
    }
}

fn llm_filter_batched(
    client: &LlmClient,
    predicate: &str,
    selector: &ElementSelector,
    docs: Vec<Document>,
    cfg: BatchConfig,
    skip_failures: bool,
) -> Result<(Vec<Document>, usize, BatchReport)> {
    let params = obj! { "predicate" => predicate };
    let contexts: Vec<String> = docs
        .iter()
        .map(|d| {
            client.fit_context(&selector.select_text(d), 64, |ctx| {
                tasks::filter(predicate, ctx)
            })
        })
        .collect();
    let (values, report) = run_batched(client, TaskKind::Filter, &params, &contexts, 64, cfg);
    let mut out = Vec::with_capacity(docs.len());
    let mut failed = 0usize;
    for (mut doc, res) in docs.into_iter().zip(values) {
        match res {
            Ok(v) => {
                if v.get("match").and_then(Value::as_bool).unwrap_or(false) {
                    doc.lineage.push(
                        LineageRecord::new("llm_filter", predicate.to_string()).with_llm(1, 0.0),
                    );
                    out.push(doc);
                }
            }
            Err(e) => {
                if skip_failures {
                    failed += 1;
                } else {
                    return Err(ArynError::Exec(format!("{:?}: {e}", doc.id)));
                }
            }
        }
    }
    Ok((out, failed, report))
}

fn extract_properties_batched(
    client: &LlmClient,
    schema: &Value,
    selector: &ElementSelector,
    docs: Vec<Document>,
    cfg: BatchConfig,
    skip_failures: bool,
) -> Result<(Vec<Document>, usize, BatchReport)> {
    let params = obj! { "schema" => schema.clone() };
    let contexts: Vec<String> = docs
        .iter()
        .map(|d| {
            client.fit_context(&selector.select_text(d), 512, |ctx| {
                tasks::extract(schema, ctx)
            })
        })
        .collect();
    let (values, report) = run_batched(client, TaskKind::Extract, &params, &contexts, 512, cfg);
    let mut out = Vec::with_capacity(docs.len());
    let mut failed = 0usize;
    for (mut doc, res) in docs.into_iter().zip(values) {
        match res {
            Ok(v) => {
                if let Some(fields) = v.as_object() {
                    for (k, val) in fields {
                        // Same acceptance rule as the unbatched path: only
                        // fields the schema asked for.
                        if schema.get(k).is_some() {
                            doc.properties.set_path(k, val.clone());
                        }
                    }
                }
                doc.lineage.push(
                    LineageRecord::new("extract_properties", json::to_string(schema))
                        .with_llm(1, 0.0),
                );
                out.push(doc);
            }
            Err(e) => {
                if skip_failures {
                    failed += 1;
                } else {
                    return Err(ArynError::Exec(format!("{:?}: {e}", doc.id)));
                }
            }
        }
    }
    Ok((out, failed, report))
}

fn llm_classify(
    client: &LlmClient,
    question: &str,
    labels: &[String],
    output_path: &str,
    selector: &ElementSelector,
    mut doc: Document,
) -> Result<Document> {
    let text = selector.select_text(&doc);
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let prompt = client.fit_prompt(&text, 64, |ctx| tasks::classify(question, &label_refs, ctx));
    let v = client.generate_json(&prompt, 64)?;
    let label = v.get("label").cloned().unwrap_or(Value::Null);
    doc.properties.set_path(output_path, label);
    doc.lineage
        .push(LineageRecord::new("llm_classify", question.to_string()).with_llm(1, 0.0));
    Ok(doc)
}

fn summarize_doc(
    client: &LlmClient,
    instructions: &str,
    output_path: &str,
    selector: &ElementSelector,
    mut doc: Document,
) -> Result<Document> {
    let text = selector.select_text(&doc);
    let prompt = client.fit_prompt(&text, 256, |ctx| tasks::summarize(instructions, ctx));
    let v = client.generate_json(&prompt, 256)?;
    let summary = v.get("summary").cloned().unwrap_or(Value::Null);
    doc.properties.set_path(output_path, summary);
    doc.lineage
        .push(LineageRecord::new("summarize", instructions.to_string()).with_llm(1, 0.0));
    Ok(doc)
}

/// Summarizes each section of the document's semantic tree into
/// `properties.section_summaries.<heading>`, one LLM call per section with
/// a non-empty body.
fn summarize_sections(client: &LlmClient, mut doc: Document) -> Result<Document> {
    // Collect (heading, body text) pairs first: the tree borrows the doc.
    let sections: Vec<(String, String)> = {
        let tree = doc.tree();
        tree.sections()
            .iter()
            .filter(|s| !s.body.is_empty())
            .map(|s| {
                let body: String = s
                    .body
                    .iter()
                    .map(|i| doc.elements[*i].content_text())
                    .collect::<Vec<_>>()
                    .join("\n");
                (s.heading_text().to_string(), body)
            })
            .collect()
    };
    let mut calls = 0u32;
    for (heading, body) in sections {
        if body.trim().is_empty() || heading.is_empty() {
            continue;
        }
        let prompt = client.fit_prompt(&body, 128, |ctx| {
            tasks::summarize(&format!("Summarize the {heading:?} section in one sentence."), ctx)
        });
        let v = client.generate_json(&prompt, 128)?;
        let summary = v.get("summary").cloned().unwrap_or(Value::Null);
        // Heading as a property key: sanitized to a path-safe slug.
        let slug: String = heading
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        doc.properties
            .set_path(&format!("section_summaries.{slug}"), summary);
        calls += 1;
    }
    doc.lineage
        .push(LineageRecord::new("summarize_sections", "").with_llm(calls, 0.0));
    Ok(doc)
}

// ---------------------------------------------------------------------------
// Barrier transforms
// ---------------------------------------------------------------------------

/// Groups documents by a key property and aggregates. Missing keys group
/// under `Null`; missing aggregated values are skipped.
pub fn reduce_by_key(docs: Vec<Document>, key: &str, aggs: &[(String, Agg)]) -> Vec<Document> {
    let mut sorted = docs;
    sorted.sort_by(|a, b| {
        let ka = a.prop(key).cloned().unwrap_or(Value::Null);
        let kb = b.prop(key).cloned().unwrap_or(Value::Null);
        ka.cmp_total(&kb)
    });
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let key_val = sorted[i].prop(key).cloned().unwrap_or(Value::Null);
        let mut j = i;
        while j < sorted.len() {
            let kj = sorted[j].prop(key).cloned().unwrap_or(Value::Null);
            if kj.cmp_total(&key_val) != std::cmp::Ordering::Equal {
                break;
            }
            j += 1;
        }
        let group = &sorted[i..j];
        let mut g = Document::new(format!("group:{}", key_val.display_text()));
        g.set_prop(key, key_val.clone());
        g.set_prop("count", group.len() as i64);
        for (out_name, agg) in aggs {
            let v = eval_agg(group, agg);
            g.properties.set_path(out_name, v);
        }
        g.lineage.push(
            LineageRecord::new("reduce_by_key", key.to_string())
                .with_sources(group.iter().map(|d| d.id.0.clone()).collect()),
        );
        out.push(g);
        i = j;
    }
    out
}

fn eval_agg(group: &[Document], agg: &Agg) -> Value {
    let nums = |path: &str| -> Vec<f64> {
        group
            .iter()
            .filter_map(|d| d.prop(path))
            .filter_map(Value::as_float)
            .collect()
    };
    match agg {
        Agg::Count => Value::Int(group.len() as i64),
        Agg::Sum(path) => {
            let xs = nums(path);
            if xs.is_empty() {
                Value::Null
            } else {
                Value::Float(xs.iter().sum())
            }
        }
        Agg::Avg(path) => {
            let xs = nums(path);
            if xs.is_empty() {
                Value::Null
            } else {
                Value::Float(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        }
        Agg::Min(path) | Agg::Max(path) => {
            let mut vals: Vec<&Value> = group
                .iter()
                .filter_map(|d| d.prop(path))
                .filter(|v| !v.is_null())
                .collect();
            vals.sort_by(|a, b| a.cmp_total(b));
            let pick = if matches!(agg, Agg::Min(_)) {
                vals.first()
            } else {
                vals.last()
            };
            pick.map(|v| (*v).clone()).unwrap_or(Value::Null)
        }
        Agg::CollectDistinct(path) => {
            let mut vals: Vec<Value> = Vec::new();
            for d in group {
                if let Some(v) = d.prop(path) {
                    if !v.is_null() && !vals.iter().any(|x| x.loose_eq(v)) {
                        vals.push(v.clone());
                    }
                }
            }
            vals.sort_by(|a, b| a.cmp_total(b));
            Value::Array(vals)
        }
    }
}

/// Stable sort by property (total order; missing = Null sorts first
/// ascending, last descending).
pub fn sort_by(mut docs: Vec<Document>, path: &str, descending: bool) -> Vec<Document> {
    docs.sort_by(|a, b| {
        let ka = a.prop(path).cloned().unwrap_or(Value::Null);
        let kb = b.prop(path).cloned().unwrap_or(Value::Null);
        let ord = ka.cmp_total(&kb);
        if descending {
            ord.reverse()
        } else {
            ord
        }
    });
    docs
}

/// Hierarchical collection summarization: per-document summaries are packed
/// into context-window-sized batches, each batch summarized, then the batch
/// summaries summarized — so arbitrarily large collections fit bounded
/// context (the paper's answer to "LLM context sizes are limited", §2).
pub fn summarize_all(
    client: &LlmClient,
    instructions: &str,
    docs: &[Document],
) -> Result<Document> {
    Ok(summarize_all_stats(client, instructions, docs, false)?.0)
}

/// [`summarize_all`] with failure accounting: returns the summary document
/// plus the number of *source documents* whose content was dropped because a
/// batch summarization failed permanently. With `skip_failures` false any
/// batch failure aborts (the historical behaviour); with it true, failed
/// batches are dropped and their source-document weight is reported — so a
/// barrier stage's `failed_docs` reflects inner per-batch failures instead of
/// hardcoding zero.
pub fn summarize_all_stats(
    client: &LlmClient,
    instructions: &str,
    docs: &[Document],
    skip_failures: bool,
) -> Result<(Document, usize)> {
    // Each piece carries the number of source documents it represents, so a
    // dropped batch in round 3 still counts the right number of documents.
    let mut pieces: Vec<(String, usize)> = docs
        .iter()
        .map(|d| {
            // Prefer an existing summary property; else lead text.
            let text = d
                .prop("summary")
                .and_then(Value::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| {
                    aryn_core::text::truncate_tokens(&d.full_text(), 120).to_string()
                });
            (text, 1)
        })
        .collect();
    let mut failed_weight = 0usize;
    let mut rounds = 0;
    while pieces.len() > 1 {
        rounds += 1;
        if rounds > 12 {
            return Err(ArynError::Exec("summarize_all failed to converge".into()));
        }
        let budget = client.context_budget(96, 256).max(256);
        let mut batches: Vec<(String, usize)> = Vec::new();
        let mut cur = String::new();
        let mut cur_weight = 0usize;
        for (p, w) in &pieces {
            let candidate_len =
                aryn_core::text::count_tokens(&cur) + aryn_core::text::count_tokens(p) + 2;
            if !cur.is_empty() && candidate_len > budget {
                batches.push((std::mem::take(&mut cur), cur_weight));
                cur_weight = 0;
            }
            if !cur.is_empty() {
                cur.push_str("\n\n");
            }
            cur.push_str(aryn_core::text::truncate_tokens(p, budget.saturating_sub(8)));
            cur_weight += w;
        }
        if !cur.is_empty() {
            batches.push((cur, cur_weight));
        }
        let n_batches = batches.len();
        let mut next: Vec<(String, usize)> = Vec::with_capacity(n_batches);
        for (b, w) in &batches {
            let prompt = client.fit_prompt(b, 256, |ctx| tasks::summarize(instructions, ctx));
            match client.generate_json(&prompt, 256) {
                Ok(v) => next.push((
                    v.get("summary")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    *w,
                )),
                Err(e) => {
                    if !skip_failures {
                        return Err(e);
                    }
                    failed_weight += w;
                }
            }
        }
        if next.is_empty() {
            // Every batch of a round failed: nothing left to summarize.
            return Err(ArynError::Exec(format!(
                "summarize_all: all {n_batches} batch(es) failed in round {rounds}"
            )));
        }
        if next.len() >= pieces.len() && pieces.len() > 1 {
            // No progress (pathologically small budget): force-merge.
            let weight: usize = next.iter().map(|(_, w)| w).sum();
            let merged = next
                .iter()
                .map(|(s, _)| s.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            next = vec![(merged, weight)];
        }
        pieces = next;
    }
    let mut doc = Document::new("summary");
    doc.set_prop(
        "summary",
        pieces.pop().map(|(s, _)| s).unwrap_or_default(),
    );
    doc.set_prop("source_count", docs.len() as i64);
    doc.lineage.push(
        LineageRecord::new("summarize_all", instructions.to_string())
            .with_sources(docs.iter().map(|d| d.id.0.clone()).collect()),
    );
    Ok((doc, failed_weight))
}

/// Materializes documents: cached in memory under `name` — stamped with the
/// fingerprint of the op-prefix that produced them, so resume only reuses
/// the checkpoint for an identical upstream plan — optionally spilled to
/// `{dir}/{name}.jsonl`. The spill goes through the context's [`Vfs`] as a
/// checksummed record file written atomically (temp → sync → rename), so a
/// crash mid-checkpoint leaves either the previous checkpoint or a complete
/// new one — never a torn file that resume would half-trust.
pub fn materialize(
    ctx: &Context,
    name: &str,
    fingerprint: u64,
    dir: Option<&std::path::Path>,
    docs: &[Document],
) -> Result<()> {
    ctx.inner
        .materialized
        .write()
        .insert(name.to_string(), (fingerprint, docs.to_vec()));
    if let Some(dir) = dir {
        let fs = ctx.vfs();
        fs.create_dir_all(dir)?;
        let path = dir.join(format!("{name}.jsonl"));
        let records: Vec<(char, String)> = docs
            .iter()
            .map(|d| {
                (
                    's',
                    json::to_string(&aryn_core::serialize::document_to_value(d)),
                )
            })
            .collect();
        vfs::atomic_write(&fs, &path, vfs::encode_tagged_file(&records).as_bytes())?;
    }
    Ok(())
}

/// Loads a disk materialization written by [`materialize`].
pub fn load_materialized(path: &std::path::Path) -> Result<Vec<Document>> {
    load_materialized_on(&StdFs, path)
}

/// [`load_materialized`] against an explicit [`Vfs`]. Accepts both the
/// checksummed record format and the legacy plain-JSONL spill; any checksum
/// or footer mismatch is an error — a torn checkpoint is discarded by the
/// caller and recomputed, never half-loaded.
pub fn load_materialized_on(fs: &dyn Vfs, path: &std::path::Path) -> Result<Vec<Document>> {
    let text = vfs::read_to_string(fs, path)?;
    let legacy = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .is_some_and(|l| l.trim_start().starts_with('{'));
    if legacy {
        return text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| aryn_core::serialize::document_from_value(&json::parse(l)?))
            .collect();
    }
    let records = vfs::decode_tagged_file(&text)?;
    records
        .iter()
        .map(|(tag, payload)| {
            if *tag != 's' {
                return Err(ArynError::Io(format!(
                    "materialized file {}: unexpected record tag {tag:?}",
                    path.display()
                )));
            }
            aryn_core::serialize::document_from_value(&json::parse(payload)?)
        })
        .collect()
}

/// Groups documents into a BTreeMap keyed by the *display text* of a
/// property — a helper for tests and joins.
pub fn group_index(docs: &[Document], key: &str) -> BTreeMap<String, Vec<usize>> {
    let mut out: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, d) in docs.iter().enumerate() {
        let k = d
            .prop(key)
            .map(|v| v.display_text())
            .unwrap_or_else(|| "null".into());
        out.entry(k).or_default().push(i);
    }
    out
}
