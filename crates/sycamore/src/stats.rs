//! Execution statistics: per-stage row counts, retries, LLM usage, wall time.
//!
//! Stats back Luna's traceability story: every executed plan can report
//! "how the dataset was transformed during each operation" (§6). The LLM
//! fields are filled from per-stage [`aryn_llm::UsageMeter`] snapshots, so a
//! stage's calls/tokens/cost are attributed to it even when several stages
//! share a client.

/// One worker's statistics shard for one fused per-doc stage. Each morsel
/// worker owns exactly one shard (`&mut`, no locks) while the stage runs;
/// the shards are merged into the stage totals once at finalize. *Which*
/// worker processed a given document is scheduling-dependent under work
/// stealing, but every shard is exact — so the shard sums always equal the
/// stage totals (`sum(docs) == rows_in`, `sum(retries) == retries`,
/// `sum(failed) == failed_docs`), an invariant the stats tests pin.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerStats {
    /// Input documents this worker ran through the fused segment.
    pub docs: usize,
    /// Worker-failure retries this worker performed.
    pub retries: usize,
    /// Documents that failed permanently on this worker (skip mode).
    pub failed: usize,
    /// Morsels this worker executed (own deque + stolen).
    pub morsels: usize,
    /// Morsels this worker stole from another worker's deque.
    pub steals: usize,
    /// Time this worker spent processing morsels, on the per-thread busy
    /// clock (thread CPU time on Linux): immune to preemption, so the
    /// critical path `max(busy_ms)` reflects true work distribution even
    /// when the host has fewer cores than workers.
    pub busy_ms: f64,
}

/// Counters for one executed stage (one op, or one fused per-doc chain).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageStats {
    pub name: String,
    /// Tenant (or session) the execution ran on behalf of; empty outside
    /// the multi-tenant serving layer. Set from the context's session tag
    /// so per-stage counters can be attributed per tenant.
    pub tenant: String,
    pub rows_in: usize,
    pub rows_out: usize,
    pub wall_ms: f64,
    /// Worker-failure retries (injected or real) during this stage.
    pub retries: usize,
    /// Documents dropped because an op failed permanently on them.
    pub failed_docs: usize,
    /// LLM completions issued while this stage ran.
    pub llm_calls: u64,
    /// Prompt tokens across those completions.
    pub llm_input_tokens: u64,
    /// Completion tokens across those completions.
    pub llm_output_tokens: u64,
    /// Simulated dollar cost of those completions.
    pub llm_cost_usd: f64,
    /// Call-cache hits (lookups served without a model call, including
    /// single-flight joins) while this stage ran. Zero when no call cache is
    /// attached to the stage's clients.
    pub llm_cache_hits: u64,
    /// Simulated dollars those cache hits would have cost.
    pub llm_cost_saved_usd: f64,
    /// LLM calls avoided by cross-document micro-batching while this stage
    /// ran: for every packed call, the accepted items beyond the first.
    pub llm_calls_saved: u64,
    /// Documents per packed micro-batch call issued by this stage, in issue
    /// order. Empty when batching is off (the default).
    pub batch_sizes: Vec<usize>,
    /// Circuit-breaker trips (closed → open transitions) observed while
    /// this stage ran. Zero unless a reliability policy is installed.
    pub breaker_trips: u64,
    /// Logical calls answered by a fallback model tier instead of the
    /// stage's primary model.
    pub fallback_calls: u64,
    /// Documents whose result came from a degraded path (fallback model or
    /// the string-match tier) and were flagged in their properties.
    pub degraded_docs: u64,
    /// True if this stage was served from a materialize cache instead of
    /// being recomputed.
    pub cache_hit: bool,
    /// Per-worker shards, merged at finalize. One entry per worker for
    /// morsel-executed per-doc stages (length 1 for the sequential path);
    /// empty for barrier and batched stages, which run collection-at-a-time
    /// on the coordinating thread.
    pub workers: Vec<WorkerStats>,
    /// The stage's critical path: the longest per-worker busy time for
    /// morsel stages, wall time for barrier/batched stages. The makespan a
    /// perfectly parallel host would observe — the scaling bench and the
    /// regression guard compare this across worker counts, which stays
    /// meaningful even on hosts with fewer cores than workers.
    pub critical_path_ms: f64,
}

impl StageStats {
    /// Histogram of this stage's micro-batch sizes: sorted `(size, count)`
    /// pairs. Empty when the stage issued no packed calls.
    pub fn batch_size_histogram(&self) -> Vec<(usize, usize)> {
        let mut hist = std::collections::BTreeMap::new();
        for s in &self.batch_sizes {
            *hist.entry(*s).or_insert(0usize) += 1;
        }
        hist.into_iter().collect()
    }

    /// Morsels executed by this stage's workers (0 for barrier/batched
    /// stages).
    pub fn morsels(&self) -> usize {
        self.workers.iter().map(|w| w.morsels).sum()
    }

    /// Morsels acquired by stealing rather than from the owner's deque.
    pub fn steals(&self) -> usize {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Each worker's busy fraction of the stage's wall time, in worker
    /// order. On an unloaded many-core host these approach 1.0 for balanced
    /// stages; on an oversubscribed host they sum to about the core count.
    pub fn worker_busy_fractions(&self) -> Vec<f64> {
        if self.wall_ms <= 0.0 {
            return vec![0.0; self.workers.len()];
        }
        self.workers.iter().map(|w| w.busy_ms / self.wall_ms).collect()
    }
}

/// Statistics for one pipeline execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecStats {
    pub stages: Vec<StageStats>,
}

impl ExecStats {
    pub fn total_retries(&self) -> usize {
        self.stages.iter().map(|s| s.retries).sum()
    }

    pub fn total_failed_docs(&self) -> usize {
        self.stages.iter().map(|s| s.failed_docs).sum()
    }

    pub fn total_wall_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_ms).sum()
    }

    pub fn total_llm_calls(&self) -> u64 {
        self.stages.iter().map(|s| s.llm_calls).sum()
    }

    pub fn total_llm_tokens(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.llm_input_tokens + s.llm_output_tokens)
            .sum()
    }

    pub fn total_llm_cost_usd(&self) -> f64 {
        self.stages.iter().map(|s| s.llm_cost_usd).sum()
    }

    pub fn total_llm_cache_hits(&self) -> u64 {
        self.stages.iter().map(|s| s.llm_cache_hits).sum()
    }

    pub fn total_llm_cost_saved_usd(&self) -> f64 {
        self.stages.iter().map(|s| s.llm_cost_saved_usd).sum()
    }

    pub fn total_llm_calls_saved(&self) -> u64 {
        self.stages.iter().map(|s| s.llm_calls_saved).sum()
    }

    /// Packed micro-batch calls issued across all stages.
    pub fn total_batched_calls(&self) -> u64 {
        self.stages.iter().map(|s| s.batch_sizes.len() as u64).sum()
    }

    pub fn total_breaker_trips(&self) -> u64 {
        self.stages.iter().map(|s| s.breaker_trips).sum()
    }

    pub fn total_fallback_calls(&self) -> u64 {
        self.stages.iter().map(|s| s.fallback_calls).sum()
    }

    pub fn total_degraded_docs(&self) -> u64 {
        self.stages.iter().map(|s| s.degraded_docs).sum()
    }

    /// Morsels executed across all stages.
    pub fn total_morsels(&self) -> usize {
        self.stages.iter().map(StageStats::morsels).sum()
    }

    /// Stolen morsels across all stages.
    pub fn total_steals(&self) -> usize {
        self.stages.iter().map(StageStats::steals).sum()
    }

    /// The pipeline's critical path: per-doc stages contribute their longest
    /// worker busy time, barriers their wall time. This is the makespan on
    /// the executor's virtual clock — what a host with one core per worker
    /// would observe end to end — and the quantity the scaling regression
    /// guard pins (it must not increase with the worker count).
    pub fn total_critical_path_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.critical_path_ms).sum()
    }

    /// Histogram of micro-batch sizes across all stages: sorted
    /// `(size, count)` pairs.
    pub fn batch_size_histogram(&self) -> Vec<(usize, usize)> {
        let mut hist = std::collections::BTreeMap::new();
        for s in &self.stages {
            for size in &s.batch_sizes {
                *hist.entry(*size).or_insert(0usize) += 1;
            }
        }
        hist.into_iter().collect()
    }

    /// Renders a compact table for traces and debugging.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "stage                          rows_in  rows_out  retries  failed  llm_calls    tokens  cache_hits\n",
        );
        for s in &self.stages {
            out.push_str(&format!(
                "{:<30} {:>7}  {:>8}  {:>7}  {:>6}  {:>9}  {:>8}  {:>10}\n",
                s.name,
                s.rows_in,
                s.rows_out,
                s.retries,
                s.failed_docs,
                s.llm_calls,
                s.llm_input_tokens + s.llm_output_tokens,
                s.llm_cache_hits
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_render() {
        let stats = ExecStats {
            stages: vec![
                StageStats {
                    name: "filter(x)".into(),
                    tenant: String::new(),
                    rows_in: 10,
                    rows_out: 4,
                    wall_ms: 1.5,
                    retries: 2,
                    failed_docs: 1,
                    llm_calls: 10,
                    llm_input_tokens: 500,
                    llm_output_tokens: 50,
                    llm_cost_usd: 0.02,
                    llm_cache_hits: 3,
                    llm_cost_saved_usd: 0.005,
                    llm_calls_saved: 6,
                    batch_sizes: vec![4, 4, 2, 4],
                    breaker_trips: 1,
                    fallback_calls: 2,
                    degraded_docs: 3,
                    cache_hit: false,
                    workers: vec![
                        WorkerStats {
                            docs: 6,
                            retries: 2,
                            failed: 1,
                            morsels: 2,
                            steals: 1,
                            busy_ms: 1.2,
                        },
                        WorkerStats {
                            docs: 4,
                            retries: 0,
                            failed: 0,
                            morsels: 1,
                            steals: 0,
                            busy_ms: 0.9,
                        },
                    ],
                    critical_path_ms: 1.2,
                },
                StageStats {
                    name: "count".into(),
                    rows_in: 4,
                    rows_out: 1,
                    wall_ms: 0.5,
                    ..StageStats::default()
                },
            ],
        };
        assert_eq!(stats.total_retries(), 2);
        assert_eq!(stats.total_failed_docs(), 1);
        assert!((stats.total_wall_ms() - 2.0).abs() < 1e-9);
        assert_eq!(stats.total_llm_calls(), 10);
        assert_eq!(stats.total_llm_tokens(), 550);
        assert!((stats.total_llm_cost_usd() - 0.02).abs() < 1e-12);
        assert_eq!(stats.total_llm_cache_hits(), 3);
        assert!((stats.total_llm_cost_saved_usd() - 0.005).abs() < 1e-12);
        assert_eq!(stats.total_llm_calls_saved(), 6);
        assert_eq!(stats.total_batched_calls(), 4);
        assert_eq!(stats.batch_size_histogram(), vec![(2, 1), (4, 3)]);
        assert_eq!(stats.total_breaker_trips(), 1);
        assert_eq!(stats.total_fallback_calls(), 2);
        assert_eq!(stats.total_degraded_docs(), 3);
        assert_eq!(stats.total_morsels(), 3);
        assert_eq!(stats.total_steals(), 1);
        assert!((stats.total_critical_path_ms() - 1.2).abs() < 1e-9);
        let fr = stats.stages[0].worker_busy_fractions();
        assert_eq!(fr.len(), 2);
        assert!((fr[0] - 0.8).abs() < 1e-9, "{fr:?}");
        let r = stats.render();
        assert!(r.contains("filter(x)"));
        assert!(r.contains("550"));
        assert!(r.lines().count() >= 3);
    }
}
