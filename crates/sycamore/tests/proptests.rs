//! Property-based tests for the DocSet engine's analytic invariants.

use aryn_core::{Document, Value};
use proptest::prelude::*;
use sycamore::{Agg, Context};

fn docs_strategy() -> impl Strategy<Value = Vec<Document>> {
    prop::collection::vec(
        (
            prop_oneof![Just(None), Just(Some("AK")), Just(Some("TX")), Just(Some("WA"))],
            prop::option::of(-100.0f64..100.0),
        ),
        0..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (state, x))| {
                let mut d = Document::new(format!("d{i}"));
                if let Some(s) = state {
                    d.set_prop("state", s);
                }
                if let Some(x) = x {
                    d.set_prop("x", x);
                }
                d
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reduce_group_counts_sum_to_input(docs in docs_strategy()) {
        let n = docs.len();
        let ctx = Context::new();
        let groups = ctx
            .read_docs(docs)
            .reduce_by_key("state", vec![("n".into(), Agg::Count)])
            .collect()
            .unwrap();
        let total: i64 = groups
            .iter()
            .map(|g| g.prop("n").and_then(Value::as_int).unwrap_or(0))
            .sum();
        prop_assert_eq!(total, n as i64);
        // Group keys are distinct.
        let mut keys: Vec<String> = groups
            .iter()
            .map(|g| g.prop("state").map(|v| v.display_text()).unwrap_or_default())
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }

    #[test]
    fn reduce_sum_matches_reference(docs in docs_strategy()) {
        let reference: f64 = docs
            .iter()
            .filter_map(|d| d.prop("x").and_then(Value::as_float))
            .sum();
        let ctx = Context::new();
        let groups = ctx
            .read_docs(docs)
            .reduce_by_key("__all__", vec![("total".into(), Agg::Sum("x".into()))])
            .collect()
            .unwrap();
        let got = groups
            .first()
            .and_then(|g| g.prop("total"))
            .and_then(Value::as_float)
            .unwrap_or(0.0);
        prop_assert!((got - reference).abs() < 1e-6);
    }

    #[test]
    fn sort_is_ordered_permutation(docs in docs_strategy(), desc in any::<bool>()) {
        let ctx = Context::new();
        let input_ids: Vec<String> = docs.iter().map(|d| d.id.0.clone()).collect();
        let out = ctx.read_docs(docs).sort_by("x", desc).collect().unwrap();
        // Permutation: same multiset of ids.
        let mut out_ids: Vec<String> = out.iter().map(|d| d.id.0.clone()).collect();
        let mut want = input_ids;
        out_ids.sort();
        want.sort();
        prop_assert_eq!(out_ids, want);
        // Ordered under cmp_total.
        for w in out.windows(2) {
            let a = w[0].prop("x").cloned().unwrap_or(Value::Null);
            let b = w[1].prop("x").cloned().unwrap_or(Value::Null);
            let ord = a.cmp_total(&b);
            if desc {
                prop_assert_ne!(ord, std::cmp::Ordering::Less);
            } else {
                prop_assert_ne!(ord, std::cmp::Ordering::Greater);
            }
        }
    }

    #[test]
    fn limit_is_prefix(docs in docs_strategy(), k in 0usize..50) {
        let ctx = Context::new();
        let all = ctx.read_docs(docs.clone()).collect().unwrap();
        let cut = ctx.read_docs(docs).limit(k).collect().unwrap();
        prop_assert_eq!(cut.len(), k.min(all.len()));
        for (a, b) in cut.iter().zip(&all) {
            prop_assert_eq!(&a.id, &b.id);
        }
    }

    #[test]
    fn filter_then_count_matches_retain(docs in docs_strategy()) {
        let ctx = Context::new();
        let reference = docs
            .iter()
            .filter(|d| d.prop("x").and_then(Value::as_float).unwrap_or(-1.0) > 0.0)
            .count();
        let got = ctx
            .read_docs(docs)
            .filter("positive", |d| {
                d.prop("x").and_then(Value::as_float).unwrap_or(-1.0) > 0.0
            })
            .count()
            .unwrap();
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn document_serialization_roundtrips(docs in docs_strategy()) {
        for d in &docs {
            let v = aryn_core::serialize::document_to_value(d);
            let back = aryn_core::serialize::document_from_value(&v).unwrap();
            prop_assert_eq!(&back, d);
        }
    }

    #[test]
    fn parallel_equals_sequential_for_pure_transforms(
        docs in docs_strategy(),
        morsel_ix in 0usize..4,
        ring in any::<bool>(),
    ) {
        let seq_ctx = Context::new();
        let par_ctx = Context::new().with_exec(sycamore::ExecConfig {
            threads: 3,
            morsel_size: [1usize, 2, 8, 64][morsel_ix],
            steal: if ring {
                sycamore::StealPolicy::Ring
            } else {
                sycamore::StealPolicy::Disabled
            },
            ..sycamore::ExecConfig::default()
        });
        let run = |ctx: &Context| {
            ctx.read_docs(docs.clone())
                .map("stamp", |mut d| {
                    d.set_prop("stamped", true);
                    d
                })
                .filter("has_x", |d| d.prop("x").is_some())
                .collect()
                .unwrap()
        };
        prop_assert_eq!(run(&seq_ctx), run(&par_ctx));
    }
}
