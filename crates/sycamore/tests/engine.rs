//! End-to-end tests of the Sycamore DocSet engine.

use aryn_core::{obj, Document, ElementType, Value};
use aryn_docgen::Corpus;
use aryn_llm::{LlmClient, MockLlm, SimConfig, GPT4_SIM, LLAMA7B_SIM};
use std::sync::Arc;
use sycamore::{Agg, Context, ExecConfig, PartitionCfg};

fn perfect_client() -> LlmClient {
    LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(7))))
}

fn ntsb_ctx(n: usize) -> (Context, Corpus) {
    let ctx = Context::new();
    let corpus = Corpus::ntsb(1, n);
    ctx.register_corpus("ntsb", &corpus);
    (ctx, corpus)
}

#[test]
fn figure3_pipeline_partition_extract_explode_embed() {
    // The paper's Figure 3 script end-to-end.
    let (ctx, corpus) = ntsb_ctx(4);
    let client = perfect_client();
    let schema = obj! {
        "us_state_abbrev" => "string",
        "probable_cause" => "string",
        "weather_related" => "bool",
    };
    let ds = ctx
        .read_lake("ntsb")
        .unwrap()
        .partition("ntsb", PartitionCfg::default())
        .extract_properties(&client, schema)
        .explode()
        .embed();
    let docs = ds.collect().unwrap();
    assert!(docs.len() > corpus.len() * 5, "exploded chunks expected");
    // Chunks inherit extracted parent properties (Figure 4's output shape).
    let with_state = docs
        .iter()
        .filter(|d| d.prop("us_state_abbrev").is_some_and(|v| !v.is_null()))
        .count();
    assert!(with_state * 10 >= docs.len() * 8, "{with_state}/{}", docs.len());
    assert!(docs.iter().all(|d| d.embedding.is_some()));
    // Chunks carry full provenance.
    let chunk = &docs[0];
    let transforms: Vec<&str> = chunk.lineage.iter().map(|l| l.transform.as_str()).collect();
    assert!(transforms.contains(&"partition"));
    assert!(transforms.contains(&"extract_properties"));
    assert!(transforms.contains(&"explode"));
    assert!(transforms.contains(&"embed"));
}

#[test]
fn extraction_accuracy_against_ground_truth() {
    let (ctx, corpus) = ntsb_ctx(20);
    let client = perfect_client();
    let docs = ctx
        .read_lake("ntsb")
        .unwrap()
        .partition("ntsb", PartitionCfg::default())
        .extract_properties(&client, obj! { "us_state_abbrev" => "string" })
        .collect()
        .unwrap();
    let mut correct = 0;
    for d in &docs {
        let truth = corpus.record_for(d.id.as_str()).unwrap();
        if d.prop("us_state_abbrev") == truth.get("us_state_abbrev") {
            correct += 1;
        }
    }
    assert!(correct >= 17, "state extraction {correct}/20");
}

#[test]
fn map_filter_flat_map_compose() {
    let ctx = Context::new();
    let docs: Vec<Document> = (0..10)
        .map(|i| {
            let mut d = Document::new(format!("d{i}"));
            d.set_prop("n", i as i64);
            d
        })
        .collect();
    let out = ctx
        .read_docs(docs)
        .filter("even", |d| d.prop("n").and_then(Value::as_int).unwrap_or(0) % 2 == 0)
        .map("double", |mut d| {
            let n = d.prop("n").and_then(Value::as_int).unwrap_or(0);
            d.set_prop("n2", n * 2);
            d
        })
        .flat_map("dup", |d| vec![d.clone(), d])
        .collect()
        .unwrap();
    assert_eq!(out.len(), 10); // 5 evens duplicated
    assert_eq!(out[0].prop("n2").unwrap().as_int(), Some(0));
}

#[test]
fn reduce_by_key_with_aggregates_handles_missing() {
    let ctx = Context::new();
    let mut docs = Vec::new();
    for (i, (state, rev)) in [
        ("AK", Some(10.0)),
        ("AK", Some(30.0)),
        ("TX", None),
        ("TX", Some(5.0)),
    ]
    .iter()
    .enumerate()
    {
        let mut d = Document::new(format!("d{i}"));
        d.set_prop("state", *state);
        if let Some(r) = rev {
            d.set_prop("revenue", *r);
        }
        docs.push(d);
    }
    // A doc with no key at all groups under null.
    docs.push(Document::new("nokey"));
    let out = ctx
        .read_docs(docs)
        .reduce_by_key(
            "state",
            vec![
                ("total".into(), Agg::Sum("revenue".into())),
                ("avg".into(), Agg::Avg("revenue".into())),
                ("n".into(), Agg::Count),
            ],
        )
        .sort_by("state", false)
        .collect()
        .unwrap();
    assert_eq!(out.len(), 3);
    // Null group sorts first.
    assert!(out[0].prop("state").unwrap().is_null());
    let ak = &out[1];
    assert_eq!(ak.prop("state").unwrap().as_str(), Some("AK"));
    assert_eq!(ak.prop("total").unwrap().as_float(), Some(40.0));
    assert_eq!(ak.prop("avg").unwrap().as_float(), Some(20.0));
    assert_eq!(ak.prop("n").unwrap().as_int(), Some(2));
    let tx = &out[2];
    assert_eq!(tx.prop("total").unwrap().as_float(), Some(5.0), "missing skipped");
    assert_eq!(tx.prop("count").unwrap().as_int(), Some(2), "count includes missing");
}

#[test]
fn sort_and_limit() {
    let ctx = Context::new();
    let docs: Vec<Document> = [3i64, 1, 2]
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mut d = Document::new(format!("d{i}"));
            d.set_prop("n", *n);
            d
        })
        .collect();
    let out = ctx
        .read_docs(docs)
        .sort_by("n", true)
        .limit(2)
        .collect()
        .unwrap();
    let ns: Vec<i64> = out.iter().map(|d| d.prop("n").unwrap().as_int().unwrap()).collect();
    assert_eq!(ns, vec![3, 2]);
}

#[test]
fn llm_filter_keeps_matching_documents() {
    let (ctx, corpus) = ntsb_ctx(12);
    let client = perfect_client();
    let kept = ctx
        .read_lake("ntsb")
        .unwrap()
        .llm_filter(&client, "the incident was caused by environmental factors")
        .collect()
        .unwrap();
    let truth: Vec<&str> = corpus
        .docs
        .iter()
        .filter(|d| {
            d.record.get("weather_related").and_then(Value::as_bool) == Some(true)
        })
        .map(|d| d.id.as_str())
        .collect();
    let kept_ids: Vec<&str> = kept.iter().map(|d| d.id.as_str()).collect();
    // Perfect model + honest semantics should agree with ground truth on
    // most documents.
    let agree = truth.iter().filter(|t| kept_ids.contains(t)).count();
    assert!(agree * 10 >= truth.len() * 8, "{agree}/{}", truth.len());
}

#[test]
fn summarize_all_is_hierarchical_and_window_safe() {
    let (ctx, _) = ntsb_ctx(30);
    // Small-window model forces multiple reduction rounds.
    let small = LlmClient::new(Arc::new(MockLlm::new(&LLAMA7B_SIM, SimConfig::perfect(3))));
    let out = ctx
        .read_lake("ntsb")
        .unwrap()
        .summarize_all(&small, "summarize the incidents")
        .collect()
        .unwrap();
    assert_eq!(out.len(), 1);
    let summary = out[0].prop("summary").unwrap().as_str().unwrap();
    assert!(!summary.is_empty());
    assert_eq!(out[0].prop("source_count").unwrap().as_int(), Some(30));
    assert_eq!(out[0].lineage[0].sources.len(), 30);
}

#[test]
fn parallel_execution_matches_sequential() {
    let (ctx, _) = ntsb_ctx(12);
    let client = perfect_client();
    let build = |c: &Context| {
        c.read_lake("ntsb")
            .unwrap()
            .partition("ntsb", PartitionCfg::default())
            .extract_properties(&client, obj! { "us_state_abbrev" => "string" })
            .explode()
    };
    let seq = build(&ctx).collect().unwrap();
    let par_ctx = ctx.with_exec(ExecConfig {
        threads: 4,
        ..ExecConfig::default()
    });
    let par = build(&par_ctx).collect().unwrap();
    assert_eq!(seq.len(), par.len());
    // Order and content identical (ordered parallel collection).
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.properties, b.properties);
    }
}

#[test]
fn injected_worker_failures_are_retried() {
    let (ctx, _) = ntsb_ctx(20);
    let flaky = ctx.with_exec(ExecConfig {
        threads: 4,
        fail_rate: 0.3,
        max_retries: 6,
        ..ExecConfig::default()
    });
    let (docs, stats) = flaky
        .read_lake("ntsb")
        .unwrap()
        .map("identity", |d| d)
        .collect_stats()
        .unwrap();
    assert_eq!(docs.len(), 20, "all docs survive despite failures");
    assert!(stats.total_retries() > 0, "failures should have been injected");
}

#[test]
fn exhausted_retries_fail_or_skip_by_config() {
    let (ctx, _) = ntsb_ctx(5);
    // fail_rate 1.0: every attempt fails.
    let doomed = ctx.with_exec(ExecConfig {
        threads: 1,
        fail_rate: 1.0,
        max_retries: 2,
        skip_failures: false,
        ..ExecConfig::default()
    });
    assert!(doomed
        .read_lake("ntsb")
        .unwrap()
        .map("id", |d| d)
        .collect()
        .is_err());
    let skipping = ctx.with_exec(ExecConfig {
        threads: 1,
        fail_rate: 1.0,
        max_retries: 2,
        skip_failures: true,
        ..ExecConfig::default()
    });
    let (docs, stats) = skipping
        .read_lake("ntsb")
        .unwrap()
        .map("id", |d| d)
        .collect_stats()
        .unwrap();
    assert!(docs.is_empty());
    assert_eq!(stats.total_failed_docs(), 5);
}

#[test]
fn materialize_caches_and_reloads() {
    let (ctx, _) = ntsb_ctx(3);
    let dir = std::env::temp_dir().join("sycamore-mat-test");
    let _ = std::fs::remove_dir_all(&dir);
    let n = ctx
        .read_lake("ntsb")
        .unwrap()
        .partition("ntsb", PartitionCfg::default())
        .materialize_to("partitioned", dir.clone())
        .count()
        .unwrap();
    assert_eq!(n, 3);
    // Read back from the in-memory materialization without re-partitioning.
    let again = ctx.read_materialized("partitioned").unwrap().collect().unwrap();
    assert_eq!(again.len(), 3);
    assert!(!again[0].elements.is_empty());
    // And from disk.
    let from_disk = sycamore::load_materialized(&dir.join("partitioned.jsonl")).unwrap();
    assert_eq!(from_disk.len(), 3);
    assert_eq!(from_disk[0], again[0]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn writers_populate_sinks() {
    let (ctx, _) = ntsb_ctx(5);
    let ds = ctx
        .read_lake("ntsb")
        .unwrap()
        .partition("ntsb", PartitionCfg::default());
    assert_eq!(ds.write_store("ntsb_docs").unwrap(), 5);
    assert_eq!(ctx.with_store("ntsb_docs", |s| s.len()).unwrap(), 5);
    assert!(ds.clone().explode().write_keyword("ntsb_kw").unwrap() > 5);
    let hits = ctx
        .with_keyword("ntsb_kw", |k| k.search("probable cause", 5))
        .unwrap();
    assert!(!hits.is_empty());
    let n = ds.clone().explode().embed().write_vector("ntsb_vec").unwrap();
    assert!(n > 5);
    let q = ctx.embedder().embed("wind during approach");
    let nn = ctx.with_vector("ntsb_vec", |v| v.search(&q, 3)).unwrap().unwrap();
    assert_eq!(nn.len(), 3);
}

#[test]
fn llm_query_uses_template_and_selector() {
    let (ctx, _) = ntsb_ctx(3);
    let client = perfect_client();
    let docs = ctx
        .read_lake("ntsb")
        .unwrap()
        .partition("ntsb", PartitionCfg::default())
        .llm_query_selected(
            &client,
            "What was the probable cause?",
            "cause_answer",
            sycamore::ElementSelector::Types(vec![ElementType::Text]),
        )
        .collect()
        .unwrap();
    let answered = docs
        .iter()
        .filter(|d| d.prop("cause_answer").and_then(Value::as_str).is_some_and(|s| !s.is_empty()))
        .count();
    assert_eq!(answered, docs.len());
}

#[test]
fn stats_report_stage_shapes() {
    let (ctx, _) = ntsb_ctx(6);
    let (docs, stats) = ctx
        .read_lake("ntsb")
        .unwrap()
        .partition("ntsb", PartitionCfg::default())
        .explode()
        .sort_by("page", false)
        .limit(10)
        .collect_stats()
        .unwrap();
    assert_eq!(docs.len(), 10);
    assert_eq!(stats.stages.len(), 3, "{}", stats.render());
    assert!(stats.stages[0].name.contains("partition"));
    assert!(stats.stages[0].name.contains("explode"));
    assert_eq!(stats.stages[0].rows_in, 6);
    assert!(stats.stages[0].rows_out > 30);
    assert_eq!(stats.stages[2].rows_out, 10);
}

#[test]
fn plan_is_inspectable_before_execution() {
    let (ctx, _) = ntsb_ctx(1);
    let ds = ctx
        .read_lake("ntsb")
        .unwrap()
        .partition("ntsb", PartitionCfg::default())
        .explode()
        .limit(5);
    assert_eq!(ds.plan(), vec!["partition", "explode", "limit(5)"]);
}

#[test]
fn cost_accounting_flows_through_meter() {
    let (ctx, _) = ntsb_ctx(4);
    let client = perfect_client();
    ctx.read_lake("ntsb")
        .unwrap()
        .llm_filter(&client, "caused by wind")
        .collect()
        .unwrap();
    let stats = client.stats();
    assert_eq!(stats.calls, 4);
    assert!(stats.usage.cost_usd > 0.0);
    assert!(stats.usage.input_tokens > 100);
}

#[test]
fn materialize_checkpoint_skips_upstream_recomputation() {
    let (ctx, _) = ntsb_ctx(6);
    let client = perfect_client();
    let ds = ctx
        .read_lake("ntsb")
        .unwrap()
        .partition("ntsb", PartitionCfg::default())
        .extract_properties(&client, obj! { "us_state_abbrev" => "string" })
        .materialize("checkpoint")
        .explode();
    // First run executes everything and fills the cache.
    let first = ds.collect().unwrap();
    let calls_after_first = client.stats().calls;
    assert_eq!(calls_after_first, 6, "one extraction call per document");
    // Second run resumes from the checkpoint: no new LLM calls, identical
    // output, and the stats say so.
    let (second, stats) = ds.collect_stats().unwrap();
    assert_eq!(second, first);
    assert_eq!(client.stats().calls, calls_after_first, "no recomputation");
    assert!(
        stats.stages[0].name.contains("cache hit"),
        "{}",
        stats.render()
    );
}

#[test]
fn changed_upstream_plan_invalidates_materialize_checkpoint() {
    // Regression: resume used to key the materialize cache by name alone, so
    // a plan with a *different* upstream prefix silently reused a stale
    // checkpoint. The fingerprint stamp must force recomputation.
    let (ctx, _) = ntsb_ctx(4);
    let client = perfect_client();
    let warm = ctx
        .read_lake("ntsb")
        .unwrap()
        .llm_filter(&client, "caused by wind")
        .materialize("ckpt")
        .collect()
        .unwrap();
    let calls_after_warm = client.stats().calls;
    assert_eq!(calls_after_warm, 4);
    // Same name, different upstream op: must NOT reuse the checkpoint.
    let changed = ctx
        .read_lake("ntsb")
        .unwrap()
        .llm_filter(&client, "engine failure during flight")
        .materialize("ckpt")
        .collect()
        .unwrap();
    assert_eq!(
        client.stats().calls,
        calls_after_warm + 4,
        "changed prefix must recompute, not serve the stale checkpoint"
    );
    // The checkpoint now belongs to the new plan: re-running it resumes.
    let (rerun, stats) = ctx
        .read_lake("ntsb")
        .unwrap()
        .llm_filter(&client, "engine failure during flight")
        .materialize("ckpt")
        .collect_stats()
        .unwrap();
    assert_eq!(rerun, changed);
    assert_eq!(client.stats().calls, calls_after_warm + 4, "resume: no new calls");
    assert!(stats.stages[0].cache_hit, "{}", stats.render());
    // And the identical original plan no longer matches the overwritten
    // checkpoint, so it recomputes rather than serving the other filter's rows.
    let cold = ctx
        .read_lake("ntsb")
        .unwrap()
        .llm_filter(&client, "caused by wind")
        .materialize("ckpt")
        .collect()
        .unwrap();
    assert_eq!(cold, warm);
    assert_eq!(client.stats().calls, calls_after_warm + 8);
}

#[test]
fn llm_classify_assigns_labels_from_closed_set() {
    let (ctx, corpus) = ntsb_ctx(12);
    let client = perfect_client();
    let docs = ctx
        .read_lake("ntsb")
        .unwrap()
        .llm_classify(
            &client,
            "What was the root cause category of the incident?",
            &["environmental", "mechanical", "pilot error", "other"],
            "assigned_category",
        )
        .collect()
        .unwrap();
    let mut agree = 0;
    for d in &docs {
        let got = d.prop("assigned_category").and_then(Value::as_str).unwrap_or("");
        assert!(
            ["environmental", "mechanical", "pilot error", "other"].contains(&got),
            "label {got:?} outside the closed set"
        );
        let truth = corpus
            .record_for(d.id.as_str())
            .unwrap()
            .get("cause_category")
            .unwrap()
            .as_str()
            .unwrap();
        if got == truth {
            agree += 1;
        }
    }
    assert!(agree >= 8, "classification agreement {agree}/12");
    assert!(docs[0].lineage.iter().any(|l| l.transform == "llm_classify"));
}

#[test]
fn summarize_sections_walks_the_semantic_tree() {
    let (ctx, _) = ntsb_ctx(3);
    let client = perfect_client();
    let docs = ctx
        .read_lake("ntsb")
        .unwrap()
        .partition("ntsb", PartitionCfg::default())
        .summarize_sections(&client)
        .collect()
        .unwrap();
    let mut any = 0;
    let mut saw_analysis = false;
    for d in &docs {
        let Some(summaries) = d.prop("section_summaries").and_then(Value::as_object) else {
            continue;
        };
        any += summaries.len();
        for (slug, summary) in summaries {
            assert!(!slug.is_empty());
            assert!(
                summary.as_str().is_some_and(|s| !s.is_empty()),
                "empty summary for {slug}"
            );
        }
        saw_analysis |= summaries.keys().any(|k| k.contains("analysis"));
    }
    assert!(any >= 6, "sections summarized across docs: {any}");
    // Detector noise can fold a section into its neighbour in any one
    // document, but the Analysis section survives somewhere in the corpus.
    assert!(saw_analysis);
    assert!(client.stats().calls >= any as u64);
}
