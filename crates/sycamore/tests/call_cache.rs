//! Integration tests for the content-addressed LLM call cache: single-flight
//! dedup under the parallel executor, the disk tier across two Contexts,
//! barrier-stage failure accounting, lake-scan determinism, and a property
//! test that caching never changes pipeline output.

use aryn_core::{obj, ArynError, Document};
use aryn_docgen::Corpus;
use aryn_llm::{
    LanguageModel, LlmCallCache, LlmClient, LlmRequest, LlmResponse, MockLlm, SimConfig, Usage,
    GPT4_SIM,
};
use proptest::prelude::*;
use std::sync::Arc;
use sycamore::{Context, ExecConfig};

fn cached_client(cache: &Arc<LlmCallCache>) -> LlmClient {
    LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(7))))
        .with_cache(Arc::clone(cache))
}

/// N workers racing on identical prompts must collapse to ONE model call:
/// the leader computes, the rest join its flight and record cache hits.
#[test]
fn single_flight_under_parallel_executor() {
    let n = 8;
    let docs: Vec<Document> = (0..n)
        .map(|i| {
            Document::from_text(
                format!("d{i}"),
                "The aircraft encountered strong gusting winds during final approach.",
            )
        })
        .collect();
    let cache = Arc::new(LlmCallCache::with_capacity(64));
    let client = cached_client(&cache);
    let ctx = Context::new().with_exec(ExecConfig {
        threads: 4,
        ..ExecConfig::default()
    });
    let (_, stats) = ctx
        .read_docs(docs)
        .llm_filter(&client, "the incident was weather related")
        .collect_stats()
        .unwrap();
    // One real model call, everyone else served from the cache (either a
    // completed entry or a joined in-flight computation).
    assert_eq!(client.stats().calls, 1, "exactly one model call for {n} identical prompts");
    let cs = cache.stats();
    assert_eq!(cs.misses, 1);
    assert_eq!(cs.hits, (n - 1) as u64);
    assert_eq!(cache.len(), 1);
    // The savings surface in per-stage executor stats.
    assert_eq!(stats.total_llm_cache_hits(), (n - 1) as u64, "{}", stats.render());
    assert!(stats.total_llm_cost_saved_usd() > 0.0);
}

/// The disk tier persists completed calls; a brand-new Context + client over
/// the same lake replays every call from disk without touching the model.
#[test]
fn disk_tier_round_trips_across_contexts() {
    let dir = std::env::temp_dir().join("sycamore-call-cache-test");
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = Corpus::ntsb(1, 4);
    let schema = obj! { "us_state_abbrev" => "string" };

    let run = |expect_calls: u64| {
        let cache = Arc::new(LlmCallCache::with_capacity(64).with_disk(&dir).unwrap());
        let client = cached_client(&cache);
        let ctx = Context::new();
        ctx.register_corpus("ntsb", &corpus);
        let docs = ctx
            .read_lake("ntsb")
            .unwrap()
            .extract_properties(&client, schema.clone())
            .collect()
            .unwrap();
        assert_eq!(client.stats().calls, expect_calls);
        docs
    };

    let first = run(4); // cold: every document hits the model
    let second = run(0); // warm: everything replayed from llm_cache.jsonl
    assert_eq!(first, second, "disk-tier answers must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A model that refuses any prompt containing "POISON" and otherwise answers
/// with a fixed summary. The tiny window forces summarize_all to batch.
struct PoisonModel;

impl LanguageModel for PoisonModel {
    fn name(&self) -> &str {
        "poison-sim"
    }
    fn context_window(&self) -> usize {
        600
    }
    fn generate(&self, req: &LlmRequest) -> aryn_core::Result<LlmResponse> {
        if req.prompt.contains("POISON") {
            return Err(ArynError::Llm("poisoned batch".into()));
        }
        Ok(LlmResponse {
            text: "{\"summary\": \"condensed\"}".into(),
            usage: Usage {
                input_tokens: 50,
                output_tokens: 5,
                cost_usd: 0.001,
                latency_ms: 1.0,
            },
            model: "poison-sim".into(),
        })
    }
}

/// A summarize_all barrier that drops an inner batch (skip_failures on) must
/// report those source documents in the stage's failed_docs instead of the
/// hardcoded zero it used to emit.
#[test]
fn barrier_reports_failed_docs_from_summarize_all() {
    let filler = "incident report narrative detail ".repeat(40);
    let docs: Vec<Document> = (0..6)
        .map(|i| {
            let mut d = Document::from_text(format!("d{i}"), "body");
            let summary = if i == 3 {
                format!("POISON {filler}")
            } else {
                format!("summary {i}: {filler}")
            };
            d.set_prop("summary", summary);
            d
        })
        .collect();
    let client = LlmClient::new(Arc::new(PoisonModel));
    let ctx = Context::new().with_exec(ExecConfig {
        skip_failures: true,
        ..ExecConfig::default()
    });
    let (out, stats) = ctx
        .read_docs(docs.clone())
        .summarize_all(&client, "summarize the incidents")
        .collect_stats()
        .unwrap();
    assert_eq!(out.len(), 1, "surviving batches still produce a summary");
    assert!(
        stats.total_failed_docs() >= 1,
        "poisoned batch must surface in failed_docs: {}",
        stats.render()
    );
    assert!(stats.total_failed_docs() < 6, "only the poisoned batch fails");

    // Without skip_failures the same pipeline propagates the batch error.
    let strict = Context::new();
    strict
        .read_docs(docs)
        .summarize_all(&client, "summarize the incidents")
        .collect()
        .unwrap_err();
}

/// Lake scans must yield documents in doc-id order no matter what order the
/// corpus registered them in.
#[test]
fn lake_scan_order_is_deterministic() {
    let mut corpus = Corpus::ntsb(1, 6);
    corpus.docs.reverse();
    let ctx = Context::new();
    ctx.register_corpus("ntsb", &corpus);
    let ids: Vec<String> = ctx
        .read_lake("ntsb")
        .unwrap()
        .collect()
        .unwrap()
        .iter()
        .map(|d| d.id.0.clone())
        .collect();
    let mut sorted = ids.clone();
    sorted.sort();
    assert_eq!(ids, sorted, "lake scan must be sorted by doc id");
    assert_eq!(ids.len(), 6);
}

fn text_docs_strategy() -> impl Strategy<Value = Vec<Document>> {
    prop::collection::vec(
        prop_oneof![
            Just("strong winds and icing during the descent"),
            Just("engine flameout after fuel exhaustion"),
            Just("routine flight with no anomalies reported"),
            Just("pilot reported severe turbulence near the ridge"),
        ],
        1..10,
    )
    .prop_map(|texts| {
        texts
            .into_iter()
            .enumerate()
            .map(|(i, t)| Document::from_text(format!("d{i}"), t))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Caching is transparent: the cached pipeline produces exactly the same
    /// documents as the uncached one, for any mix of (repeated) inputs.
    #[test]
    fn cached_pipeline_matches_uncached(docs in text_docs_strategy()) {
        let run = |cache: Option<Arc<LlmCallCache>>| {
            let mut client =
                LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(11))));
            if let Some(c) = cache {
                client = client.with_cache(c);
            }
            let ctx = Context::new();
            ctx.read_docs(docs.clone())
                .llm_filter(&client, "the flight was affected by weather")
                .collect()
                .unwrap()
        };
        let uncached = run(None);
        let cache = Arc::new(LlmCallCache::with_capacity(64));
        let cached = run(Some(Arc::clone(&cache)));
        prop_assert_eq!(&uncached, &cached);
        // And a warm second run over the same cache is still identical.
        let warm = run(Some(cache));
        prop_assert_eq!(&uncached, &warm);
    }
}
