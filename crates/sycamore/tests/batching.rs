//! Equivalence and accounting tests for cross-document LLM micro-batching
//! (DESIGN.md §5e): a batched pipeline must be byte-identical to the
//! unbatched one — same documents, order, properties, and lineage — while
//! issuing at most `ceil(n / max_items)` packed calls, and it must compose
//! with the content-addressed call cache so warm items are never re-packed.

use aryn_core::{obj, Document};
use aryn_docgen::Corpus;
use aryn_llm::{LlmCallCache, LlmClient, MockLlm, SimConfig, GPT4_SIM};
use proptest::prelude::*;
use std::sync::Arc;
use sycamore::{Context, ExecConfig};

fn client(seed: u64) -> LlmClient {
    LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::with_seed(seed))))
}

fn perfect_client(seed: u64) -> LlmClient {
    LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::perfect(seed))))
}

/// 64 distinct single-doc reports; roughly half mention weather so the
/// filter's keep set is non-trivial in both directions.
fn weather_docs(n: usize) -> Vec<Document> {
    (0..n)
        .map(|i| {
            let text = if i % 2 == 0 {
                format!(
                    "Report {i}: the loss of control was caused by strong wind \
                     and severe icing during final approach near Anchorage."
                )
            } else {
                format!(
                    "Report {i}: the engine lost power on climb-out after a \
                     fuel line fitting worked loose; skies were clear."
                )
            };
            Document::from_text(format!("d{i:03}"), text)
        })
        .collect()
}

fn ctx_with_batch(max_items: usize, token_budget: usize) -> Context {
    Context::new().with_exec(ExecConfig {
        batch_max_items: max_items,
        batch_token_budget: token_budget,
        ..ExecConfig::default()
    })
}

/// The acceptance bar from the issue: a batched `llm_filter` over a 64-doc
/// corpus issues at most `ceil(64 / max_items)` model calls and returns
/// results identical to the unbatched run.
#[test]
fn batched_llm_filter_is_byte_identical_and_saves_calls() {
    let n = 64;
    let max_items = 8;
    let predicate = "the incident was weather related";

    let unbatched_client = perfect_client(11);
    let plain = Context::new();
    let (base_docs, base_stats) = plain
        .read_docs(weather_docs(n))
        .llm_filter(&unbatched_client, predicate)
        .collect_stats()
        .unwrap();
    assert_eq!(unbatched_client.stats().calls, n as u64);

    let batched_client = perfect_client(11);
    let ctx = ctx_with_batch(max_items, 1 << 20);
    let (docs, stats) = ctx
        .read_docs(weather_docs(n))
        .llm_filter(&batched_client, predicate)
        .collect_stats()
        .unwrap();

    assert_eq!(docs, base_docs, "batched output must be byte-identical");
    assert!(!docs.is_empty() && docs.len() < n, "filter must be non-trivial");

    let calls = batched_client.stats().calls;
    let ceil = n.div_ceil(max_items) as u64;
    assert!(calls <= ceil, "{calls} calls > ceil({n}/{max_items}) = {ceil}");
    assert_eq!(calls, ceil, "generous token budget must pack to max_items");

    // Executor accounting: packed calls and calls saved surface in stats.
    assert_eq!(stats.total_batched_calls(), calls);
    assert_eq!(stats.total_llm_calls(), calls);
    assert_eq!(stats.total_llm_calls_saved(), (n as u64) - calls);
    assert_eq!(stats.batch_size_histogram(), vec![(max_items, ceil as usize)]);
    assert_eq!(base_stats.total_llm_calls_saved(), 0);
    assert_eq!(base_stats.total_batched_calls(), 0);
}

/// Same equivalence bar for `extract_properties`, over a real corpus run
/// through partition first (a fused per-doc segment with a batchable tail).
#[test]
fn batched_extract_properties_is_byte_identical() {
    let corpus = Corpus::ntsb(5, 16);
    let schema = obj! { "us_state_abbrev" => "string", "fatal" => "int" };

    let run = |ctx: Context, client: &LlmClient| {
        ctx.register_corpus("ntsb", &corpus);
        ctx.read_lake("ntsb")
            .unwrap()
            .partition("ntsb", Default::default())
            .extract_properties(client, schema.clone())
            .collect_stats()
            .unwrap()
    };

    let c1 = perfect_client(5);
    let (base_docs, _) = run(Context::new(), &c1);
    let base_calls = c1.stats().calls;
    assert!(base_calls >= 16);

    let c2 = perfect_client(5);
    let (docs, stats) = run(ctx_with_batch(4, 1 << 20), &c2);

    assert_eq!(docs, base_docs, "batched extraction must be byte-identical");
    assert!(c2.stats().calls < base_calls, "batching must reduce calls");
    assert!(stats.total_llm_calls_saved() > 0);
    assert_eq!(
        stats.total_llm_calls_saved() + c2.stats().calls,
        base_calls,
        "every saved call is accounted for"
    );
}

/// Batching composes with the call cache in both directions: a warm cache
/// short-circuits packing entirely, and a batched run memoizes every item
/// individually so a later unbatched run replays from cache.
#[test]
fn batching_composes_with_call_cache() {
    let n = 12;
    let predicate = "the incident was weather related";
    let cache = Arc::new(LlmCallCache::with_capacity(256));

    // Cold batched run: packs misses, memoizes each item under its own
    // singleton fingerprint.
    let c1 = perfect_client(3).with_cache(Arc::clone(&cache));
    let ctx1 = ctx_with_batch(4, 1 << 20);
    let (batched_docs, s1) = ctx1
        .read_docs(weather_docs(n))
        .llm_filter(&c1, predicate)
        .collect_stats()
        .unwrap();
    assert_eq!(c1.stats().calls, 3, "12 docs / 4 per pack");
    assert_eq!(s1.total_batched_calls(), 3);
    assert_eq!(cache.len(), n, "every item memoized individually");

    // Warm unbatched run: zero model calls, identical output.
    let c2 = perfect_client(3).with_cache(Arc::clone(&cache));
    let (unbatched_docs, _) = Context::new()
        .read_docs(weather_docs(n))
        .llm_filter(&c2, predicate)
        .collect_stats()
        .unwrap();
    assert_eq!(c2.stats().calls, 0, "warm cache serves every singleton");
    assert_eq!(unbatched_docs, batched_docs);

    // Warm batched run: per-item fingerprints hit, nothing gets packed.
    let c3 = perfect_client(3).with_cache(Arc::clone(&cache));
    let ctx3 = ctx_with_batch(4, 1 << 20);
    let (warm_docs, s3) = ctx3
        .read_docs(weather_docs(n))
        .llm_filter(&c3, predicate)
        .collect_stats()
        .unwrap();
    assert_eq!(c3.stats().calls, 0, "warm items are never re-packed");
    assert_eq!(s3.total_batched_calls(), 0);
    assert_eq!(warm_docs, batched_docs);
}

/// `Context::set_batch` flips batching on for an already-built context, so
/// Luna can apply per-query knobs without rebuilding sinks.
#[test]
fn set_batch_enables_packing_on_live_context() {
    let ctx = Context::new();
    ctx.set_batch(6, 1 << 20);
    let c = perfect_client(9);
    let (docs, stats) = ctx
        .read_docs(weather_docs(18))
        .llm_filter(&c, "the incident was weather related")
        .collect_stats()
        .unwrap();
    assert!(!docs.is_empty());
    assert_eq!(c.stats().calls, 3);
    assert_eq!(stats.total_batched_calls(), 3);
    assert_eq!(stats.total_llm_calls_saved(), 15);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched and unbatched pipelines are observationally identical for any
    /// doc count, batch width, token budget, and sim seed — including seeds
    /// whose malformed draws force split-and-retry down to singletons.
    #[test]
    fn batched_equals_unbatched_llm_filter(
        n in 1usize..24,
        max_items in 1usize..7,
        budget in prop_oneof![Just(256usize), Just(2048), Just(1 << 16)],
        seed in 0u64..256,
    ) {
        let predicate = "the incident was weather related";
        let c1 = client(seed);
        let base = Context::new()
            .read_docs(weather_docs(n))
            .llm_filter(&c1, predicate)
            .collect()
            .unwrap();

        let c2 = client(seed);
        let docs = ctx_with_batch(max_items, budget)
            .read_docs(weather_docs(n))
            .llm_filter(&c2, predicate)
            .collect()
            .unwrap();

        prop_assert_eq!(&docs, &base);
        prop_assert!(c2.stats().calls <= c1.stats().calls);
    }

    /// Same property for extraction, which carries structured per-item
    /// payloads back out of the packed response.
    #[test]
    fn batched_equals_unbatched_extract_properties(
        n in 1usize..16,
        max_items in 1usize..6,
        seed in 0u64..256,
    ) {
        let schema = obj! { "us_state_abbrev" => "string" };
        let c1 = client(seed);
        let base = Context::new()
            .read_docs(weather_docs(n))
            .extract_properties(&c1, schema.clone())
            .collect()
            .unwrap();

        let c2 = client(seed);
        let docs = ctx_with_batch(max_items, 1 << 16)
            .read_docs(weather_docs(n))
            .extract_properties(&c2, schema.clone())
            .collect()
            .unwrap();

        prop_assert_eq!(&docs, &base);
        prop_assert!(c2.stats().calls <= c1.stats().calls);
    }
}
