//! Lightweight span/counter telemetry for the Aryn stack.
//!
//! The paper's traceability story (§6) requires that every answer can be
//! traced back through the operators, LLM calls, and documents that produced
//! it. This crate is the substrate: a dependency-free, deterministic span
//! collector that the partitioner, the Sycamore executor, and Luna all write
//! into.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism-friendly.** The whole workspace is a deterministic
//!    simulation keyed by seeds. Telemetry must not break that: the
//!    [`Trace::fingerprint`] covers span names, kinds, and counters but
//!    excludes wall-clock durations and is *order-independent*, so parallel
//!    workers recording spans in racy order still fingerprint identically.
//! 2. **Cheap.** A span is a name, a kind, counters, and gauges. Recording
//!    is one short critical section; a disabled [`Telemetry`] handle records
//!    nothing at all.
//! 3. **Exportable.** [`Trace::to_value`]/[`Trace::to_json`] render the
//!    whole trace as `aryn_core::Value` JSON for `bench_results/` artifacts
//!    and for `explain_analyze()` output.
//!
//! Typical use:
//!
//! ```
//! use aryn_telemetry::Telemetry;
//!
//! let tel = Telemetry::new("demo");
//! let mut span = tel.span("partition", "stage");
//! span.add("docs_in", 4);
//! span.add("docs_out", 4);
//! span.gauge("wall_ms", 1.25);
//! span.finish();
//!
//! let trace = tel.snapshot();
//! assert_eq!(trace.total("docs_in"), 4);
//! assert!(trace.to_json().contains("partition"));
//! ```

use aryn_core::{stable_hash, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One recorded unit of work: a named span with integer counters and float
/// gauges. `seq` is the record order (racy under parallelism — display only;
/// never part of the fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub name: String,
    pub kind: String,
    pub seq: u64,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub notes: Vec<String>,
}

impl Span {
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// Hash of the deterministic parts of this span: name, kind, counters,
    /// and notes. Gauges (wall times, rates) and `seq` are excluded.
    fn det_hash(&self) -> u64 {
        let mut parts: Vec<String> = vec![self.name.clone(), self.kind.clone()];
        for (k, v) in &self.counters {
            parts.push(format!("{k}={v}"));
        }
        for n in &self.notes {
            parts.push(n.clone());
        }
        let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
        stable_hash(0x7E1E, &refs)
    }

    fn to_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_string(), Value::Str(self.name.clone()));
        obj.insert("kind".to_string(), Value::Str(self.kind.clone()));
        obj.insert("seq".to_string(), Value::Int(self.seq as i64));
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::Int(*v as i64)))
            .collect();
        obj.insert("counters".to_string(), Value::Object(counters));
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::Float(*v)))
            .collect();
        obj.insert("gauges".to_string(), Value::Object(gauges));
        if !self.notes.is_empty() {
            obj.insert(
                "notes".to_string(),
                Value::Array(self.notes.iter().cloned().map(Value::Str).collect()),
            );
        }
        Value::Object(obj)
    }
}

/// A finished (or in-progress snapshot of a) collection of spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub label: String,
    pub spans: Vec<Span>,
}

impl Trace {
    /// Sum of a counter across all spans.
    pub fn total(&self, counter: &str) -> u64 {
        self.spans.iter().map(|s| s.counter(counter)).sum()
    }

    /// Sum of a counter across spans of one kind.
    pub fn total_for_kind(&self, kind: &str, counter: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.counter(counter))
            .sum()
    }

    /// Sum of a gauge across all spans.
    pub fn total_gauge(&self, gauge: &str) -> f64 {
        self.spans.iter().map(|s| s.gauge(gauge)).sum()
    }

    pub fn spans_of_kind(&self, kind: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.kind == kind).collect()
    }

    pub fn span_named(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Order-independent hash of the deterministic content (names, kinds,
    /// counters, notes — not wall times, not record order). Two runs with
    /// the same seed must produce the same fingerprint even if their worker
    /// threads interleaved differently.
    pub fn fingerprint(&self) -> u64 {
        self.spans
            .iter()
            .map(Span::det_hash)
            .fold(stable_hash(0xF1, &[self.label.as_str()]), |acc, h| {
                acc.wrapping_add(h)
            })
    }

    /// Render the trace as a JSON-ready `Value` tree. Spans are sorted by
    /// (kind, name, seq) so the export itself is stable across runs.
    pub fn to_value(&self) -> Value {
        let mut sorted: Vec<&Span> = self.spans.iter().collect();
        sorted.sort_by(|a, b| {
            (&a.kind, &a.name, a.seq).cmp(&(&b.kind, &b.name, b.seq))
        });
        let mut obj = BTreeMap::new();
        obj.insert("label".to_string(), Value::Str(self.label.clone()));
        obj.insert("span_count".to_string(), Value::Int(self.spans.len() as i64));
        obj.insert(
            "fingerprint".to_string(),
            Value::Str(format!("{:016x}", self.fingerprint())),
        );
        obj.insert(
            "spans".to_string(),
            Value::Array(sorted.iter().map(|s| s.to_value()).collect()),
        );
        Value::Object(obj)
    }

    pub fn to_json(&self) -> String {
        aryn_core::json::to_string_pretty(&self.to_value())
    }
}

struct Collector {
    label: String,
    spans: Vec<Span>,
    next_seq: u64,
}

/// A clonable, thread-safe handle to a span collector. Cloning shares the
/// underlying trace; `Telemetry::disabled()` is a null sink whose spans are
/// dropped on `finish()`.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Collector>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(c) => write!(f, "Telemetry({:?}, {} spans)", c.lock().label, c.lock().spans.len()),
            None => write!(f, "Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    pub fn new(label: impl Into<String>) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Collector {
                label: label.into(),
                spans: Vec::new(),
                next_seq: 0,
            }))),
        }
    }

    /// A sink that records nothing; all span operations are no-ops.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start building a span. The builder records wall time from this call
    /// until `finish()` into the `wall_ms` gauge (unless overridden).
    pub fn span(&self, name: impl Into<String>, kind: impl Into<String>) -> SpanBuilder {
        SpanBuilder {
            telemetry: self.clone(),
            name: name.into(),
            kind: kind.into(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            notes: Vec::new(),
            started: Instant::now(),
        }
    }

    fn record(&self, mut span: Span) {
        if let Some(inner) = &self.inner {
            let mut c = inner.lock();
            span.seq = c.next_seq;
            c.next_seq += 1;
            c.spans.push(span);
        }
    }

    /// One-shot counter recording: a span holding only counters, skipping
    /// the builder dance. Used for verdict/tally events like the plan
    /// analyzer's per-severity and per-lint-code counts.
    pub fn count(
        &self,
        name: impl Into<String>,
        kind: impl Into<String>,
        counters: &[(&str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut span = self.span(name, kind);
        for (k, v) in counters {
            span.add(k, *v);
        }
        span.finish();
    }

    /// Copy of the trace so far (the collector keeps recording).
    pub fn snapshot(&self) -> Trace {
        match &self.inner {
            Some(inner) => {
                let c = inner.lock();
                Trace {
                    label: c.label.clone(),
                    spans: c.spans.clone(),
                }
            }
            None => Trace::default(),
        }
    }

    /// Drain all recorded spans, leaving the collector empty.
    pub fn take(&self) -> Trace {
        match &self.inner {
            Some(inner) => {
                let mut c = inner.lock();
                Trace {
                    label: c.label.clone(),
                    spans: std::mem::take(&mut c.spans),
                }
            }
            None => Trace::default(),
        }
    }

    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            let mut c = inner.lock();
            c.spans.clear();
            c.next_seq = 0;
        }
    }

    pub fn span_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().spans.len(),
            None => 0,
        }
    }
}

/// Accumulates counters/gauges for one span; pushes into the collector on
/// [`SpanBuilder::finish`]. Dropping without `finish()` discards the span.
pub struct SpanBuilder {
    telemetry: Telemetry,
    name: String,
    kind: String,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    notes: Vec<String>,
    started: Instant,
}

impl SpanBuilder {
    /// Add to an integer counter (creating it at 0).
    pub fn add(&mut self, key: &str, amount: u64) -> &mut Self {
        *self.counters.entry(key.to_string()).or_insert(0) += amount;
        self
    }

    /// Set a counter to an absolute value.
    pub fn set(&mut self, key: &str, value: u64) -> &mut Self {
        self.counters.insert(key.to_string(), value);
        self
    }

    /// Set a float gauge (costs, rates, millisecond timings).
    pub fn gauge(&mut self, key: &str, value: f64) -> &mut Self {
        self.gauges.insert(key.to_string(), value);
        self
    }

    /// Attach a free-form note (participates in the fingerprint).
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Record the span. Fills the `wall_ms` gauge with the builder's
    /// lifetime if the caller didn't set it explicitly.
    pub fn finish(mut self) {
        self.gauges
            .entry("wall_ms".to_string())
            .or_insert_with(|| self.started.elapsed().as_secs_f64() * 1e3);
        let span = Span {
            name: std::mem::take(&mut self.name),
            kind: std::mem::take(&mut self.kind),
            seq: 0,
            counters: std::mem::take(&mut self.counters),
            gauges: std::mem::take(&mut self.gauges),
            notes: std::mem::take(&mut self.notes),
        };
        self.telemetry.record(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tel: &Telemetry) {
        let mut a = tel.span("partition", "stage");
        a.add("docs_in", 10).add("docs_out", 9).gauge("wall_ms", 2.0);
        a.finish();
        let mut b = tel.span("llm_filter", "operator");
        b.add("llm_calls", 4).add("input_tokens", 120).note("model=gpt4-sim");
        b.finish();
    }

    #[test]
    fn totals_and_lookup() {
        let tel = Telemetry::new("t");
        sample(&tel);
        let trace = tel.snapshot();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.total("docs_in"), 10);
        assert_eq!(trace.total("llm_calls"), 4);
        assert_eq!(trace.total_for_kind("stage", "llm_calls"), 0);
        assert_eq!(trace.span_named("partition").unwrap().counter("docs_out"), 9);
        assert_eq!(trace.spans_of_kind("operator").len(), 1);
    }

    #[test]
    fn fingerprint_ignores_order_and_wall_time() {
        let t1 = Telemetry::new("t");
        let mut a = t1.span("x", "stage");
        a.add("n", 1).gauge("wall_ms", 5.0);
        a.finish();
        let mut b = t1.span("y", "stage");
        b.add("n", 2).gauge("wall_ms", 7.0);
        b.finish();

        // Same spans, reversed order, different wall times.
        let t2 = Telemetry::new("t");
        let mut b = t2.span("y", "stage");
        b.add("n", 2).gauge("wall_ms", 100.0);
        b.finish();
        let mut a = t2.span("x", "stage");
        a.add("n", 1).gauge("wall_ms", 0.5);
        a.finish();

        assert_eq!(t1.snapshot().fingerprint(), t2.snapshot().fingerprint());

        // Different counter value => different fingerprint.
        let t3 = Telemetry::new("t");
        let mut a = t3.span("x", "stage");
        a.add("n", 99);
        a.finish();
        let mut b = t3.span("y", "stage");
        b.add("n", 2);
        b.finish();
        assert_ne!(t1.snapshot().fingerprint(), t3.snapshot().fingerprint());
    }

    #[test]
    fn count_records_a_counter_only_span() {
        let tel = Telemetry::new("t");
        tel.count("analyze:plan", "analyzer", &[("errors", 2), ("warnings", 1)]);
        let trace = tel.snapshot();
        assert_eq!(trace.spans.len(), 1);
        let span = trace.span_named("analyze:plan").unwrap();
        assert_eq!(span.kind, "analyzer");
        assert_eq!(span.counter("errors"), 2);
        assert_eq!(span.counter("warnings"), 1);
        // A disabled handle records nothing.
        let off = Telemetry::disabled();
        off.count("x", "analyzer", &[("errors", 1)]);
        assert_eq!(off.span_count(), 0);
    }

    #[test]
    fn disabled_is_a_null_sink() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut s = tel.span("x", "stage");
        s.add("n", 1);
        s.finish();
        assert_eq!(tel.span_count(), 0);
        assert_eq!(tel.snapshot().spans.len(), 0);
    }

    #[test]
    fn clones_share_and_take_drains() {
        let tel = Telemetry::new("t");
        let clone = tel.clone();
        sample(&clone);
        assert_eq!(tel.span_count(), 2);
        let taken = tel.take();
        assert_eq!(taken.spans.len(), 2);
        assert_eq!(tel.span_count(), 0);
    }

    #[test]
    fn json_export_is_stable_and_parseable() {
        let tel = Telemetry::new("export");
        sample(&tel);
        let trace = tel.snapshot();
        let json = trace.to_json();
        let parsed = aryn_core::json::parse(&json).expect("trace JSON parses");
        assert_eq!(
            parsed.get_path("label"),
            Some(&Value::Str("export".to_string()))
        );
        assert_eq!(parsed.get_path("span_count"), Some(&Value::Int(2)));
        // Export sorted by (kind, name): operator span first.
        let spans = parsed.get_path("spans").and_then(Value::as_array).unwrap();
        assert_eq!(
            spans[0].get_path("name"),
            Some(&Value::Str("llm_filter".to_string()))
        );
    }

    #[test]
    fn concurrent_recording_is_sound() {
        let tel = Telemetry::new("mt");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tel = tel.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let mut sp = tel.span("work", "stage");
                        sp.add("n", 1);
                        sp.finish();
                    }
                });
            }
        });
        let trace = tel.snapshot();
        assert_eq!(trace.spans.len(), 100);
        assert_eq!(trace.total("n"), 100);
        // seq values are unique even under contention.
        let mut seqs: Vec<u64> = trace.spans.iter().map(|s| s.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 100);
    }
}
