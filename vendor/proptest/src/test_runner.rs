//! Deterministic RNG + case outcome types for the vendored proptest shim.

use rand::{SeedableRng, StdRng};

/// Random source for strategy generation. Seeded per test from the test's
/// name so every run of a given test explores the same case sequence.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Stable per-test seed: FNV-1a over the test name.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        TestRng::from_seed_u64(h)
    }

    pub fn from_seed_u64(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying `rand` RNG, for strategies to draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Outcome of one generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Case discarded (`prop_assume!` failed); does not count toward `cases`.
    Reject(String),
    /// Assertion failed; the whole property test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
