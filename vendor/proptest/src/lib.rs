//! Offline stand-in for `proptest`.
//!
//! The build environment cannot fetch crates, so this vendored crate
//! implements the proptest 1.x subset the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_filter_map`, `prop_recursive`, and `boxed`;
//! * strategies for numeric ranges, tuples, [`Just`], `any::<T>()`, regex-ish
//!   string patterns (`"[a-z ]{1,16}"`), `prop::collection::{vec,
//!   btree_map}`, `prop::option::of`, and `prop::num::f64::NORMAL`;
//! * the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, and `prop_assume!` macros;
//! * [`config::ProptestConfig`] with `with_cases`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (no persistence files, regressions files are ignored) and
//! there is **no shrinking** — a failing case reports the generated inputs
//! as-is. That trades debuggability for zero dependencies; determinism means
//! a failure always reproduces.

pub mod strategy;

pub mod test_runner;

pub mod config {
    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias toward boundary values the way proptest does.
                    match rng.rng().gen_range(0u32..20) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.rng().gen::<$t>(),
                    }
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }

    /// `any::<T>()` — the full-range strategy for `T`.
    pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
        BoxedStrategy::new(|rng| T::arbitrary(rng))
    }

    // Keep Strategy import used (macro bodies reference it indirectly).
    #[allow(unused)]
    fn _assert_strategy(s: BoxedStrategy<bool>, rng: &mut TestRng) -> bool {
        s.generate(rng)
    }
}

pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use rand::Rng;
    use std::collections::BTreeMap;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::new(move |rng| {
            let n = rng.rng().gen_range(size.lo..=size.hi.max(size.lo));
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }

    /// `BTreeMap` with up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K: Strategy + 'static,
        V: Strategy + 'static,
        K::Value: Ord + 'static,
        V::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::new(move |rng| {
            let n = rng.rng().gen_range(size.lo..=size.hi.max(size.lo));
            (0..n)
                .map(|_| (keys.generate(rng), values.generate(rng)))
                .collect()
        })
    }
}

pub mod option {
    use crate::strategy::{BoxedStrategy, Strategy};
    use rand::Rng;

    /// `None` or `Some(inner)`, 50/50 like upstream's default probability.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy::new(move |rng| {
            if rng.rng().gen::<bool>() {
                Some(inner.generate(rng))
            } else {
                None
            }
        })
    }
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Normal (non-zero, non-subnormal, finite) `f64` values of either
        /// sign across the full exponent range.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalStrategy;

        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.rng().gen::<u64>());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines deterministic randomized tests; see crate docs for divergences
/// from upstream (`cases` honoured, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::config::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::config::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __cfg.cases {
                    __attempts += 1;
                    if __attempts > __cfg.cases.saturating_mul(16).max(1024) {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} attempts)",
                            stringify!($name), __ran, __attempts
                        );
                    }
                    let mut __inputs: Vec<String> = Vec::new();
                    $(
                        let __value = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push(format!("{} = {:?}", stringify!($pat), __value));
                        let $pat = __value;
                    )+
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match __result {
                        Ok(()) => { __ran += 1; }
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}\ninputs:\n  {}",
                                stringify!($name), __ran, __msg, __inputs.join("\n  ")
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assert_eq failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assert_eq failed: {:?} != {:?}: {}", __a, __b, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assert_ne failed: both {:?}", __a),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assert_ne failed: both {:?}: {}", __a, format!($($fmt)+)),
            ));
        }
    }};
}

/// Discards the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
