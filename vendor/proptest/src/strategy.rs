//! The [`Strategy`] trait and the built-in strategies the workspace uses:
//! numeric ranges, tuples, [`Just`], [`Union`] (behind `prop_oneof!`),
//! [`BoxedStrategy`], and regex-lite string patterns for `&'static str`.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Upstream proptest strategies produce shrinkable value *trees*; this shim
/// produces plain values (no shrinking), which keeps the combinator surface
/// identical while staying dependency-free.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.generate(rng)))
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let s = self;
        let whence = whence.into();
        BoxedStrategy::new(move |rng| {
            for _ in 0..1000 {
                let v = s.generate(rng);
                if f(&v) {
                    return v;
                }
            }
            panic!("prop_filter({whence}): no accepted value in 1000 draws")
        })
    }

    fn prop_filter_map<O, F>(self, whence: impl Into<String>, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: Debug + 'static,
        F: Fn(Self::Value) -> Option<O> + 'static,
    {
        let s = self;
        let whence = whence.into();
        BoxedStrategy::new(move |rng| {
            for _ in 0..1000 {
                if let Some(v) = f(s.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map({whence}): no accepted value in 1000 draws")
        })
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds one level
    /// on top of the strategy for the level below. `depth` bounds nesting;
    /// `_desired_size`/`_expected_branch_size` are accepted for source
    /// compatibility but unused (no size-driven shrinking here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(cur.clone()).boxed();
            let fallback = leaf.clone();
            cur = BoxedStrategy::new(move |rng| {
                if rng.rng().gen_range(0u32..100) < 70 {
                    branch.generate(rng)
                } else {
                    fallback.generate(rng)
                }
            });
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.generate(rng))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    generator: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy {
            generator: Rc::new(f),
        }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generator: Rc::clone(&self.generator),
        }
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generator)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.rng().gen_range(0..self.options.len());
        self.options[ix].generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// String strategies from regex-ish patterns, e.g. `"[a-z ]{1,16}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

/// A regex-lite generator covering the subset of regex syntax proptest
/// string strategies are used with in-tree: literals, `.`, character
/// classes with ranges and escapes, and the `{m}`, `{m,n}`, `*`, `+`, `?`
/// quantifiers. Anything fancier (alternation, groups, negated classes)
/// panics loudly rather than silently generating the wrong language.
mod pattern {
    use crate::test_runner::TestRng;
    use rand::Rng;

    enum Atom {
        /// `.` — any printable ASCII char.
        Any,
        /// Character class as inclusive ranges; a literal is a 1-char range.
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &[char], i: &mut usize, pat: &str) -> Atom {
        let mut ranges: Vec<(char, char)> = Vec::new();
        if chars.get(*i) == Some(&'^') {
            panic!("pattern {pat:?}: negated classes unsupported by vendored proptest");
        }
        loop {
            let c = match chars.get(*i) {
                Some(']') => {
                    *i += 1;
                    break;
                }
                Some('\\') => {
                    *i += 1;
                    let c = unescape(*chars.get(*i).unwrap_or_else(|| {
                        panic!("pattern {pat:?}: trailing backslash in class")
                    }));
                    *i += 1;
                    c
                }
                Some(&c) => {
                    *i += 1;
                    c
                }
                None => panic!("pattern {pat:?}: unterminated character class"),
            };
            // `a-z` range (but `-` right before `]` is a literal dash).
            if chars.get(*i) == Some(&'-') && chars.get(*i + 1).is_some_and(|&n| n != ']') {
                *i += 1;
                let hi = match chars.get(*i) {
                    Some('\\') => {
                        *i += 1;
                        let h = unescape(*chars.get(*i).unwrap_or_else(|| {
                            panic!("pattern {pat:?}: trailing backslash in class")
                        }));
                        *i += 1;
                        h
                    }
                    Some(&h) => {
                        *i += 1;
                        h
                    }
                    None => panic!("pattern {pat:?}: unterminated range in class"),
                };
                assert!(c <= hi, "pattern {pat:?}: inverted range {c}-{hi}");
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        assert!(!ranges.is_empty(), "pattern {pat:?}: empty character class");
        Atom::Class(ranges)
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pat: &str) -> (u32, u32) {
        match chars.get(*i) {
            Some('{') => {
                *i += 1;
                let mut lo = String::new();
                while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
                    lo.push(chars[*i]);
                    *i += 1;
                }
                let lo: u32 = lo
                    .parse()
                    .unwrap_or_else(|_| panic!("pattern {pat:?}: bad {{}} quantifier"));
                let hi = if chars.get(*i) == Some(&',') {
                    *i += 1;
                    let mut hi = String::new();
                    while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
                        hi.push(chars[*i]);
                        *i += 1;
                    }
                    if hi.is_empty() {
                        lo + 8 // open-ended {m,}
                    } else {
                        hi.parse()
                            .unwrap_or_else(|_| panic!("pattern {pat:?}: bad {{}} quantifier"))
                    }
                } else {
                    lo
                };
                assert_eq!(
                    chars.get(*i),
                    Some(&'}'),
                    "pattern {pat:?}: unterminated {{}} quantifier"
                );
                *i += 1;
                assert!(lo <= hi, "pattern {pat:?}: inverted {{}} quantifier");
                (lo, hi)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn parse(pat: &str) -> Vec<Piece> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0usize;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    parse_class(&chars, &mut i, pat)
                }
                '\\' => {
                    i += 1;
                    let c = unescape(
                        *chars
                            .get(i)
                            .unwrap_or_else(|| panic!("pattern {pat:?}: trailing backslash")),
                    );
                    i += 1;
                    Atom::Class(vec![(c, c)])
                }
                '(' | ')' | '|' => {
                    panic!("pattern {pat:?}: groups/alternation unsupported by vendored proptest")
                }
                c => {
                    i += 1;
                    Atom::Class(vec![(c, c)])
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pat);
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Any => char::from_u32(rng.rng().gen_range(32u32..=126)).unwrap(),
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
                let mut k = rng.rng().gen_range(0..total);
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if k < span {
                        return char::from_u32(lo as u32 + k).unwrap();
                    }
                    k -= span;
                }
                unreachable!()
            }
        }
    }

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pat) {
            let n = rng.rng().gen_range(piece.min..=piece.max);
            for _ in 0..n {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed_u64(1);
        for _ in 0..200 {
            let v = (0i64..10, 1.0f64..2.0, 0usize..=3).generate(&mut rng);
            assert!((0..10).contains(&v.0));
            assert!((1.0..2.0).contains(&v.1));
            assert!(v.2 <= 3);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_seed_u64(2);
        let s = (0u64..100)
            .prop_map(|x| x * 2)
            .prop_filter("even-only stays even", |x| *x < 150);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 150);
        }
    }

    #[test]
    fn string_patterns_match_their_language() {
        let mut rng = TestRng::from_seed_u64(3);
        for _ in 0..100 {
            let s = "[a-z ]{1,16}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 16);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));

            let t = "[ -~]".generate(&mut rng);
            assert_eq!(t.chars().count(), 1);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));

            let u = "ab?c*".generate(&mut rng);
            assert!(u.starts_with('a'));
        }
    }

    #[test]
    fn union_and_recursive_terminate() {
        let mut rng = TestRng::from_seed_u64(4);
        let leaf = (0i64..4).prop_map(|n| vec![n]);
        let nested = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(mut a, b)| {
                a.extend(b);
                a
            })
        });
        for _ in 0..50 {
            let v = nested.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 8);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = crate::collection::vec(0u64..1000, 0..10usize);
        let mut a = TestRng::from_seed_u64(9);
        let mut b = TestRng::from_seed_u64(9);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
