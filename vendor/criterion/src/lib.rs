//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API the bench targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — as a simple wall-clock harness: each benchmark
//! runs `sample_size` timed samples (after one warm-up) and prints
//! mean/min/max per iteration. No statistics engine, no plots; numbers land
//! on stdout so `cargo bench` output can be captured into `bench_results/`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded, reported as a rate when elements).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs the closure under timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed), then `sample_size` timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = secs.iter().cloned().fold(0.0f64, f64::max);
    let fmt = |s: f64| {
        if s < 1e-6 {
            format!("{:.1} ns", s * 1e9)
        } else if s < 1e-3 {
            format!("{:.2} µs", s * 1e6)
        } else if s < 1.0 {
            format!("{:.2} ms", s * 1e3)
        } else {
            format!("{s:.3} s")
        }
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:.0} B/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "bench {name}: mean {} (min {}, max {}, n={}){rate}",
        fmt(mean),
        fmt(min),
        fmt(max),
        samples.len()
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into().0),
            &b.samples,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &b.samples,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` and `BenchmarkId` where criterion does.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> BenchId {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> BenchId {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> BenchId {
        BenchId(id.id)
    }
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn final_summary(&self) {}

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: if self.default_sample_size == 0 {
                10
            } else {
                self.default_sample_size
            },
        };
        f(&mut b);
        report(name, &b.samples, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("unit", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &x| {
                b.iter(|| {
                    ran += 1;
                    black_box(x * 2)
                })
            });
            g.finish();
        }
        assert!(ran >= 3);
    }
}
