//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is used in-tree; std has had scoped
//! threads since 1.63, so this shim adapts `std::thread::scope` to the
//! crossbeam calling convention (spawn closures take the scope as an
//! argument; worker panics surface as an `Err` instead of unwinding).

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Wrapper handing the std scope around in crossbeam's shape.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. A panicking worker yields `Err(payload)` (crossbeam
    /// semantics) rather than resuming the unwind (std semantics).
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_share() {
        let n = AtomicUsize::new(0);
        let r = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| n.fetch_add(1, Ordering::SeqCst));
            }
            7
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_panic_is_an_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
