//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: `lock`,
//! `read`, and `write` return guards directly, recovering the inner value if
//! a previous holder panicked (parking_lot has no poisoning at all).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
