//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This vendored crate implements the subset
//! of the rand 0.8 API the workspace uses — `StdRng`, `SeedableRng`, and the
//! `Rng` extension methods (`gen`, `gen_range`, `gen_bool`) — on top of a
//! deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! Streams differ from upstream rand's ChaCha12-based `StdRng`, but every
//! consumer in this workspace only requires *determinism for a given seed*
//! and reasonable uniformity, both of which hold here.

pub mod rngs {
    pub use crate::StdRng;
}

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only `seed_from_u64` is used in-tree).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ — fast, high-quality, and trivially embeddable.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s = [0xDEADBEEF, 1, 2, 3];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible by `Rng::gen()` (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges samplable by `Rng::gen_range` (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling kills modulo bias.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}
range_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
           i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f = <$t as Standard>::sample_standard(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let f = <$t as Standard>::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The user-facing extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0u64..=5);
            assert!(u <= 5);
            let n = rng.gen_range(-5i64..=-2);
            assert!((-5..=-2).contains(&n));
        }
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "{buckets:?}");
        }
    }
}
