//! The paper's Figure 2: the Aryn Partitioner's output on a typical NTSB
//! accident report — labeled regions with bounding boxes, the recovered
//! injuries table with cell structure, and the JSON output mode.
//!
//! Also contrasts the DETR-class detector against the cloud-vendor baseline
//! on the same document (the §4 comparison, qualitatively).
//!
//! Run with: `cargo run --example partition_report`

use aryn::prelude::*;

fn main() -> aryn_core::Result<()> {
    let corpus = Corpus::ntsb(1, 40);
    // Pick a report with a photograph, like the paper's figure.
    let doc = corpus
        .docs
        .iter()
        .find(|d| !d.raw.images.is_empty())
        .unwrap_or(&corpus.docs[0]);
    println!("document: {} ({} pages)\n", doc.id, doc.raw.pages);

    let partitioner = Partitioner::with_detector(Detector::DetrSim);
    let parsed = partitioner.partition(&doc.id, &doc.raw);

    println!("--- detected elements (detr-sim) ---");
    for (i, e) in parsed.elements.iter().enumerate() {
        let b = e.bbox.unwrap_or(BBox::empty());
        let preview: String = e.text.chars().take(48).collect();
        println!(
            "{i:>3}  p{} {:<15} conf {:.2}  [{:>5.1},{:>5.1},{:>5.1},{:>5.1}]  {preview}",
            e.page,
            e.etype.name(),
            e.confidence,
            b.x0,
            b.y0,
            b.x1,
            b.y1
        );
    }

    // Table extraction with cell identification (the figure's red boxes).
    if let Some(t) = parsed.first_table() {
        println!("\n--- recovered table structure ({} x {}) ---", t.rows, t.cols);
        print!("{}", t.to_csv());
        println!("as HTML:\n{}", t.to_html());
    }

    // The hierarchical (semantic tree) view of the same document.
    println!("\n--- section tree ---");
    let tree = parsed.tree();
    for section in tree.sections() {
        println!("  § {} ({} body elements)", section.heading_text(), section.body.len());
    }

    // Vendor baseline on the same document: fewer regions, no tables.
    let vendor = Partitioner::with_detector(Detector::VendorSim).partition(&doc.id, &doc.raw);
    let tables = |d: &Document| d.elements.iter().filter(|e| e.table.is_some()).count();
    println!(
        "\n--- detr-sim vs vendor-sim on this document ---\n\
         detr-sim:   {} elements, {} structured tables\n\
         vendor-sim: {} elements, {} structured tables",
        parsed.elements.len(),
        tables(&parsed),
        vendor.elements.len(),
        tables(&vendor)
    );

    // The JSON output mode ("consumed directly as JSON", §4).
    let json = partitioner.partition_json(&doc.id, &doc.raw);
    let rendered = aryn_core::json::to_string_pretty(&json);
    let head: String = rendered.lines().take(24).collect::<Vec<_>>().join("\n");
    println!("\n--- JSON output (first lines) ---\n{head}\n  ...");
    Ok(())
}
