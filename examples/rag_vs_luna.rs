//! RAG vs. Luna on the paper's two question styles (§1–§2): "hunt and peck"
//! factual lookups, which RAG handles, and "sweep and harvest" aggregates,
//! where top-k retrieval is architecturally unable to see the whole corpus
//! and Luna's plans win.
//!
//! Run with: `cargo run --example rag_vs_luna`

use aryn::prelude::*;
use aryn_rag::{grade, ntsb_aggregate, ntsb_factual, ChunkCfg, QaReport, RagPipeline};
use luna::ntsb_schema;
use std::sync::Arc;

fn main() -> aryn_core::Result<()> {
    let seed = 42;
    let n_docs = 60;
    let corpus = Corpus::ntsb(seed, n_docs);

    // --- RAG pipeline over the same corpus --------------------------------
    let rag_client = LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::with_seed(seed))));
    let ctx = Context::new();
    ctx.register_corpus("ntsb", &corpus);
    let partitioned = ctx
        .read_lake("ntsb")?
        .partition("ntsb", PartitionCfg::default())
        .collect()?;
    let mut rag = RagPipeline::new(rag_client, ctx.embedder());
    rag.top_k = 6;
    let chunks = rag.ingest(&partitioned, ChunkCfg::default())?;
    println!("RAG: {chunks} chunks over {n_docs} documents");

    // --- Luna over the same corpus -----------------------------------------
    let ingest_client = LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::with_seed(seed))));
    ingest_lake(&ctx, "ntsb", "ntsb", &ingest_client, ntsb_schema(), Detector::DetrSim)?;
    let luna = Luna::new(
        ctx,
        &["ntsb"],
        LunaConfig {
            sim: SimConfig::with_seed(seed),
            ..LunaConfig::default()
        },
    )?;

    // --- run both systems over both question classes -----------------------
    let mut questions = ntsb_factual(&corpus, 6);
    questions.extend(ntsb_aggregate(&corpus));
    let mut rag_report = QaReport::default();
    let mut luna_report = QaReport::default();
    println!("\n{:<68} {:<24} {:<24}", "question", "RAG answer", "Luna answer");
    for q in &questions {
        let rag_answer = rag.answer(&q.question)?.answer;
        let luna_answer = luna.ask(&q.question)?.result.answer;
        rag_report.record(q.kind, grade(&rag_answer, &q.expected));
        luna_report.record(q.kind, grade(&luna_answer, &q.expected));
        let cut = |s: &str| s.chars().take(22).collect::<String>();
        println!("{:<68} {:<24} {:<24}", cut_q(&q.question), cut(&rag_answer), cut(&luna_answer));
    }

    println!("\n--- accuracy ---");
    println!(
        "factual   (hunt & peck):    RAG {:>5.1}%   Luna {:>5.1}%",
        100.0 * rag_report.factual_accuracy(),
        100.0 * luna_report.factual_accuracy()
    );
    println!(
        "aggregate (sweep & harvest): RAG {:>5.1}%   Luna {:>5.1}%",
        100.0 * rag_report.aggregate_accuracy(),
        100.0 * luna_report.aggregate_accuracy()
    );
    println!(
        "\nThe shape the paper predicts: both handle factual lookups, but top-k\n\
         retrieval cannot aggregate over the corpus, while Luna's plans can."
    );
    Ok(())
}

fn cut_q(s: &str) -> String {
    s.chars().take(66).collect()
}
