//! The paper's §6.2 sample execution: "What percent of environmentally
//! caused incidents were due to wind?"
//!
//! Shows the whole Luna loop — the plan DAG (Figure 5), the generated
//! Python-like Sycamore code (Figure 6), the optimizer's rewrites, the
//! per-operator execution trace, and the final answer checked against
//! corpus ground truth.
//!
//! Run with: `cargo run --example ntsb_analytics`

use aryn::prelude::*;
use aryn_core::Value;
use luna::ntsb_schema;
use std::sync::Arc;

fn main() -> aryn_core::Result<()> {
    // Build and ingest the corpus: partition → extract → document store.
    let ctx = Context::new();
    let corpus = Corpus::ntsb(42, 60);
    ctx.register_corpus("ntsb", &corpus);
    let ingest_client = LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::with_seed(42))));
    let n = ingest_lake(
        &ctx,
        "ntsb",
        "ntsb",
        &ingest_client,
        ntsb_schema(),
        Detector::DetrSim,
    )?;
    println!("ingested {n} NTSB reports into the \"ntsb\" store\n");

    let luna = Luna::new(
        ctx,
        &["ntsb"],
        LunaConfig {
            sim: SimConfig::with_seed(42),
            ..LunaConfig::default()
        },
    )?;

    let question = "What percent of environmentally caused incidents were due to wind?";
    println!("Q: {question}\n");
    let ans = luna.ask(question)?;

    // Figure 5: the natural-language plan.
    println!("--- query plan (natural language) ---");
    print!("{}", ans.optimized_plan.describe());

    // Figure 6: the generated code.
    println!("\n--- generated Sycamore code ---");
    print!("{}", luna::codegen::to_python(&ans.optimized_plan));

    println!("\n--- optimizer rewrites ---");
    for note in &ans.optimizer_notes {
        println!("  - {note}");
    }

    println!("\n--- execution trace ---");
    print!("{}", ans.result.render_trace());

    println!("\nA: {}", ans.answer());

    // Check against ground truth computed from the generating records.
    let wind = corpus
        .docs
        .iter()
        .filter(|d| d.record.get("cause_detail").and_then(Value::as_str) == Some("wind"))
        .count() as f64;
    let env = corpus
        .docs
        .iter()
        .filter(|d| d.record.get("weather_related").and_then(Value::as_bool) == Some(true))
        .count() as f64;
    println!(
        "ground truth: {wind} wind-caused of {env} environmental incidents = {:.2}%",
        100.0 * wind / env
    );

    // A couple more analytics questions over the same store.
    for q in [
        "Which state had the most incidents?",
        "How many incidents involved fatalities?",
        // Collection summarization (hierarchical map-reduce under the
        // model's context window).
        "Summarize the incidents in Alaska",
    ] {
        let a = luna.ask(q)?;
        println!("\nQ: {q}\nA: {}", a.answer());
    }

    println!("\ntotal simulated LLM spend: ${:.4}", luna.total_cost());
    Ok(())
}
