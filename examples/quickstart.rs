//! Quickstart: the paper's Figure 3 ETL script, end to end.
//!
//! Reads a (synthetic) NTSB corpus from the data lake, partitions it with
//! the Aryn Partitioner, extracts a property schema with an LLM, explodes
//! documents into chunks, embeds them, and writes a vector index — then runs
//! a retrieval query against it. Prints the Figure 4-style extraction output
//! along the way.
//!
//! Run with: `cargo run --example quickstart`

use aryn::prelude::*;
use aryn_core::json;
use std::sync::Arc;

fn main() -> aryn_core::Result<()> {
    // 1. A Sycamore context plus a corpus registered as the "ntsb" lake.
    let ctx = Context::new();
    let corpus = Corpus::ntsb(1, 20);
    ctx.register_corpus("ntsb", &corpus);
    println!("lake: {} NTSB accident reports\n", corpus.len());

    // 2. The LLM client (simulated GPT-4-class model).
    let client = LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::with_seed(1))));

    // 3. The Figure 3 pipeline.
    let schema = obj! {
        "us_state_abbrev" => "string",
        "probable_cause" => "string",
        "weather_related" => "bool",
    };
    let ds = ctx
        .read_lake("ntsb")?
        .partition("ntsb", PartitionCfg::default())
        .extract_properties(&client, schema)
        .materialize("extracted");

    // Peek at the extraction output (the paper's Figure 4).
    let docs = ds.collect()?;
    println!("extract_properties output for {}:", docs[0].id);
    let sample = obj! {
        "us_state_abbrev" => docs[0].prop("us_state_abbrev").cloned().unwrap_or(Value::Null),
        "probable_cause" => docs[0].prop("probable_cause").cloned().unwrap_or(Value::Null),
        "weather_related" => docs[0].prop("weather_related").cloned().unwrap_or(Value::Null),
    };
    println!("{}\n", json::to_string_pretty(&sample));

    // 4. Explode into chunks, embed, and write the vector store.
    let n = ctx
        .read_materialized("extracted")?
        .explode()
        .embed()
        .write_vector("ntsb_chunks")?;
    println!("wrote {n} embedded chunks to vector index \"ntsb_chunks\"\n");

    // 5. Query the index.
    let query = "strong wind during landing approach";
    let qv = ctx.embedder().embed(query);
    let hits = ctx.with_vector("ntsb_chunks", |v| v.search(&qv, 3))??;
    println!("top-3 chunks for {query:?}:");
    for h in hits {
        println!("  {:<22} score {:.3}", h.key, h.score);
    }

    // 6. Usage accounting — every LLM call was metered.
    let stats = client.stats();
    println!(
        "\nllm usage: {} calls, {} input tokens, ${:.4} simulated spend",
        stats.calls, stats.usage.input_tokens, stats.usage.cost_usd
    );
    Ok(())
}
