//! The financial-research use case from the paper's §1: analyzing earnings
//! reports — "yearly revenue growth and outlook of companies whose CEO
//! recently changed", fastest-growing companies, sector aggregates — plus a
//! human-in-the-loop plan edit.
//!
//! Run with: `cargo run --example earnings_research`

use aryn::prelude::*;
use luna::{earnings_schema, PlanOp};
use aryn::aryn_core::Document;
use std::sync::Arc;

fn main() -> aryn_core::Result<()> {
    let ctx = Context::new();
    let corpus = Corpus::earnings(42, 48);
    ctx.register_corpus("earnings", &corpus);
    let client = LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::with_seed(42))));
    let n = ingest_lake(
        &ctx,
        "earnings",
        "earnings",
        &client,
        earnings_schema(),
        Detector::DetrSim,
    )?;
    println!("ingested {n} earnings reports\n");

    let luna = Luna::new(
        ctx,
        &["earnings"],
        LunaConfig {
            sim: SimConfig::with_seed(42),
            ..LunaConfig::default()
        },
    )?;

    // The discovered schema Luna plans against (§6.1 "Data schema").
    println!("--- discovered schema ---");
    for f in &luna.schemas()[0].fields {
        println!("  {:<16} {:<7} in {}/{} docs", f.path, f.ftype, f.count, luna.schemas()[0].doc_count);
    }

    for q in [
        "List the companies whose CEO recently changed.",
        "What was the average revenue growth of companies in the AI sector?",
        "List the fastest growing companies in the AI market.",
        "How many companies lowered their guidance?",
        // The §1 data-integration pattern: the competitor lookup goes
        // through the pay-as-you-go knowledge graph built from extraction.
        "List the fastest growing companies in the AI market and their competitors",
    ] {
        let ans = luna.ask(q)?;
        println!("\nQ: {q}\nA: {}", ans.answer());
        if !ans.optimizer_notes.is_empty() {
            println!("   (optimizer: {})", ans.optimizer_notes.join("; "));
        }
    }

    // Human-in-the-loop: the analyst inspects a plan and tightens it.
    println!("\n--- human-in-the-loop plan editing ---");
    let mut plan = luna.plan("List the companies whose CEO recently changed.")?;
    println!("planner produced:\n{}", plan.describe());
    // Narrow the question to the AI sector by inserting a structured filter
    // between the scan and the existing filter.
    let scan_id = plan.nodes[0].id;
    let next_id = plan.nodes.iter().map(|n| n.id).max().unwrap_or(0) + 1;
    for node in &mut plan.nodes {
        if node.inputs.contains(&scan_id) {
            node.inputs = vec![next_id];
        }
    }
    plan.nodes.insert(
        1,
        luna::PlanNode {
            id: next_id,
            op: PlanOp::BasicFilter {
                path: "sector".into(),
                value: Value::from("AI"),
            },
            inputs: vec![scan_id],
            description: "analyst edit: only the AI sector".into(),
        },
    );
    let result = luna.execute_edited(&plan)?;
    println!("after edit (AI sector only):\nA: {}", result.answer);
    print!("\n{}", result.render_trace());

    // --- joining with a structured repository (§8 future work) ------------
    // A hand-maintained "data warehouse" table of sector market sizes joins
    // against the extracted earnings data through a hand-authored plan —
    // plans are data, so an analyst can write one directly.
    println!("\n--- join with a structured warehouse table ---");
    let mut warehouse = aryn::aryn_index::DocStore::new();
    for (sector, market_busd) in [
        ("AI", 310.0),
        ("software", 650.0),
        ("semiconductors", 520.0),
        ("retail", 1800.0),
        ("energy", 2400.0),
        ("healthcare", 1500.0),
        ("fintech", 340.0),
        ("logistics", 980.0),
    ] {
        let mut d = Document::new(format!("ref-{sector}"));
        d.set_prop("sector", sector);
        d.set_prop("market_busd", market_busd);
        warehouse.put(d);
    }
    luna.context().put_store("sector_reference", warehouse);
    let join_plan = luna::Plan {
        nodes: vec![
            luna::PlanNode {
                id: 0,
                op: PlanOp::QueryDatabase { index: "earnings".into(), prefilter: vec![] },
                inputs: vec![],
                description: "extracted earnings reports".into(),
            },
            luna::PlanNode {
                id: 1,
                op: PlanOp::TopK { path: "growth_pct".into(), descending: true, k: 3 },
                inputs: vec![0],
                description: "three fastest-growing reports".into(),
            },
            luna::PlanNode {
                id: 2,
                op: PlanOp::QueryDatabase { index: "sector_reference".into(), prefilter: vec![] },
                inputs: vec![],
                description: "warehouse: sector market sizes".into(),
            },
            luna::PlanNode {
                id: 3,
                op: PlanOp::Join { on: "sector".into() },
                inputs: vec![1, 2],
                description: "attach each company's sector market size".into(),
            },
        ],
        result: 3,
    };
    let joined = luna.execute_edited(&join_plan)?;
    for row in joined.output.rows().unwrap_or(&[]) {
        println!(
            "  {:<22} growth {:>5.1}%  sector {:<14} market ${:.0}B",
            row.prop("company").map(|v| v.display_text()).unwrap_or_default(),
            row.prop("growth_pct").and_then(Value::as_float).unwrap_or(0.0),
            row.prop("sector").map(|v| v.display_text()).unwrap_or_default(),
            row.prop("market_busd").and_then(Value::as_float).unwrap_or(0.0),
        );
    }
    Ok(())
}
