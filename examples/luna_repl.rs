//! Interactive Luna session — the paper's "interactive UI / notebook"
//! interface (§6.1) in terminal form.
//!
//! Usage:
//!   cargo run --example luna_repl                    # interactive stdin loop
//!   cargo run --example luna_repl -- "How many ..."  # one-shot question(s)
//!
//! Inside the loop, prefix a question with `explain ` to see the plan, the
//! generated code, the optimizer notes, and the per-operator trace — with
//! `analyze ` for the EXPLAIN ANALYZE telemetry view (per-operator rows/LLM
//! spend, planner/optimizer spans, trace fingerprint) — or with `check ` to
//! run the semantic plan analyzer and see its diagnostics interleaved with
//! the generated code, without executing anything.

use aryn::prelude::*;
use luna::{earnings_schema, ntsb_schema};
use std::io::{BufRead, Write as _};
use std::sync::Arc;

fn main() -> aryn_core::Result<()> {
    eprintln!("loading corpora and ingesting (partition → extract → store)...");
    let seed = 42;
    let ctx = Context::new();
    let ntsb = Corpus::ntsb(seed, 60);
    let earnings = Corpus::earnings(seed, 48);
    ctx.register_corpus("ntsb", &ntsb);
    ctx.register_corpus("earnings", &earnings);
    let client = LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::with_seed(seed))));
    ingest_lake(&ctx, "ntsb", "ntsb", &client, ntsb_schema(), Detector::DetrSim)?;
    ingest_lake(&ctx, "earnings", "earnings", &client, earnings_schema(), Detector::DetrSim)?;
    let luna = Luna::new(
        ctx,
        &["ntsb", "earnings"],
        LunaConfig {
            sim: SimConfig::with_seed(seed),
            ..LunaConfig::default()
        },
    )?;
    eprintln!(
        "ready: {} NTSB reports + {} earnings reports.\n",
        ntsb.len(),
        earnings.len()
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        for q in args {
            run_question(&luna, &q, Mode::Answer)?;
        }
        return Ok(());
    }

    eprintln!(
        "ask questions (\"explain <q>\" for the full trace, \"analyze <q>\" for telemetry, \"check <q>\" for plan diagnostics, ctrl-d to exit):"
    );
    let stdin = std::io::stdin();
    loop {
        eprint!("luna> ");
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        let (q, mode) = match (
            line.strip_prefix("explain "),
            line.strip_prefix("analyze "),
            line.strip_prefix("check "),
        ) {
            (Some(rest), _, _) => (rest, Mode::Explain),
            (_, Some(rest), _) => (rest, Mode::Analyze),
            (_, _, Some(rest)) => (rest, Mode::Check),
            _ => (line, Mode::Answer),
        };
        if let Err(e) = run_question(&luna, q, mode) {
            eprintln!("error: {e}");
        }
    }
    eprintln!("\ntotal simulated LLM spend this session: ${:.4}", luna.total_cost());
    Ok(())
}

#[derive(Clone, Copy)]
enum Mode {
    Answer,
    Explain,
    Analyze,
    Check,
}

fn run_question(luna: &Luna, question: &str, mode: Mode) -> aryn_core::Result<()> {
    if let Mode::Check = mode {
        // Static analysis only: plan the question, run the analyzer, render
        // the diagnostics against the generated code. Nothing executes.
        let (plan, analysis) = luna.check(question)?;
        println!("Q: {question}");
        println!("{}", luna::codegen::to_python_annotated(&plan, &analysis));
        if analysis.diagnostics.is_empty() {
            println!("analyzer: plan is clean.\n");
        } else {
            println!("analyzer findings:\n{}", analysis.render());
        }
        return Ok(());
    }
    let ans = luna.ask(question)?;
    match mode {
        Mode::Explain => println!("{}", ans.explain()),
        Mode::Analyze => println!("{}", ans.explain_analyze()),
        Mode::Answer | Mode::Check => {
            println!("Q: {question}");
            println!("A: {}\n", ans.answer());
        }
    }
    Ok(())
}
