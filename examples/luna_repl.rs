//! Interactive Luna session — the paper's "interactive UI / notebook"
//! interface (§6.1) in terminal form.
//!
//! Usage:
//!   cargo run --example luna_repl                    # interactive stdin loop
//!   cargo run --example luna_repl -- "How many ..."  # one-shot question(s)
//!
//! Inside the loop, prefix a question with `explain ` to see the plan, the
//! generated code, the optimizer notes, and the per-operator trace.

use aryn::prelude::*;
use luna::{earnings_schema, ntsb_schema};
use std::io::{BufRead, Write as _};
use std::sync::Arc;

fn main() -> aryn_core::Result<()> {
    eprintln!("loading corpora and ingesting (partition → extract → store)...");
    let seed = 42;
    let ctx = Context::new();
    let ntsb = Corpus::ntsb(seed, 60);
    let earnings = Corpus::earnings(seed, 48);
    ctx.register_corpus("ntsb", &ntsb);
    ctx.register_corpus("earnings", &earnings);
    let client = LlmClient::new(Arc::new(MockLlm::new(&GPT4_SIM, SimConfig::with_seed(seed))));
    ingest_lake(&ctx, "ntsb", "ntsb", &client, ntsb_schema(), Detector::DetrSim)?;
    ingest_lake(&ctx, "earnings", "earnings", &client, earnings_schema(), Detector::DetrSim)?;
    let luna = Luna::new(
        ctx,
        &["ntsb", "earnings"],
        LunaConfig {
            sim: SimConfig::with_seed(seed),
            ..LunaConfig::default()
        },
    )?;
    eprintln!(
        "ready: {} NTSB reports + {} earnings reports.\n",
        ntsb.len(),
        earnings.len()
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        for q in args {
            run_question(&luna, &q, false)?;
        }
        return Ok(());
    }

    eprintln!("ask questions (\"explain <question>\" for the full trace, ctrl-d to exit):");
    let stdin = std::io::stdin();
    loop {
        eprint!("luna> ");
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        let (q, explain) = match line.strip_prefix("explain ") {
            Some(rest) => (rest, true),
            None => (line, false),
        };
        if let Err(e) = run_question(&luna, q, explain) {
            eprintln!("error: {e}");
        }
    }
    eprintln!("\ntotal simulated LLM spend this session: ${:.4}", luna.total_cost());
    Ok(())
}

fn run_question(luna: &Luna, question: &str, explain: bool) -> aryn_core::Result<()> {
    let ans = luna.ask(question)?;
    if explain {
        println!("{}", ans.explain());
    } else {
        println!("Q: {question}");
        println!("A: {}\n", ans.answer());
    }
    Ok(())
}
